#!/usr/bin/env python
"""Uncertain-query retrieval: partial icon sets and partial arrangements.

Section 4 of the paper motivates the LCS-based evaluation with queries whose
"targets and/or spatial relationships are not certain".  This example builds a
planted corpus (full, perturbed, partial and scrambled copies of base scenes
among random distractors), runs partial queries of decreasing completeness,
and prints how the planted copies rank as the query keeps fewer and fewer
icons.

Run with:  python examples/partial_query_search.py
"""

from repro.datasets.corpus import planted_retrieval_corpus
from repro.datasets.transforms_gen import partial_variant
from repro.retrieval.metrics import average_precision
from repro.retrieval.system import RetrievalSystem


def main() -> None:
    corpus = planted_retrieval_corpus(seed=17, base_scene_count=3, distractors_per_scene=6)
    system = RetrievalSystem.from_pictures(corpus.database_pictures)
    print(f"database: {len(system)} images ({corpus.summary()['relevant_pairs']} relevant pairs)")
    print()

    base = corpus.database_pictures[0]  # the first planted base scene
    relevant = {base.name, f"{base.name}-perturbed", *(
        name for name in corpus.database_ids if name.startswith(base.name) and "partial" in name
    )}

    for keep in range(len(base), 1, -2):
        query = partial_variant(base, keep=keep, seed=keep, name=f"query-keep{keep}")
        results = system.query(query).limit(None).execution(shortlist=False).execute()
        ranked_ids = [result.image_id for result in results]
        ap = average_precision(ranked_ids, relevant)
        print(f"=== Query keeps {keep}/{len(base)} icons "
              f"(average precision vs planted copies: {ap:.3f}) ===")
        for result in results[:4]:
            print(" ", result.describe())
        print()

    print("Even with most icons missing, the planted copies of the base scene")
    print("stay ahead of the scrambled copy and the random distractors because")
    print("the LCS rewards the spatial relations that *are* present.")


if __name__ == "__main__":
    main()
