#!/usr/bin/env python
"""From pixels to BE-strings: the full front-to-back pipeline.

The paper assumes icon objects and their MBRs have already been extracted from
the raw image.  This example shows the whole path on synthetic data without
any imaging dependency beyond numpy:

1. render a symbolic picture into an integer label grid (the stand-in for a
   segmented raster image),
2. recover icons + MBRs via connected-component analysis,
3. encode the recovered picture as a 2D BE-string, and
4. verify the recovered encoding retrieves the original scene from a database.

Run with:  python examples/pixels_to_strings.py
"""

from repro.core.construct import encode_picture
from repro.datasets.scenes import office_scene, traffic_scene
from repro.iconic.raster import LabeledRaster
from repro.retrieval.system import RetrievalSystem


def main() -> None:
    scene = traffic_scene(0)

    # 1. Render to a label grid ("the image").
    raster, value_map = LabeledRaster.render(scene)
    print(f"rendered {scene.name} to a {raster.width}x{raster.height} label grid "
          f"({raster.coverage() * 100:.1f}% of pixels covered by icons)")

    # 2. Segment it back into icons with MBRs.
    labels = {value: identifier.split('#')[0] for value, identifier in value_map.items()}
    recovered = raster.to_picture(value_labels=labels, name="recovered-traffic")
    print(f"segmentation recovered {len(recovered)} icon objects: {recovered.identifiers}")

    # 3. Encode the recovered picture.
    original_bestring = encode_picture(scene)
    recovered_bestring = encode_picture(recovered)
    identical = (
        original_bestring.x.symbols == recovered_bestring.x.symbols
        and original_bestring.y.symbols == recovered_bestring.y.symbols
    )
    print(f"BE-string of the recovered picture identical to the original: {identical}")
    print("x axis:", recovered_bestring.x.to_text())

    # 4. Use the recovered picture as a query against a database.
    database = [office_scene(i) for i in range(4)] + [traffic_scene(i) for i in range(4)]
    system = RetrievalSystem.from_pictures(database)
    print()
    print("=== Querying the database with the recovered picture ===")
    for result in system.query(recovered).limit(4).execute():
        print(" ", result.describe())


if __name__ == "__main__":
    main()
