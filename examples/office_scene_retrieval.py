#!/usr/bin/env python
"""Office-scene retrieval: the paper's motivating use case on themed scenes.

"Find all images in which the monitor sits on the desk and the phone is to its
right" -- a query about *relative positions*, not absolute coordinates.  This
example builds a database of office-scene variants (plus traffic and landscape
scenes as distractors), then runs:

* a full-scene query,
* a partial query (just desk, monitor and phone), and
* a query against a database image that was edited dynamically (an icon was
  added through the Section-3.2 insert path).

Run with:  python examples/office_scene_retrieval.py
"""

from repro import Rectangle, RetrievalSystem
from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.iconic.ascii_art import render_ascii


def build_database() -> RetrievalSystem:
    pictures = (
        [office_scene(variant) for variant in range(0, 12)]
        + [traffic_scene(variant) for variant in range(0, 6)]
        + [landscape_scene(variant) for variant in range(0, 6)]
    )
    return RetrievalSystem.from_pictures(pictures)


def main() -> None:
    system = build_database()
    print(f"database: {len(system)} images, "
          f"{int(system.statistics()['objects'])} icon objects")
    print()

    query_scene = office_scene(0)
    print("=== Query scene (office layout we are looking for) ===")
    print(render_ascii(query_scene, columns=60, rows=14))
    print()

    print("=== Full-scene query: top 5 ===")
    for result in system.query(query_scene).limit(5).execute():
        print(" ", result.describe())
    print()

    print("=== Partial query: desk + monitor + phone only ===")
    partial = (
        system.query(query_scene).partial(["desk", "monitor", "phone"]).limit(5).execute()
    )
    for result in partial:
        print(" ", result.describe())
    print()

    # Dynamic maintenance (Section 3.2): add a coffee mug to one stored image
    # by binary-search insertion into its stored BE-string, then query again.
    print("=== After dynamically adding a 'mug' icon to office-003 ===")
    system.add_object("office-003", "mug", Rectangle(76, 46, 80, 50))
    edited = system.record("office-003")
    print(f"office-003 now has {len(edited.picture)} icons; "
          f"BE-string holds {edited.bestring.total_symbols} symbols")
    for result in system.query(query_scene).limit(3).execute():
        print(" ", result.describe())


if __name__ == "__main__":
    main()
