#!/usr/bin/env python
"""Compare the 2D BE-string against the 2-D string family baselines.

Reproduces, on one synthetic workload, the two comparisons the paper makes in
Sections 2-4:

* **storage** -- symbols/segments needed per image by 2-D strings, 2D G-, C-,
  B- and BE-strings as the number of objects (and their overlap) grows, and
* **similarity cost and quality** -- the O(mn) modified-LCS evaluation versus
  the O(n^2)-pairs + maximum-clique type-1 similarity, both asked to rank the
  same small database for the same query.

Run with:  python examples/baseline_comparison.py
"""

import time

from repro.baselines.b_string import encode_b_string
from repro.baselines.c_string import encode_c_string
from repro.baselines.g_string import encode_g_string
from repro.baselines.twod_string import encode_2d_string
from repro.baselines.type_similarity import SimilarityType, type_similarity
from repro.core.construct import encode_picture
from repro.core.similarity import similarity_between_pictures
from repro.datasets.corpus import planted_retrieval_corpus
from repro.datasets.synthetic import SceneParameters, random_picture, staircase_picture


def storage_comparison() -> None:
    print("=== Storage: total symbols / segments per image ===")
    print(f"{'scene':<18}{'n':>4}{'2D-str':>8}{'G-str':>8}{'C-str':>8}{'B-str':>8}{'BE-str':>8}")
    scenes = [
        ("random (sparse)", random_picture(1, SceneParameters(object_count=8, alignment_probability=0.1))),
        ("random (aligned)", random_picture(2, SceneParameters(object_count=8, alignment_probability=0.8))),
        ("staircase n=8", staircase_picture(8)),
        ("staircase n=16", staircase_picture(16)),
    ]
    for name, picture in scenes:
        print(
            f"{name:<18}{len(picture):>4}"
            f"{encode_2d_string(picture).storage_units:>8}"
            f"{encode_g_string(picture).storage_units:>8}"
            f"{encode_c_string(picture).storage_units:>8}"
            f"{encode_b_string(picture).storage_units:>8}"
            f"{encode_picture(picture).total_symbols:>8}"
        )
    print()


def similarity_comparison() -> None:
    print("=== Similarity: modified LCS vs type-1 clique on the same query ===")
    corpus = planted_retrieval_corpus(seed=23, base_scene_count=1, distractors_per_scene=5)
    query = corpus.queries[0]
    database = corpus.database_pictures

    started = time.perf_counter()
    lcs_ranked = sorted(
        ((picture.name, similarity_between_pictures(query, picture).score) for picture in database),
        key=lambda item: -item[1],
    )
    lcs_seconds = time.perf_counter() - started

    started = time.perf_counter()
    clique_ranked = sorted(
        (
            (picture.name, type_similarity(query, picture, SimilarityType.TYPE_1).similarity)
            for picture in database
        ),
        key=lambda item: -item[1],
    )
    clique_seconds = time.perf_counter() - started

    print(f"{'rank':<6}{'modified LCS':<38}{'type-1 clique':<38}")
    for rank, (lcs_entry, clique_entry) in enumerate(zip(lcs_ranked[:5], clique_ranked[:5]), start=1):
        print(
            f"{rank:<6}"
            f"{lcs_entry[0][:28]:<30}{lcs_entry[1]:<8.3f}"
            f"{clique_entry[0][:28]:<30}{clique_entry[1]:<8d}"
        )
    print()
    print(f"wall time: modified LCS {lcs_seconds * 1000:.1f} ms, "
          f"clique baseline {clique_seconds * 1000:.1f} ms "
          f"({clique_seconds / max(lcs_seconds, 1e-9):.1f}x slower)")
    print()


def main() -> None:
    storage_comparison()
    similarity_comparison()
    print("The BE-string stays linear in the object count (between 2n+1 and 4n+1")
    print("symbols per axis) while the cutting-based variants grow with overlap,")
    print("and the LCS evaluation reproduces the clique ranking at a fraction of")
    print("the cost.")


if __name__ == "__main__":
    main()
