#!/usr/bin/env python
"""Quickstart: encode two images as 2D BE-strings and compare them.

This walks through the paper's pipeline on a tiny hand-built scene:

1. describe an image as icon objects + MBRs (a ``SymbolicPicture``),
2. encode it with ``Convert-2D-Be-String`` (Algorithm 1),
3. evaluate similarity against a second image with the modified LCS
   (Algorithms 2/3), and
4. put a handful of images in a ``RetrievalSystem`` and run a ranked query.

Run with:  python examples/quickstart.py
"""

from repro import Rectangle, RetrievalSystem, SymbolicPicture, encode_picture
from repro.core.similarity import similarity
from repro.iconic.ascii_art import render_ascii


def build_street_scene() -> SymbolicPicture:
    """A small street scene: a car left of a tree, both under a cloud."""
    return SymbolicPicture.build(
        width=100,
        height=60,
        objects=[
            ("car", Rectangle(10, 5, 40, 20)),
            ("tree", Rectangle(60, 5, 80, 35)),
            ("cloud", Rectangle(30, 45, 70, 55)),
        ],
        name="street",
    )


def build_variant_scene() -> SymbolicPicture:
    """The same icons with the car moved to the right of the tree."""
    return SymbolicPicture.build(
        width=100,
        height=60,
        objects=[
            ("car", Rectangle(82, 5, 98, 20)),
            ("tree", Rectangle(20, 5, 40, 35)),
            ("cloud", Rectangle(30, 45, 70, 55)),
        ],
        name="street-variant",
    )


def main() -> None:
    scene = build_street_scene()
    variant = build_variant_scene()

    print("=== The scene ===")
    print(render_ascii(scene, columns=50, rows=12))
    print()

    # Step 1-2: encode as a 2D BE-string.
    bestring = encode_picture(scene)
    print("=== 2D BE-string of the scene ===")
    print("x axis:", bestring.x.to_text())
    print("y axis:", bestring.y.to_text())
    print(f"storage: {bestring.total_symbols} symbols for {len(scene)} objects")
    print()

    # Step 3: similarity via the modified LCS.
    print("=== Similarity (modified LCS) ===")
    self_match = similarity(bestring, bestring)
    cross_match = similarity(bestring, encode_picture(variant))
    print(f"scene vs itself : score={self_match.score:.3f} "
          f"(full match: {self_match.is_full_match})")
    print(f"scene vs variant: score={cross_match.score:.3f} "
          f"(objects with identical relations: {sorted(cross_match.common_objects)})")
    print()

    # Step 4: a small database plus a ranked query through the fluent builder.
    print("=== Ranked retrieval over a small database ===")
    system = RetrievalSystem.from_pictures([scene, variant])
    # Partial query: only two icons are known to the caller.
    results = system.query(scene).partial(["car", "tree"]).limit(5).execute()
    for result in results:
        print(" ", result.describe())


if __name__ == "__main__":
    main()
