#!/usr/bin/env python
"""Rotation / reflection retrieval by string reversal only (Section 4).

A landscape scene is planted in the database only as rotated and mirrored
copies.  A plain similarity query ranks those copies poorly because the axis
strings no longer line up; the transformation-invariant query -- which expands
the query into its six string-reversal variants, exactly as the paper
describes, with no spatial-operator conversion -- retrieves every copy with a
full-score match and reports which transformation matched.

Run with:  python examples/rotation_invariant_search.py
"""

from repro.core.transforms import Transformation
from repro.datasets.scenes import landscape_scene, office_scene
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.datasets.transforms_gen import transformed_variants
from repro.retrieval.system import RetrievalSystem


def main() -> None:
    base = landscape_scene(0)
    variants = transformed_variants(
        base,
        include=(
            Transformation.ROTATE_90,
            Transformation.ROTATE_180,
            Transformation.REFLECT_Y,
        ),
    )
    distractors = random_pictures(
        10, seed=4, parameters=SceneParameters(object_count=8)
    ) + [office_scene(variant) for variant in range(3)]

    system = RetrievalSystem.from_pictures(list(variants.values()) + distractors)
    print(f"database: {len(system)} images "
          f"(3 transformed copies of the query scene + {len(distractors)} distractors)")
    print()

    print("=== Plain query (no transformation invariance) ===")
    for result in system.query(base).limit(5).execution(shortlist=False).execute():
        print(" ", result.describe())
    print()

    print("=== Transformation-invariant query (string reversal only) ===")
    for result in system.query(base).invariant().limit(5).execution(shortlist=False).execute():
        print(" ", result.describe())
    print()

    print("Note how each planted copy now scores 1.000 and the result reports")
    print("which rotation/reflection of the query matched it.")


if __name__ == "__main__":
    main()
