"""Setup script for the 2D BE-string reproduction package.

A classic setuptools layout (setup.py + setup.cfg) is used instead of a
PEP 621 pyproject so that ``pip install -e .`` works in fully offline
environments (no build isolation, no wheel package required).
"""

from setuptools import setup

setup()
