"""Evaluation runner: score retrieval methods over a corpus with ground truth.

A *method* is any callable that takes a query picture and a list of database
pictures and returns the database image names ranked best-first.  The runner
executes every query of a corpus under every method, computes the ranked
retrieval metrics per query and aggregates them, producing the rows reported
in EXPERIMENTS.md for experiments E5, E6 and E9.

Two ready-made methods are provided: the paper's BE-string + modified LCS
retrieval (optionally transformation-invariant) and the baseline clique-based
type-i similarity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.baselines.type_similarity import SimilarityType, type_similarity
from repro.core.similarity import DEFAULT_POLICY, SimilarityPolicy
from repro.datasets.corpus import Corpus
from repro.iconic.picture import SymbolicPicture
from repro.retrieval.metrics import summarize_query
from repro.retrieval.system import RetrievalSystem

#: A retrieval method: (query, database pictures) -> ranked database image names.
RetrievalMethod = Callable[[SymbolicPicture, Sequence[SymbolicPicture]], List[str]]


@dataclass
class MethodEvaluation:
    """Aggregated metrics of one method over one corpus."""

    method_name: str
    per_query: Dict[str, Dict[str, float]] = field(default_factory=dict)
    total_seconds: float = 0.0

    def aggregate(self) -> Dict[str, float]:
        """Mean of every metric over the queries, plus the total wall time."""
        if not self.per_query:
            return {"total_seconds": self.total_seconds}
        keys = next(iter(self.per_query.values())).keys()
        aggregated = {
            key: sum(metrics[key] for metrics in self.per_query.values()) / len(self.per_query)
            for key in keys
        }
        aggregated["total_seconds"] = self.total_seconds
        return aggregated


@dataclass
class EvaluationReport:
    """Evaluations of several methods over the same corpus."""

    corpus_name: str
    methods: Dict[str, MethodEvaluation] = field(default_factory=dict)

    def table(self, metrics: Sequence[str] = ("precision@5", "recall@5", "average_precision")) -> str:
        """Plain-text comparison table (used by benchmarks and examples)."""
        header = ["method"] + list(metrics) + ["seconds"]
        rows = [header]
        for name, evaluation in sorted(self.methods.items()):
            aggregated = evaluation.aggregate()
            rows.append(
                [name]
                + [f"{aggregated.get(metric, 0.0):.3f}" for metric in metrics]
                + [f"{aggregated['total_seconds']:.3f}"]
            )
        widths = [max(len(row[column]) for row in rows) for column in range(len(header))]
        lines = [
            "  ".join(cell.ljust(widths[column]) for column, cell in enumerate(row))
            for row in rows
        ]
        return "\n".join(lines)


def be_string_method(
    policy: SimilarityPolicy = DEFAULT_POLICY, invariant: bool = False
) -> RetrievalMethod:
    """The paper's retrieval: BE-strings + modified LCS (optionally invariant)."""

    def method(query: SymbolicPicture, database: Sequence[SymbolicPicture]) -> List[str]:
        """Rank the database for one query with the BE-string system."""
        system = RetrievalSystem.from_pictures(database, policy=policy)
        results = (
            system.query(query).invariant(invariant).limit(None).execution(shortlist=False).execute()
        )
        return [result.image_id for result in results]

    method.__name__ = "be_string_invariant" if invariant else "be_string"
    return method


def type_similarity_method(similarity_type: SimilarityType = SimilarityType.TYPE_1) -> RetrievalMethod:
    """The baseline retrieval: pairwise relations + maximum complete subgraph."""

    def method(query: SymbolicPicture, database: Sequence[SymbolicPicture]) -> List[str]:
        """Rank the database for one query with the type-similarity baseline."""
        scored = []
        for picture in database:
            result = type_similarity(query, picture, similarity_type)
            scored.append((picture.name, result.similarity))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return [name for name, _ in scored]

    method.__name__ = f"type{similarity_type.value}_clique"
    return method


def evaluate_corpus(
    corpus: Corpus,
    methods: Dict[str, RetrievalMethod],
    cutoffs: Sequence[int] = (1, 3, 5, 10),
) -> EvaluationReport:
    """Run every method over every query of the corpus and aggregate metrics."""
    report = EvaluationReport(corpus_name=corpus.name)
    for method_name, method in methods.items():
        evaluation = MethodEvaluation(method_name=method_name)
        started = time.perf_counter()
        for query in corpus.queries:
            ranked = method(query, corpus.database_pictures)
            relevant = corpus.relevant_to(query.name)
            evaluation.per_query[query.name] = summarize_query(ranked, relevant, cutoffs)
        evaluation.total_seconds = time.perf_counter() - started
        report.methods[method_name] = evaluation
    return report
