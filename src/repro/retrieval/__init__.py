"""Retrieval system and evaluation.

* :class:`~repro.retrieval.system.RetrievalSystem` -- the headless equivalent
  of the paper's Section-5 demonstration system: load a corpus, compose
  queries with the fluent builder (exact, partial, transformation-invariant,
  relation predicates), get ranked results.
* :mod:`~repro.retrieval.querybuilder` -- the fluent
  :class:`~repro.retrieval.querybuilder.QueryBuilder` and its
  :class:`~repro.retrieval.querybuilder.ResultSet` (pagination, explain
  traces, JSONL export).
* :mod:`~repro.retrieval.metrics` -- precision/recall/average-precision and
  related measures over ranked result lists.
* :mod:`~repro.retrieval.evaluation` -- experiment runner that evaluates one
  or more retrieval methods over a corpus with ground truth, producing the
  tables reported in EXPERIMENTS.md.
"""

from repro.retrieval.evaluation import EvaluationReport, MethodEvaluation, evaluate_corpus
from repro.retrieval.querybuilder import QueryBuilder, ResultExplanation, ResultSet
from repro.retrieval.metrics import (
    average_precision,
    f1_score,
    mean_average_precision,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.retrieval.predicates import (
    PredicateMatch,
    RelationKeyword,
    RelationPredicate,
    evaluate_predicates,
    parse_predicate,
    parse_query,
    search_by_predicates,
)
from repro.retrieval.system import RetrievalSystem

__all__ = [
    "EvaluationReport",
    "MethodEvaluation",
    "evaluate_corpus",
    "QueryBuilder",
    "ResultExplanation",
    "ResultSet",
    "PredicateMatch",
    "RelationKeyword",
    "RelationPredicate",
    "evaluate_predicates",
    "parse_predicate",
    "parse_query",
    "search_by_predicates",
    "average_precision",
    "f1_score",
    "mean_average_precision",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "RetrievalSystem",
]
