"""The fluent query builder and its :class:`ResultSet`.

This module is the public face of the unified query pipeline.  Instead of six
overlapping ``search*`` methods, a retrieval is *composed*::

    results = (
        system.query()
        .similar_to(picture)
        .invariant()
        .partial(["phone", "desk"])
        .where("phone right-of monitor")
        .min_score(0.3)
        .limit(10)
        .execute()
    )

Each builder call refines one clause of a declarative
:class:`~repro.index.spec.QuerySpec`; ``execute()`` compiles the spec and
runs it through :meth:`repro.index.query.QueryEngine.execute_spec`, returning
a :class:`ResultSet` that supports iteration, pagination (``.page(n, size)``),
per-result execution traces (``.explain()``) and dict/JSONL export
(``.to_dicts()`` / ``.to_jsonl()``).

The legacy ``RetrievalSystem.search*`` methods are thin deprecated shims over
this builder and return byte-identical rankings; see ``docs/query-api.md``
for the migration table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Union

from repro.core.similarity import SimilarityPolicy
from repro.core.transforms import Transformation
from repro.iconic.picture import SymbolicPicture
from repro.index.execution import ExecutionOptions
from repro.index.ranking import RankedResult
from repro.index.spec import QuerySpec, QuerySpecError, QueryTrace, SpecOutcome
from repro.retrieval.predicates import (
    And,
    GradedMatch,
    Leaf,
    Not,
    Or,
    PredicateMatch,
    PredicateNode,
    RelationPredicate,
    is_crisp_conjunction,
    parse_tree,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.retrieval.system import RetrievalSystem

__all__ = [
    "QueryBuilder",
    "QuerySpec",
    "QuerySpecError",
    "ResultExplanation",
    "ResultSet",
]

#: One entry of a result set: similarity, predicate, or graded ranking.
ResultEntry = Union[RankedResult, PredicateMatch, GradedMatch]


def _apply_annotations(node: PredicateNode, fuzzy: bool, weight: float) -> PredicateNode:
    """Apply ``where()``-level ``fuzzy``/``weight`` defaults to a clause's leaves.

    Explicit per-leaf ``[...]`` annotations in the query text win: ``fuzzy``
    only switches leaves on (never off), and ``weight`` only replaces the
    default weight of 1.0.
    """
    if isinstance(node, Leaf):
        return Leaf(
            predicate=node.predicate,
            weight=node.weight if node.weight != 1.0 else weight,
            fuzzy=node.fuzzy or fuzzy,
        )
    if isinstance(node, Not):
        return Not(_apply_annotations(node.child, fuzzy, weight))
    children = tuple(
        _apply_annotations(child, fuzzy, weight) for child in node.children
    )
    return And(children) if isinstance(node, And) else Or(children)


@dataclass(frozen=True)
class ResultExplanation:
    """The per-result trace rendered by :meth:`ResultSet.explain`."""

    rank: int
    image_id: str
    score: float
    #: Which pipeline stage admitted the image (``full-scan``,
    #: ``inverted-index+signature``, ``predicate-evaluated``, ...) or ``None``
    #: when no trace was recorded (e.g. batch execution).
    stage: Optional[str]
    #: Whether the similarity score was served from the score cache
    #: (``None`` when unknown or not applicable).
    cache_hit: Optional[bool]
    #: Winning transformation of an invariant evaluation (similarity only).
    transformation: Optional[str] = None
    lcs_x: Optional[int] = None
    lcs_y: Optional[int] = None
    common_objects: Optional[List[str]] = None
    satisfied: Optional[List[str]] = None
    unsatisfied: Optional[List[str]] = None
    #: Graded queries: the tree's overall satisfaction degree.
    degree: Optional[float] = None
    #: Graded queries: each leaf's annotated text and satisfaction degree.
    leaf_degrees: Optional[List[tuple]] = None

    def describe(self) -> str:
        """One-line rendering used by the CLI ``explain`` command."""
        parts = [f"#{self.rank:<3d} {self.image_id:<24s} score={self.score:.3f}"]
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.cache_hit is not None:
            parts.append("cache=hit" if self.cache_hit else "cache=miss")
        if self.transformation is not None:
            parts.append(f"via={self.transformation}")
        if self.lcs_x is not None and self.lcs_y is not None:
            parts.append(f"lcs={self.lcs_x}/{self.lcs_y}")
        if self.common_objects:
            parts.append(f"objects=[{', '.join(self.common_objects)}]")
        if self.degree is not None:
            parts.append(f"degree={self.degree:.3f}")
        if self.leaf_degrees:
            rendered = "; ".join(f"{text}={value:.3f}" for text, value in self.leaf_degrees)
            parts.append(f"degrees=[{rendered}]")
        if self.satisfied is not None:
            parts.append(f"holds=[{'; '.join(self.satisfied) or '-'}]")
        if self.unsatisfied:
            parts.append(f"fails=[{'; '.join(self.unsatisfied)}]")
        return " ".join(parts)


class ResultSet(Sequence):
    """An immutable, ordered collection of retrieval results.

    Behaves as a sequence of :class:`~repro.index.ranking.RankedResult` (or
    :class:`~repro.retrieval.predicates.PredicateMatch` for predicate-only
    queries), best first, and adds pagination, explain traces and export.
    """

    def __init__(
        self,
        results: Sequence[ResultEntry],
        spec: Optional[QuerySpec] = None,
        outcome: Optional[SpecOutcome] = None,
        ranks: Optional[List[int]] = None,
    ) -> None:
        self._results: List[ResultEntry] = list(results)
        self.spec = spec
        self.outcome = outcome
        #: Global 1-based rank of each entry, preserved across page()/slicing
        #: (PredicateMatch carries no rank of its own, unlike RankedResult).
        self._ranks: List[int] = (
            list(ranks) if ranks is not None else list(range(1, len(self._results) + 1))
        )

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[ResultEntry]:
        return iter(self._results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(
                self._results[index],
                spec=self.spec,
                outcome=self.outcome,
                ranks=self._ranks[index],
            )
        return self._results[index]

    def __bool__(self) -> bool:
        return bool(self._results)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self._results == other._results
        if isinstance(other, list):
            return self._results == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(entry.image_id for entry in self._results[:3])
        suffix = ", ..." if len(self._results) > 3 else ""
        return f"ResultSet({len(self._results)} results: [{preview}{suffix}])"

    # ------------------------------------------------------------------
    # Pagination
    # ------------------------------------------------------------------
    def page(self, number: int, size: int) -> "ResultSet":
        """One page of the ranking (pages are 1-based).

        Returns:
            A new :class:`ResultSet` holding results
            ``[(number-1)*size, number*size)``; empty past the last page.

        Raises:
            ValueError: if ``number`` or ``size`` is not positive.
        """
        if number < 1:
            raise ValueError("page numbers are 1-based")
        if size < 1:
            raise ValueError("page size must be at least 1")
        start = (number - 1) * size
        return self[start : start + size]

    def page_count(self, size: int) -> int:
        """How many pages of ``size`` the result set spans."""
        if size < 1:
            raise ValueError("page size must be at least 1")
        return (len(self._results) + size - 1) // size

    # ------------------------------------------------------------------
    # Explain
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Optional[QueryTrace]:
        """The pipeline trace of the execution (``None`` for batch results)."""
        return self.outcome.trace if self.outcome is not None else None

    def explain(self) -> List[ResultExplanation]:
        """Per-result execution traces, in ranking order.

        Each entry reports which shortlist stage admitted the image, whether
        its similarity score was a cache hit, the winning transformation and
        per-axis LCS lengths (similarity results), and the satisfied /
        unsatisfied predicates (predicate results).
        """
        trace = self.trace
        matches = self.outcome.predicate_matches if self.outcome is not None else None
        explanations: List[ResultExplanation] = []
        for position, entry in enumerate(self._results):
            candidate = trace.candidates.get(entry.image_id) if trace is not None else None
            stage = candidate.stage if candidate is not None else None
            cache_hit = candidate.cache_hit if candidate is not None else None
            if isinstance(entry, RankedResult):
                match = matches.get(entry.image_id) if matches else None
                graded = isinstance(match, GradedMatch)
                explanations.append(
                    ResultExplanation(
                        rank=entry.rank,
                        image_id=entry.image_id,
                        score=entry.score,
                        stage=stage,
                        cache_hit=cache_hit,
                        transformation=entry.similarity.transformation.value,
                        lcs_x=entry.similarity.x.lcs_length,
                        lcs_y=entry.similarity.y.lcs_length,
                        common_objects=sorted(entry.similarity.common_objects),
                        satisfied=(
                            [predicate.to_text() for predicate in match.satisfied]
                            if match is not None and not graded
                            else None
                        ),
                        degree=match.degree if graded else None,
                        leaf_degrees=list(match.leaf_degrees) if graded else None,
                    )
                )
            elif isinstance(entry, GradedMatch):
                explanations.append(
                    ResultExplanation(
                        rank=self._ranks[position],
                        image_id=entry.image_id,
                        score=entry.score,
                        stage=stage,
                        cache_hit=None,
                        degree=entry.degree,
                        leaf_degrees=list(entry.leaf_degrees),
                    )
                )
            else:
                explanations.append(
                    ResultExplanation(
                        rank=self._ranks[position],
                        image_id=entry.image_id,
                        score=entry.score,
                        stage=stage,
                        cache_hit=None,
                        satisfied=[predicate.to_text() for predicate in entry.satisfied],
                        unsatisfied=[predicate.to_text() for predicate in entry.unsatisfied],
                    )
                )
        return explanations

    def explain_report(self) -> str:
        """Multi-line explain report: query funnel summary + per-result lines.

        When the two-stage signature shortlist pruned candidates, a sampled
        ``pruned`` section names each rejected image's rejecting stage and
        the score bound that failed to clear the query's minimum score.
        Non-default executions add an ``exec`` line (kernel, strategy,
        ``candidates_examined``, ``bound_skipped``, ``bound_cutoff``) and a
        sampled ``skipped`` section for anytime bound cut-offs.
        """
        from repro.index.spec import (
            STAGE_BITMAP_PRUNED,
            STAGE_BOUND_SKIPPED,
            STAGE_RELATION_PRUNED,
        )

        lines: List[str] = []
        if self.spec is not None:
            lines.append(f"query: {self.spec.describe()}")
        trace = self.trace
        if trace is not None:
            lines.append(f"plan:  {trace.describe()}")
            if trace.kernel != "reference" or trace.strategy != "exhaustive":
                exec_parts = [
                    f"kernel={trace.kernel}",
                    f"strategy={trace.strategy}",
                    f"candidates_examined={trace.candidates_examined}",
                    f"bound_skipped={trace.bound_skipped}",
                ]
                if trace.bound_cutoff is not None:
                    exec_parts.append(f"bound_cutoff={trace.bound_cutoff:.3f}")
                lines.append("exec:  " + " ".join(exec_parts))
        if not self._results:
            lines.append("no matching images")
        for explanation in self.explain():
            lines.append(explanation.describe())
        if trace is not None:
            for candidate in trace.candidates.values():
                if candidate.stage in (STAGE_BITMAP_PRUNED, STAGE_RELATION_PRUNED):
                    bound = (
                        f" bound={candidate.score_bound:.3f}"
                        if candidate.score_bound is not None
                        else ""
                    )
                    lines.append(
                        f"pruned {candidate.image_id}: {candidate.stage}{bound}"
                    )
                elif candidate.stage == STAGE_BOUND_SKIPPED:
                    bound = (
                        f" bound={candidate.score_bound:.3f}"
                        if candidate.score_bound is not None
                        else ""
                    )
                    lines.append(
                        f"skipped {candidate.image_id}: {candidate.stage}{bound}"
                    )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        """The ranking as JSON-serialisable dicts (one per result)."""
        matches = self.outcome.predicate_matches if self.outcome is not None else None
        dicts: List[dict] = []
        for position, entry in enumerate(self._results):
            if isinstance(entry, RankedResult):
                payload = {
                    "rank": entry.rank,
                    "image_id": entry.image_id,
                    "score": entry.score,
                    "transformation": entry.similarity.transformation.value,
                    "lcs_x": entry.similarity.x.lcs_length,
                    "lcs_y": entry.similarity.y.lcs_length,
                    "common_objects": sorted(entry.similarity.common_objects),
                }
                match = matches.get(entry.image_id) if matches else None
                if isinstance(match, GradedMatch):
                    payload["degree"] = match.degree
                    payload["leaf_degrees"] = dict(match.leaf_degrees)
                dicts.append(payload)
            elif isinstance(entry, GradedMatch):
                dicts.append(
                    {
                        "rank": self._ranks[position],
                        "image_id": entry.image_id,
                        "score": entry.score,
                        "degree": entry.degree,
                        "leaf_degrees": dict(entry.leaf_degrees),
                    }
                )
            else:
                dicts.append(
                    {
                        "rank": self._ranks[position],
                        "image_id": entry.image_id,
                        "score": entry.score,
                        "satisfied": [predicate.to_text() for predicate in entry.satisfied],
                        "unsatisfied": [
                            predicate.to_text() for predicate in entry.unsatisfied
                        ],
                    }
                )
        return dicts

    def to_jsonl(self) -> str:
        """The ranking as JSON Lines text (one result object per line)."""
        return "\n".join(json.dumps(entry, sort_keys=True) for entry in self.to_dicts())


class QueryBuilder:
    """Fluent, composable construction of one :class:`QuerySpec`.

    Builders are cheap mutable accumulators obtained from
    :meth:`RetrievalSystem.query`; every clause method returns ``self`` so
    calls chain.  ``spec()`` freezes the accumulated state, ``execute()``
    runs it.  A builder can be executed repeatedly (e.g. to re-run a query
    after database updates).
    """

    def __init__(
        self, system: "RetrievalSystem", picture: Optional[SymbolicPicture] = None
    ) -> None:
        self._system = system
        self._picture = picture
        self._identifiers: Optional[tuple] = None
        self._transformations: tuple = (Transformation.IDENTITY,)
        self._where_clauses: List[PredicateNode] = []
        self._composition: str = "product"
        self._blend: float = 0.5
        self._limit: Optional[int] = 10
        self._minimum_score: float = 0.0
        self._minimum_shared_labels: int = 1
        self._use_filters: bool = True
        self._use_cache: bool = True
        self._policy: Optional[SimilarityPolicy] = None
        self._execution: Optional[ExecutionOptions] = None

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    def similar_to(self, picture: SymbolicPicture) -> "QueryBuilder":
        """Rank stored images by modified-LCS similarity to ``picture``."""
        self._picture = picture
        return self

    def partial(self, identifiers: Sequence[str]) -> "QueryBuilder":
        """Restrict the similarity clause to a subset of the query's icons.

        This is the paper's uncertain-target scenario: only the named icons
        (and their arrangement) take part in the evaluation.
        """
        self._identifiers = tuple(identifiers)
        return self

    def invariant(self, enabled: bool = True) -> "QueryBuilder":
        """Search over all rotations/reflections of the query (string reversal)."""
        self._transformations = tuple(Transformation) if enabled else (
            Transformation.IDENTITY,
        )
        return self

    def transformations(self, *transformations: Transformation) -> "QueryBuilder":
        """Search over an explicit set of query transformations."""
        self._transformations = tuple(transformations)
        return self

    def where(
        self,
        predicates: Union[str, RelationPredicate, PredicateNode],
        *,
        fuzzy: bool = False,
        weight: float = 1.0,
    ) -> "QueryBuilder":
        """Constrain images by relation predicates.

        Accepts predicate text in the full boolean grammar — flat
        conjunctions (``"phone right-of monitor and lamp above desk"``) parse
        exactly as before, and the grammar adds ``not`` / ``or`` /
        parentheses and per-leaf ``[fuzzy]`` / ``[w=N]`` annotations (see
        ``docs/predicates.md``).  A pre-parsed
        :class:`~repro.retrieval.predicates.RelationPredicate` or a
        :data:`~repro.retrieval.predicates.PredicateNode` is accepted too.
        Repeated calls combine with ``and``.

        ``fuzzy=True`` / ``weight=N`` apply to every leaf of *this* clause
        (explicit ``[...]`` annotations in the text win).  A plain
        conjunction with default annotations compiles to the historical
        crisp fast path: alone it ranks by the fraction of predicates
        satisfied, with :meth:`similar_to` it filters to full matches.
        Anything graded — ``not``, ``or``, ``fuzzy``, non-unit weights —
        ranks by the tree's satisfaction *degree*; combined with a picture
        the degree composes with the similarity score (see :meth:`compose`).

        Raises:
            repro.retrieval.predicates.PredicateError: on malformed text.
        """
        if isinstance(predicates, RelationPredicate):
            clause: PredicateNode = Leaf(predicate=predicates)
        elif isinstance(predicates, str):
            clause = parse_tree(predicates)
        else:
            clause = predicates
        if fuzzy or weight != 1.0:
            clause = _apply_annotations(clause, fuzzy, weight)
        self._where_clauses.append(clause)
        return self

    def compose(self, mode: str = "product", blend: Optional[float] = None) -> "QueryBuilder":
        """Pick how a graded predicate degree composes with similarity.

        ``"product"`` (the default) multiplies: ``similarity * degree``.
        ``"sum"`` blends: ``blend * similarity + (1 - blend) * degree``
        (``blend`` defaults to 0.5).  Ignored for crisp conjunctions and
        predicate-only queries.

        Raises:
            repro.index.spec.QuerySpecError: on an unknown mode or a blend
                outside [0, 1] (raised when the spec is compiled).
        """
        self._composition = mode
        if blend is not None:
            self._blend = blend
        return self

    # ------------------------------------------------------------------
    # Knobs
    # ------------------------------------------------------------------
    def limit(self, count: Optional[int]) -> "QueryBuilder":
        """Keep only the top ``count`` results (``None`` for unlimited)."""
        self._limit = count
        return self

    def min_score(self, score: float) -> "QueryBuilder":
        """Drop results scoring below ``score``."""
        self._minimum_score = score
        return self

    def min_shared_labels(self, count: int) -> "QueryBuilder":
        """Require candidates to share at least ``count`` labels with the query."""
        self._minimum_shared_labels = count
        return self

    def execution(
        self, options: Optional[ExecutionOptions] = None, **overrides
    ) -> "QueryBuilder":
        """Set per-query execution options (kernel, strategy, shortlist, ...).

        Accepts a full :class:`~repro.index.execution.ExecutionOptions` or
        individual fields as keywords (``kernel="bitparallel"``,
        ``strategy="anytime"``, ``shortlist=False``, ``cache=False``, ...).
        Repeated calls accumulate: later non-``None`` fields win.  Fields
        left unset inherit the engine's defaults.

        Raises:
            ValueError: on an unknown field or an out-of-vocabulary value.
        """
        addition = options if options is not None else ExecutionOptions()
        if overrides:
            addition = addition.overlaid(ExecutionOptions(**overrides))
        base = self._execution if self._execution is not None else ExecutionOptions()
        self._execution = base.overlaid(addition)
        return self

    def filters(self, enabled: bool = True) -> "QueryBuilder":
        """Toggle the inverted-index + signature candidate shortlist.

        .. deprecated:: 1.2
            Use ``execution(shortlist=...)`` instead; see ``docs/query-api.md``.
        """
        self._system._warn_deprecated(
            "query().filters(...)", "query().execution(shortlist=...)"
        )
        return self.execution(shortlist=enabled)

    def no_filters(self) -> "QueryBuilder":
        """Score every stored image (ablation mode; skips the shortlist).

        .. deprecated:: 1.2
            Use ``execution(shortlist=False)`` instead; see ``docs/query-api.md``.
        """
        self._system._warn_deprecated(
            "query().no_filters()", "query().execution(shortlist=False)"
        )
        return self.execution(shortlist=False)

    def cached(self, enabled: bool = True) -> "QueryBuilder":
        """Toggle the score cache for this query (on by default).

        .. deprecated:: 1.2
            Use ``execution(cache=...)`` instead; see ``docs/query-api.md``.
        """
        self._system._warn_deprecated(
            "query().cached(...)", "query().execution(cache=...)"
        )
        return self.execution(cache=enabled)

    def policy(self, policy: SimilarityPolicy) -> "QueryBuilder":
        """Override the similarity policy for this query."""
        self._policy = policy
        return self

    # ------------------------------------------------------------------
    # Compilation and execution
    # ------------------------------------------------------------------
    def spec(self) -> QuerySpec:
        """Freeze the builder into a validated :class:`QuerySpec`.

        Returns:
            The declarative spec the unified pipeline executes.

        Raises:
            repro.index.spec.QuerySpecError: if the accumulated clauses do
                not form a runnable query.
        """
        use_filters = self._use_filters
        use_cache = self._use_cache
        if self._execution is not None:
            # Keep the legacy spec fields consistent with the execution
            # options so pre-ExecutionOptions readers see the same query.
            if self._execution.shortlist is not None:
                use_filters = self._execution.shortlist
            if self._execution.cache is not None:
                use_cache = self._execution.cache
        # A plain conjunction of unannotated leaves compiles to the
        # historical flat predicate tuple in query order (the byte-identical
        # crisp fast path); anything graded ships the normalised tree, whose
        # canonical child order makes logically-equal queries cache-key equal.
        predicates: tuple = ()
        predicate_tree = None
        if self._where_clauses:
            if all(is_crisp_conjunction(clause) for clause in self._where_clauses):
                predicates = tuple(
                    leaf.predicate
                    for clause in self._where_clauses
                    for leaf in clause.leaves()
                )
            else:
                combined = (
                    self._where_clauses[0]
                    if len(self._where_clauses) == 1
                    else And(tuple(self._where_clauses))
                )
                predicate_tree = combined.normalized()
        spec = QuerySpec(
            picture=self._picture,
            identifiers=self._identifiers,
            transformations=self._transformations,
            predicates=predicates,
            predicate_tree=predicate_tree,
            predicate_composition=self._composition,
            predicate_blend=self._blend,
            limit=self._limit,
            minimum_score=self._minimum_score,
            minimum_shared_labels=self._minimum_shared_labels,
            use_filters=use_filters,
            use_cache=use_cache,
            policy=self._policy if self._policy is not None else self._system.policy,
            execution=self._execution,
        )
        spec.validate()
        return spec

    def execute(self) -> ResultSet:
        """Compile and run the query through the unified pipeline.

        Returns:
            A :class:`ResultSet` with the ranking, trace and export helpers.
        """
        spec = self.spec()
        outcome = self._system._engine.execute_spec(spec)
        return ResultSet(outcome.results, spec=spec, outcome=outcome)

    def explain(self) -> str:
        """Execute the query and return its explain report (convenience)."""
        return self.execute().explain_report()

