"""Relation-predicate queries: "find images where A is left of B".

The introduction of the paper motivates relative-position retrieval with
queries such as "find all images which icon A locates at the left side and
icon B locates at the right".  This module provides that query form on top of
the BE-string machinery: a small predicate language (``"car left-of tree"``)
whose predicates are evaluated against the pairwise relations recovered from a
stored image's BE-string (:mod:`repro.core.reasoning`), with ranking by the
fraction of predicates an image satisfies.

The predicate vocabulary is deliberately coarse -- it names directional and
topological relations, not the full 169 Allen-pair categories -- because that
is the granularity a user query works at.

Beyond the original flat conjunctions, the language has a full boolean
grammar (``not`` / ``or`` / parentheses) with per-leaf ``[fuzzy]`` and
``[w=N]`` annotations, parsed by :func:`parse_tree` into a small AST
(:class:`Leaf` / :class:`Not` / :class:`And` / :class:`Or`) whose
satisfaction is a *degree* in [0, 1] rather than a boolean — see
``docs/predicates.md`` for the grammar and the degree semantics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.bestring import BEString2D
from repro.core.reasoning import boundary_ranks
from repro.geometry.allen import AllenRelation, allen_relation
from repro.geometry.interval import Interval
from repro.geometry.relations import (
    degree_before,
    degree_covers,
    degree_meets,
    degree_shares,
    degree_within,
)


class PredicateError(ValueError):
    """Raised on an unknown relation keyword or malformed predicate text."""


class RelationKeyword(Enum):
    """The relation vocabulary of the predicate language."""

    LEFT_OF = "left-of"
    RIGHT_OF = "right-of"
    ABOVE = "above"
    BELOW = "below"
    OVERLAPS = "overlaps"
    CONTAINS = "contains"
    INSIDE = "inside"
    TOUCHES = "touches"
    SAME_COLUMN = "same-column"
    SAME_ROW = "same-row"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Accepted spellings for each keyword (underscores and a few synonyms).
_ALIASES: Dict[str, RelationKeyword] = {}
for _keyword in RelationKeyword:
    _ALIASES[_keyword.value] = _keyword
    _ALIASES[_keyword.value.replace("-", "_")] = _keyword
_ALIASES.update(
    {
        "leftof": RelationKeyword.LEFT_OF,
        "rightof": RelationKeyword.RIGHT_OF,
        "over": RelationKeyword.ABOVE,
        "under": RelationKeyword.BELOW,
        "within": RelationKeyword.INSIDE,
        "covers": RelationKeyword.CONTAINS,
        "intersects": RelationKeyword.OVERLAPS,
        "beside": RelationKeyword.SAME_ROW,
    }
)

#: Relations in which the two projections share at least one point.
_SHARING = {
    AllenRelation.MEETS,
    AllenRelation.MET_BY,
    AllenRelation.OVERLAPS,
    AllenRelation.OVERLAPPED_BY,
    AllenRelation.STARTS,
    AllenRelation.STARTED_BY,
    AllenRelation.DURING,
    AllenRelation.CONTAINS,
    AllenRelation.FINISHES,
    AllenRelation.FINISHED_BY,
    AllenRelation.EQUALS,
}

#: Relations meaning "the first interval covers the second".
_COVERING = {
    AllenRelation.CONTAINS,
    AllenRelation.STARTED_BY,
    AllenRelation.FINISHED_BY,
    AllenRelation.EQUALS,
}

#: Relations meaning "the first interval lies within the second".
_WITHIN = {
    AllenRelation.DURING,
    AllenRelation.STARTS,
    AllenRelation.FINISHES,
    AllenRelation.EQUALS,
}


@dataclass(frozen=True)
class RelationPredicate:
    """One atomic predicate: ``subject RELATION object`` over icon labels."""

    subject: str
    relation: RelationKeyword
    target: str

    def __post_init__(self) -> None:
        if not self.subject or not self.target:
            raise PredicateError("predicates need a non-empty subject and target label")

    def to_text(self) -> str:
        """Canonical text form, e.g. ``"car left-of tree"``."""
        return f"{self.subject} {self.relation.value} {self.target}"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def holds_between(self, subject_x: Interval, subject_y: Interval,
                      target_x: Interval, target_y: Interval) -> bool:
        """Evaluate the predicate on two objects' (ordinal or metric) intervals."""
        x = allen_relation(subject_x, target_x)
        y = allen_relation(subject_y, target_y)
        keyword = self.relation
        if keyword is RelationKeyword.LEFT_OF:
            return x in (AllenRelation.BEFORE, AllenRelation.MEETS)
        if keyword is RelationKeyword.RIGHT_OF:
            return x in (AllenRelation.AFTER, AllenRelation.MET_BY)
        if keyword is RelationKeyword.ABOVE:
            return y in (AllenRelation.AFTER, AllenRelation.MET_BY)
        if keyword is RelationKeyword.BELOW:
            return y in (AllenRelation.BEFORE, AllenRelation.MEETS)
        if keyword is RelationKeyword.OVERLAPS:
            return x in _SHARING and y in _SHARING
        if keyword is RelationKeyword.CONTAINS:
            return x in _COVERING and y in _COVERING
        if keyword is RelationKeyword.INSIDE:
            return x in _WITHIN and y in _WITHIN
        if keyword is RelationKeyword.TOUCHES:
            shares = x in _SHARING and y in _SHARING
            meets = AllenRelation.MEETS in (x, y) or AllenRelation.MET_BY in (x, y)
            return shares and meets
        if keyword is RelationKeyword.SAME_COLUMN:
            return x in _SHARING
        if keyword is RelationKeyword.SAME_ROW:
            return y in _SHARING
        raise PredicateError(f"unhandled relation keyword {keyword!r}")

    def degree_between(self, subject_x: Interval, subject_y: Interval,
                       target_x: Interval, target_y: Interval) -> float:
        """Graded satisfaction degree of the predicate on two objects' intervals.

        Returns exactly ``1.0`` when :meth:`holds_between` is true, and
        otherwise a degree in ``[0, 1)`` that decays with the boundary
        distance by which the relation is violated (axis degrees composed
        with ``min``; see :mod:`repro.geometry.relations`).
        """
        if self.holds_between(subject_x, subject_y, target_x, target_y):
            return 1.0
        keyword = self.relation
        if keyword is RelationKeyword.LEFT_OF:
            degree = degree_before(subject_x, target_x)
        elif keyword is RelationKeyword.RIGHT_OF:
            degree = degree_before(target_x, subject_x)
        elif keyword is RelationKeyword.ABOVE:
            degree = degree_before(target_y, subject_y)
        elif keyword is RelationKeyword.BELOW:
            degree = degree_before(subject_y, target_y)
        elif keyword is RelationKeyword.OVERLAPS:
            degree = min(
                degree_shares(subject_x, target_x), degree_shares(subject_y, target_y)
            )
        elif keyword is RelationKeyword.CONTAINS:
            degree = min(
                degree_covers(subject_x, target_x), degree_covers(subject_y, target_y)
            )
        elif keyword is RelationKeyword.INSIDE:
            degree = min(
                degree_within(subject_x, target_x), degree_within(subject_y, target_y)
            )
        elif keyword is RelationKeyword.TOUCHES:
            degree = min(
                degree_shares(subject_x, target_x),
                degree_shares(subject_y, target_y),
                max(
                    degree_meets(subject_x, target_x),
                    degree_meets(subject_y, target_y),
                ),
            )
        elif keyword is RelationKeyword.SAME_COLUMN:
            degree = degree_shares(subject_x, target_x)
        elif keyword is RelationKeyword.SAME_ROW:
            degree = degree_shares(subject_y, target_y)
        else:  # pragma: no cover - the keyword enum is closed
            raise PredicateError(f"unhandled relation keyword {keyword!r}")
        # The crisp check above already returned 1.0; a near-miss must rank
        # strictly below every crisp match even in degenerate corners.
        return min(degree, 1.0 - 1e-9)


def parse_predicate(text: str) -> RelationPredicate:
    """Parse one predicate of the form ``"<label> <relation> <label>"``.

    Returns:
        The parsed :class:`RelationPredicate`.

    Raises:
        PredicateError: on a malformed predicate or an unknown relation
            keyword.
    """
    tokens = text.strip().split()
    if len(tokens) != 3:
        raise PredicateError(
            f"a predicate needs exactly three tokens (subject relation target), got {text!r}"
        )
    subject, relation_text, target = tokens
    keyword = _ALIASES.get(relation_text.lower())
    if keyword is None:
        raise PredicateError(
            f"unknown relation {relation_text!r}; valid relations: "
            f"{sorted(alias for alias in _ALIASES)}"
        )
    return RelationPredicate(subject=subject, relation=keyword, target=target)


def parse_query(text: str) -> List[RelationPredicate]:
    """Parse a conjunction of predicates separated by ``and`` / ``,`` / ``;``.

    Returns:
        One :class:`RelationPredicate` per conjunct, in query order.

    Raises:
        PredicateError: if the query is empty or any conjunct is malformed.
    """
    parts = [part for part in re.split(r"\s+and\s+|[,;]", text.strip()) if part.strip()]
    if not parts:
        raise PredicateError("the predicate query is empty")
    return [parse_predicate(part) for part in parts]


# ----------------------------------------------------------------------
# Predicate AST: graded boolean combinations of relation predicates
# ----------------------------------------------------------------------
#: Words the grammar reserves; they can never be subject/target labels.
RESERVED_WORDS = frozenset({"and", "or", "not", "fuzzy"})

#: Composition modes for blending a predicate degree with LCS similarity.
COMPOSITIONS = ("product", "sum")


def _format_weight(weight: float) -> str:
    return f"{weight:g}"


@dataclass(frozen=True)
class Leaf:
    """One annotated atomic predicate of the AST.

    ``weight`` biases the leaf inside an ``and`` (weighted mean); ``fuzzy``
    switches the leaf from a 0/1 indicator to the graded boundary-distance
    degree of :meth:`RelationPredicate.degree_between`.
    """

    predicate: RelationPredicate
    weight: float = 1.0
    fuzzy: bool = False

    def __post_init__(self) -> None:
        if not (self.weight > 0.0):
            raise PredicateError(
                f"predicate weight must be positive, got {self.weight!r}"
            )

    def to_text(self) -> str:
        """Canonical text form, annotations included (round-trips via parsing)."""
        annotations = []
        if self.fuzzy:
            annotations.append("fuzzy")
        if self.weight != 1.0:
            annotations.append(f"w={_format_weight(self.weight)}")
        suffix = f" [{' '.join(annotations)}]" if annotations else ""
        return f"{self.predicate.to_text()}{suffix}"

    def normalized(self) -> "Leaf":
        """Leaves are already canonical."""
        return self

    def leaves(self) -> Iterator["Leaf"]:
        """Yield this leaf."""
        yield self

    def degree(self, leaf_degree: Callable[["Leaf"], float]) -> float:
        """Satisfaction degree of the leaf under ``leaf_degree``."""
        return leaf_degree(self)

    def to_dict(self) -> dict:
        """JSON-compatible wire form (see ``docs/predicates.md``)."""
        payload = {
            "subject": self.predicate.subject,
            "relation": self.predicate.relation.value,
            "target": self.predicate.target,
        }
        if self.weight != 1.0:
            payload["weight"] = self.weight
        if self.fuzzy:
            payload["fuzzy"] = True
        return payload


@dataclass(frozen=True)
class Not:
    """Negation: degree ``1 - child``."""

    child: "PredicateNode"

    def to_text(self) -> str:
        """Canonical text form (parenthesises ``and``/``or`` children)."""
        inner = self.child.to_text()
        if isinstance(self.child, (And, Or)):
            inner = f"({inner})"
        return f"not {inner}"

    def normalized(self) -> "PredicateNode":
        """Eliminate double negation; normalise the child."""
        child = self.child.normalized()
        if isinstance(child, Not):
            return child.child
        return Not(child)

    def leaves(self) -> Iterator[Leaf]:
        """Yield the leaves of the subtree."""
        yield from self.child.leaves()

    def degree(self, leaf_degree: Callable[[Leaf], float]) -> float:
        """Satisfaction degree: the complement of the child's degree."""
        return 1.0 - self.child.degree(leaf_degree)

    def to_dict(self) -> dict:
        """JSON-compatible wire form."""
        return {"op": "not", "child": self.child.to_dict()}


def _child_weight(node: "PredicateNode") -> float:
    """Weight a child contributes to a weighted mean (1.0 for non-leaves)."""
    return node.weight if isinstance(node, Leaf) else 1.0


@dataclass(frozen=True)
class And:
    """Conjunction: the weighted mean of the children's degrees.

    With unit weights and crisp leaves this is exactly the historical
    "fraction of predicates satisfied" ranking of
    :class:`PredicateMatch`.
    """

    children: Tuple["PredicateNode", ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.children:
            raise PredicateError("'and' needs at least one operand")

    def to_text(self) -> str:
        """Canonical text form (parenthesises nested ``and``/``or``)."""
        parts = []
        for child in self.children:
            text = child.to_text()
            if isinstance(child, (And, Or)):
                text = f"({text})"
            parts.append(text)
        return " and ".join(parts)

    def normalized(self) -> "PredicateNode":
        """Flatten nested conjunctions and sort children canonically.

        Duplicate children are *kept*: the weighted mean counts a repeated
        conjunct twice, exactly like the historical flat list did.
        """
        flattened: List[PredicateNode] = []
        for child in self.children:
            child = child.normalized()
            if isinstance(child, And):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        if len(flattened) == 1:
            return flattened[0]
        flattened.sort(key=lambda node: node.to_text())
        return And(tuple(flattened))

    def leaves(self) -> Iterator[Leaf]:
        """Yield the leaves of the subtree, left to right."""
        for child in self.children:
            yield from child.leaves()

    def degree(self, leaf_degree: Callable[[Leaf], float]) -> float:
        """Weighted mean of the children's degrees."""
        total = sum(_child_weight(child) for child in self.children)
        return (
            sum(
                _child_weight(child) * child.degree(leaf_degree)
                for child in self.children
            )
            / total
        )

    def to_dict(self) -> dict:
        """JSON-compatible wire form."""
        return {"op": "and", "children": [child.to_dict() for child in self.children]}


@dataclass(frozen=True)
class Or:
    """Disjunction: the maximum of the children's degrees."""

    children: Tuple["PredicateNode", ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.children:
            raise PredicateError("'or' needs at least one operand")

    def to_text(self) -> str:
        """Canonical text form (``or`` binds loosest, so children rarely need parens)."""
        parts = []
        for child in self.children:
            text = child.to_text()
            if isinstance(child, Or):
                text = f"({text})"
            parts.append(text)
        return " or ".join(parts)

    def normalized(self) -> "PredicateNode":
        """Flatten nested disjunctions and sort children canonically."""
        flattened: List[PredicateNode] = []
        for child in self.children:
            child = child.normalized()
            if isinstance(child, Or):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        if len(flattened) == 1:
            return flattened[0]
        flattened.sort(key=lambda node: node.to_text())
        return Or(tuple(flattened))

    def leaves(self) -> Iterator[Leaf]:
        """Yield the leaves of the subtree, left to right."""
        for child in self.children:
            yield from child.leaves()

    def degree(self, leaf_degree: Callable[[Leaf], float]) -> float:
        """Maximum of the children's degrees."""
        return max(child.degree(leaf_degree) for child in self.children)

    def to_dict(self) -> dict:
        """JSON-compatible wire form."""
        return {"op": "or", "children": [child.to_dict() for child in self.children]}


#: Any node of the predicate AST.
PredicateNode = Union[Leaf, Not, And, Or]


def tree_from_dict(payload: object) -> PredicateNode:
    """Build a predicate AST from its nested JSON wire form.

    Raises:
        PredicateError: on an unknown ``op``, missing keys, or bad types —
            the message names the offending token.
    """
    if not isinstance(payload, dict):
        raise PredicateError(
            f"a predicate node must be a JSON object, got {type(payload).__name__!r}"
        )
    operator = payload.get("op")
    if operator is None:
        subject = payload.get("subject")
        relation = payload.get("relation")
        target = payload.get("target")
        if not isinstance(subject, str) or not isinstance(target, str):
            raise PredicateError(
                "a predicate leaf needs string 'subject' and 'target' labels"
            )
        if not isinstance(relation, str):
            raise PredicateError("a predicate leaf needs a string 'relation'")
        keyword = _ALIASES.get(relation.lower())
        if keyword is None:
            raise PredicateError(
                f"unknown relation {relation!r}; valid relations: "
                f"{sorted(alias for alias in _ALIASES)}"
            )
        weight = payload.get("weight", 1.0)
        if isinstance(weight, bool) or not isinstance(weight, (int, float)):
            raise PredicateError(f"predicate 'weight' must be a number, got {weight!r}")
        fuzzy = payload.get("fuzzy", False)
        if not isinstance(fuzzy, bool):
            raise PredicateError(f"predicate 'fuzzy' must be a boolean, got {fuzzy!r}")
        return Leaf(
            predicate=RelationPredicate(subject=subject, relation=keyword, target=target),
            weight=float(weight),
            fuzzy=fuzzy,
        )
    if operator == "not":
        if "child" not in payload:
            raise PredicateError("'not' needs a 'child' node")
        return Not(tree_from_dict(payload["child"]))
    if operator in ("and", "or"):
        children = payload.get("children")
        if not isinstance(children, list) or not children:
            raise PredicateError(f"{operator!r} needs a non-empty 'children' list")
        nodes = tuple(tree_from_dict(child) for child in children)
        return And(nodes) if operator == "and" else Or(nodes)
    raise PredicateError(
        f"unknown predicate operator {operator!r}; expected 'and', 'or' or 'not'"
    )


# ----------------------------------------------------------------------
# Tokenizer + recursive-descent parser for the boolean grammar
# ----------------------------------------------------------------------
#
# expr  := or
# or    := and ("or" and)*
# and   := not (("and" | "," | ";") not)*
# not   := "not" not | atom
# atom  := "(" expr ")" | leaf
# leaf  := LABEL RELATION LABEL ["[" ("fuzzy" | "w" "=" NUMBER)* "]"]

_TOKEN_PATTERN = re.compile(r"[()\[\],;=]|[^\s()\[\],;=]+")

#: Single-character punctuation tokens (never labels or relations).
_PUNCTUATION = frozenset("()[],;=")


@dataclass(frozen=True)
class _Token:
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    return [
        _Token(match.group(), match.start())
        for match in _TOKEN_PATTERN.finditer(text)
    ]


class _Parser:
    """Recursive-descent parser over the token stream.

    Every failure raises :class:`PredicateError` naming the offending token
    and its character position in the original query text.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> Optional[_Token]:
        token = self._peek()
        if token is not None:
            self.index += 1
        return token

    def _fail(self, message: str, token: Optional[_Token]) -> "PredicateError":
        if token is None:
            position = len(self.text)
            found = "end of query"
        else:
            position = token.position
            found = repr(token.text)
        return PredicateError(f"{message} at position {position}: {found}")

    def _expect(self, text: str, context: str) -> _Token:
        token = self._next()
        if token is None or token.text != text:
            raise self._fail(f"expected {text!r} {context}", token)
        return token

    # -- grammar -------------------------------------------------------
    def parse(self) -> PredicateNode:
        if not self.tokens:
            raise PredicateError("the predicate query is empty")
        node = self._parse_or()
        trailing = self._peek()
        if trailing is not None:
            raise self._fail("unexpected trailing token", trailing)
        return node

    def _parse_or(self) -> PredicateNode:
        children = [self._parse_and()]
        while True:
            token = self._peek()
            if token is not None and token.text.lower() == "or":
                self._next()
                children.append(self._parse_and())
            else:
                break
        if len(children) == 1:
            return children[0]
        return Or(tuple(children))

    def _parse_and(self) -> PredicateNode:
        children = [self._parse_not()]
        while True:
            token = self._peek()
            if token is None:
                break
            word = token.text.lower()
            if word == "and" or token.text in (",", ";"):
                self._next()
                children.append(self._parse_not())
            else:
                break
        if len(children) == 1:
            return children[0]
        return And(tuple(children))

    def _parse_not(self) -> PredicateNode:
        token = self._peek()
        if token is not None and token.text.lower() == "not":
            self._next()
            return Not(self._parse_not())
        return self._parse_atom()

    def _parse_atom(self) -> PredicateNode:
        token = self._peek()
        if token is None:
            raise self._fail("expected a predicate or '('", token)
        if token.text == "(":
            self._next()
            node = self._parse_or()
            self._expect(")", "to close the parenthesised group")
            return node
        return self._parse_leaf()

    def _parse_label(self, role: str) -> str:
        token = self._next()
        if token is None or token.text in _PUNCTUATION:
            raise self._fail(f"expected a {role} label", token)
        if token.text.lower() in RESERVED_WORDS:
            raise self._fail(
                f"the reserved word cannot be a {role} label", token
            )
        return token.text

    def _parse_leaf(self) -> Leaf:
        subject = self._parse_label("subject")
        relation_token = self._next()
        if relation_token is None or relation_token.text in _PUNCTUATION:
            raise self._fail("expected a relation keyword", relation_token)
        keyword = _ALIASES.get(relation_token.text.lower())
        if keyword is None:
            raise self._fail("unknown relation", relation_token)
        target = self._parse_label("target")
        weight, fuzzy = self._parse_annotations()
        predicate = RelationPredicate(subject=subject, relation=keyword, target=target)
        return Leaf(predicate=predicate, weight=weight, fuzzy=fuzzy)

    def _parse_annotations(self) -> Tuple[float, bool]:
        weight, fuzzy = 1.0, False
        token = self._peek()
        if token is None or token.text != "[":
            return weight, fuzzy
        self._next()
        while True:
            token = self._next()
            if token is None:
                raise self._fail("expected ']' to close the annotation", token)
            if token.text == "]":
                break
            word = token.text.lower()
            if word == "fuzzy":
                fuzzy = True
            elif word == "w" or word == "weight":
                self._expect("=", "after the weight annotation")
                value = self._next()
                if value is None:
                    raise self._fail("expected a weight value", value)
                try:
                    weight = float(value.text)
                except ValueError:
                    raise self._fail("weight must be a number", value) from None
                if not (weight > 0.0):
                    raise self._fail("weight must be positive", value)
            else:
                raise self._fail(
                    "unknown annotation (expected 'fuzzy' or 'w=N')", token
                )
        return weight, fuzzy


def parse_tree(text: str) -> PredicateNode:
    """Parse the full boolean predicate grammar into an AST.

    The historical flat conjunctions (``"a left-of b and c above d"``) parse
    unchanged; the grammar adds ``not``, ``or``, parentheses and per-leaf
    ``[fuzzy]`` / ``[w=N]`` annotations.

    Returns:
        The root :data:`PredicateNode` of the parse (not normalised).

    Raises:
        PredicateError: on malformed text; the message names the offending
            token and its character position.
    """
    return _Parser(text).parse()


def is_crisp_conjunction(tree: PredicateNode) -> bool:
    """True when the tree is a plain conjunction of unannotated leaves.

    Such trees carry no graded semantics and compile to the historical flat
    predicate tuple (the byte-identical fast path).
    """
    if isinstance(tree, Leaf):
        return not tree.fuzzy and tree.weight == 1.0
    if isinstance(tree, And):
        return all(
            isinstance(child, Leaf) and not child.fuzzy and child.weight == 1.0
            for child in tree.children
        )
    return False


def flat_predicates(tree: PredicateNode) -> Tuple[RelationPredicate, ...]:
    """The predicates of a crisp conjunction, in query order."""
    return tuple(leaf.predicate for leaf in tree.leaves())


@dataclass(frozen=True)
class PredicateMatch:
    """Evaluation outcome for one image."""

    image_id: str
    satisfied: Tuple[RelationPredicate, ...]
    unsatisfied: Tuple[RelationPredicate, ...]

    @property
    def score(self) -> float:
        """Fraction of predicates satisfied."""
        total = len(self.satisfied) + len(self.unsatisfied)
        return len(self.satisfied) / total if total else 0.0

    @property
    def is_full_match(self) -> bool:
        """True when every predicate holds."""
        return not self.unsatisfied and bool(self.satisfied)

    def describe(self) -> str:
        """One-line summary used by the examples and the CLI."""
        failed = "; ".join(predicate.to_text() for predicate in self.unsatisfied) or "-"
        return (
            f"{self.image_id}: {len(self.satisfied)}/{len(self.satisfied) + len(self.unsatisfied)} "
            f"predicates hold (missing: {failed})"
        )


def _instances_by_label(bestring: BEString2D) -> Dict[str, List[str]]:
    instances: Dict[str, List[str]] = {}
    for identifier in sorted(bestring.object_identifiers):
        label = identifier.split("#")[0]
        instances.setdefault(label, []).append(identifier)
    return instances


def evaluate_predicates(
    bestring: BEString2D, predicates: Sequence[RelationPredicate], image_id: str = ""
) -> PredicateMatch:
    """Evaluate a conjunction of predicates against one image's BE-string.

    A predicate holds when *some* pair of instances of the subject and target
    labels satisfies the relation (the natural reading of "a car is left of a
    tree" when several cars or trees are present).  All relations are derived
    from the BE-string alone, via ordinal boundary ranks -- no access to the
    original MBR coordinates is needed, which is exactly the point of the
    representation.
    """
    x_ranks = boundary_ranks(bestring.x)
    y_ranks = boundary_ranks(bestring.y)
    instances = _instances_by_label(bestring)
    satisfied: List[RelationPredicate] = []
    unsatisfied: List[RelationPredicate] = []
    for predicate in predicates:
        subjects = instances.get(predicate.subject, [])
        targets = instances.get(predicate.target, [])
        holds = False
        for subject in subjects:
            for target in targets:
                if subject == target:
                    continue
                if predicate.holds_between(
                    x_ranks[subject], y_ranks[subject], x_ranks[target], y_ranks[target]
                ):
                    holds = True
                    break
            if holds:
                break
        (satisfied if holds else unsatisfied).append(predicate)
    return PredicateMatch(
        image_id=image_id or bestring.name,
        satisfied=tuple(satisfied),
        unsatisfied=tuple(unsatisfied),
    )


def search_by_predicates(
    records: Iterable[Tuple[str, BEString2D]],
    query: str | Sequence[RelationPredicate],
    minimum_score: float = 0.0,
) -> List[PredicateMatch]:
    """Rank images by the fraction of query predicates they satisfy.

    ``records`` is an iterable of ``(image_id, bestring)`` pairs -- typically
    ``(record.image_id, record.bestring)`` for every record of an
    :class:`~repro.index.database.ImageDatabase`.
    """
    predicates = parse_query(query) if isinstance(query, str) else list(query)
    if not predicates:
        raise PredicateError("at least one predicate is required")
    matches = [
        evaluate_predicates(bestring, predicates, image_id=image_id)
        for image_id, bestring in records
    ]
    matches = [match for match in matches if match.score >= minimum_score]
    matches.sort(key=lambda match: (-match.score, match.image_id))
    return matches


# ----------------------------------------------------------------------
# Graded evaluation of a predicate tree against one image
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GradedMatch:
    """Graded evaluation outcome of a predicate tree for one image.

    ``degree`` is the tree's satisfaction in [0, 1]; ``leaf_degrees`` maps
    each distinct leaf (by its annotated text) to its own degree, surfaced
    by ``explain()`` and the service wire format.
    """

    image_id: str
    degree: float
    leaf_degrees: Tuple[Tuple[str, float], ...]

    @property
    def score(self) -> float:
        """The tree degree (the ranking key, mirroring ``PredicateMatch.score``)."""
        return self.degree

    @property
    def is_full_match(self) -> bool:
        """True when the tree is fully satisfied."""
        return self.degree >= 1.0

    def describe(self) -> str:
        """One-line summary used by the examples and the CLI."""
        parts = ", ".join(f"{text}={value:.3f}" for text, value in self.leaf_degrees)
        return f"{self.image_id}: degree {self.degree:.3f} ({parts})"


def leaf_degree_on(
    leaf: Leaf,
    x_ranks: Dict[str, Interval],
    y_ranks: Dict[str, Interval],
    instances: Dict[str, List[str]],
) -> float:
    """Degree of one leaf over an image's instance pairs (max over pairs).

    A crisp leaf is a 0/1 indicator of :meth:`RelationPredicate.holds_between`
    on *some* subject/target instance pair; a fuzzy leaf takes the best
    graded degree over the same pairs.  Absent labels yield 0.0 either way.
    """
    predicate = leaf.predicate
    subjects = instances.get(predicate.subject, [])
    targets = instances.get(predicate.target, [])
    best = 0.0
    for subject in subjects:
        for target in targets:
            if subject == target:
                continue
            if leaf.fuzzy:
                degree = predicate.degree_between(
                    x_ranks[subject], y_ranks[subject], x_ranks[target], y_ranks[target]
                )
            else:
                degree = (
                    1.0
                    if predicate.holds_between(
                        x_ranks[subject], y_ranks[subject],
                        x_ranks[target], y_ranks[target],
                    )
                    else 0.0
                )
            if degree > best:
                best = degree
                if best >= 1.0:
                    return best
    return best


def evaluate_tree(
    bestring: BEString2D, tree: PredicateNode, image_id: str = ""
) -> GradedMatch:
    """Evaluate a predicate tree against one image's BE-string.

    Like :func:`evaluate_predicates`, all relations are derived from the
    BE-string alone via ordinal boundary ranks; each leaf is graded by its
    best instance pair, and the tree folds the leaf degrees (``and`` =
    weighted mean, ``or`` = max, ``not`` = complement).
    """
    x_ranks = boundary_ranks(bestring.x)
    y_ranks = boundary_ranks(bestring.y)
    instances = _instances_by_label(bestring)
    degrees: Dict[Leaf, float] = {}
    for leaf in tree.leaves():
        if leaf not in degrees:
            degrees[leaf] = leaf_degree_on(leaf, x_ranks, y_ranks, instances)
    return GradedMatch(
        image_id=image_id or bestring.name,
        degree=tree.degree(lambda leaf: degrees[leaf]),
        leaf_degrees=tuple((leaf.to_text(), degrees[leaf]) for leaf in degrees),
    )


def zero_graded_match(tree: PredicateNode, image_id: str) -> GradedMatch:
    """A synthesized degree-0 match for an image pruned without evaluation.

    Only valid when the tree's degree upper bound for the image is 0 — which
    (see ``tree_degree_bound`` in :mod:`repro.index.shortlist`) implies every
    leaf degree is 0, so the synthesized per-leaf degrees are exact.
    """
    seen: Dict[str, float] = {}
    for leaf in tree.leaves():
        seen.setdefault(leaf.to_text(), 0.0)
    return GradedMatch(
        image_id=image_id, degree=0.0, leaf_degrees=tuple(seen.items())
    )
