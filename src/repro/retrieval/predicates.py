"""Relation-predicate queries: "find images where A is left of B".

The introduction of the paper motivates relative-position retrieval with
queries such as "find all images which icon A locates at the left side and
icon B locates at the right".  This module provides that query form on top of
the BE-string machinery: a small predicate language (``"car left-of tree"``)
whose predicates are evaluated against the pairwise relations recovered from a
stored image's BE-string (:mod:`repro.core.reasoning`), with ranking by the
fraction of predicates an image satisfies.

The predicate vocabulary is deliberately coarse -- it names directional and
topological relations, not the full 169 Allen-pair categories -- because that
is the granularity a user query works at.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.bestring import BEString2D
from repro.core.reasoning import boundary_ranks
from repro.geometry.allen import AllenRelation, allen_relation
from repro.geometry.interval import Interval


class PredicateError(ValueError):
    """Raised on an unknown relation keyword or malformed predicate text."""


class RelationKeyword(Enum):
    """The relation vocabulary of the predicate language."""

    LEFT_OF = "left-of"
    RIGHT_OF = "right-of"
    ABOVE = "above"
    BELOW = "below"
    OVERLAPS = "overlaps"
    CONTAINS = "contains"
    INSIDE = "inside"
    TOUCHES = "touches"
    SAME_COLUMN = "same-column"
    SAME_ROW = "same-row"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Accepted spellings for each keyword (underscores and a few synonyms).
_ALIASES: Dict[str, RelationKeyword] = {}
for _keyword in RelationKeyword:
    _ALIASES[_keyword.value] = _keyword
    _ALIASES[_keyword.value.replace("-", "_")] = _keyword
_ALIASES.update(
    {
        "leftof": RelationKeyword.LEFT_OF,
        "rightof": RelationKeyword.RIGHT_OF,
        "over": RelationKeyword.ABOVE,
        "under": RelationKeyword.BELOW,
        "within": RelationKeyword.INSIDE,
        "covers": RelationKeyword.CONTAINS,
        "intersects": RelationKeyword.OVERLAPS,
        "beside": RelationKeyword.SAME_ROW,
    }
)

#: Relations in which the two projections share at least one point.
_SHARING = {
    AllenRelation.MEETS,
    AllenRelation.MET_BY,
    AllenRelation.OVERLAPS,
    AllenRelation.OVERLAPPED_BY,
    AllenRelation.STARTS,
    AllenRelation.STARTED_BY,
    AllenRelation.DURING,
    AllenRelation.CONTAINS,
    AllenRelation.FINISHES,
    AllenRelation.FINISHED_BY,
    AllenRelation.EQUALS,
}

#: Relations meaning "the first interval covers the second".
_COVERING = {
    AllenRelation.CONTAINS,
    AllenRelation.STARTED_BY,
    AllenRelation.FINISHED_BY,
    AllenRelation.EQUALS,
}

#: Relations meaning "the first interval lies within the second".
_WITHIN = {
    AllenRelation.DURING,
    AllenRelation.STARTS,
    AllenRelation.FINISHES,
    AllenRelation.EQUALS,
}


@dataclass(frozen=True)
class RelationPredicate:
    """One atomic predicate: ``subject RELATION object`` over icon labels."""

    subject: str
    relation: RelationKeyword
    target: str

    def __post_init__(self) -> None:
        if not self.subject or not self.target:
            raise PredicateError("predicates need a non-empty subject and target label")

    def to_text(self) -> str:
        """Canonical text form, e.g. ``"car left-of tree"``."""
        return f"{self.subject} {self.relation.value} {self.target}"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def holds_between(self, subject_x: Interval, subject_y: Interval,
                      target_x: Interval, target_y: Interval) -> bool:
        """Evaluate the predicate on two objects' (ordinal or metric) intervals."""
        x = allen_relation(subject_x, target_x)
        y = allen_relation(subject_y, target_y)
        keyword = self.relation
        if keyword is RelationKeyword.LEFT_OF:
            return x in (AllenRelation.BEFORE, AllenRelation.MEETS)
        if keyword is RelationKeyword.RIGHT_OF:
            return x in (AllenRelation.AFTER, AllenRelation.MET_BY)
        if keyword is RelationKeyword.ABOVE:
            return y in (AllenRelation.AFTER, AllenRelation.MET_BY)
        if keyword is RelationKeyword.BELOW:
            return y in (AllenRelation.BEFORE, AllenRelation.MEETS)
        if keyword is RelationKeyword.OVERLAPS:
            return x in _SHARING and y in _SHARING
        if keyword is RelationKeyword.CONTAINS:
            return x in _COVERING and y in _COVERING
        if keyword is RelationKeyword.INSIDE:
            return x in _WITHIN and y in _WITHIN
        if keyword is RelationKeyword.TOUCHES:
            shares = x in _SHARING and y in _SHARING
            meets = AllenRelation.MEETS in (x, y) or AllenRelation.MET_BY in (x, y)
            return shares and meets
        if keyword is RelationKeyword.SAME_COLUMN:
            return x in _SHARING
        if keyword is RelationKeyword.SAME_ROW:
            return y in _SHARING
        raise PredicateError(f"unhandled relation keyword {keyword!r}")


def parse_predicate(text: str) -> RelationPredicate:
    """Parse one predicate of the form ``"<label> <relation> <label>"``.

    Returns:
        The parsed :class:`RelationPredicate`.

    Raises:
        PredicateError: on a malformed predicate or an unknown relation
            keyword.
    """
    tokens = text.strip().split()
    if len(tokens) != 3:
        raise PredicateError(
            f"a predicate needs exactly three tokens (subject relation target), got {text!r}"
        )
    subject, relation_text, target = tokens
    keyword = _ALIASES.get(relation_text.lower())
    if keyword is None:
        raise PredicateError(
            f"unknown relation {relation_text!r}; valid relations: "
            f"{sorted(alias for alias in _ALIASES)}"
        )
    return RelationPredicate(subject=subject, relation=keyword, target=target)


def parse_query(text: str) -> List[RelationPredicate]:
    """Parse a conjunction of predicates separated by ``and`` / ``,`` / ``;``.

    Returns:
        One :class:`RelationPredicate` per conjunct, in query order.

    Raises:
        PredicateError: if the query is empty or any conjunct is malformed.
    """
    parts = [part for part in re.split(r"\s+and\s+|[,;]", text.strip()) if part.strip()]
    if not parts:
        raise PredicateError("the predicate query is empty")
    return [parse_predicate(part) for part in parts]


@dataclass(frozen=True)
class PredicateMatch:
    """Evaluation outcome for one image."""

    image_id: str
    satisfied: Tuple[RelationPredicate, ...]
    unsatisfied: Tuple[RelationPredicate, ...]

    @property
    def score(self) -> float:
        """Fraction of predicates satisfied."""
        total = len(self.satisfied) + len(self.unsatisfied)
        return len(self.satisfied) / total if total else 0.0

    @property
    def is_full_match(self) -> bool:
        """True when every predicate holds."""
        return not self.unsatisfied and bool(self.satisfied)

    def describe(self) -> str:
        """One-line summary used by the examples and the CLI."""
        failed = "; ".join(predicate.to_text() for predicate in self.unsatisfied) or "-"
        return (
            f"{self.image_id}: {len(self.satisfied)}/{len(self.satisfied) + len(self.unsatisfied)} "
            f"predicates hold (missing: {failed})"
        )


def _instances_by_label(bestring: BEString2D) -> Dict[str, List[str]]:
    instances: Dict[str, List[str]] = {}
    for identifier in sorted(bestring.object_identifiers):
        label = identifier.split("#")[0]
        instances.setdefault(label, []).append(identifier)
    return instances


def evaluate_predicates(
    bestring: BEString2D, predicates: Sequence[RelationPredicate], image_id: str = ""
) -> PredicateMatch:
    """Evaluate a conjunction of predicates against one image's BE-string.

    A predicate holds when *some* pair of instances of the subject and target
    labels satisfies the relation (the natural reading of "a car is left of a
    tree" when several cars or trees are present).  All relations are derived
    from the BE-string alone, via ordinal boundary ranks -- no access to the
    original MBR coordinates is needed, which is exactly the point of the
    representation.
    """
    x_ranks = boundary_ranks(bestring.x)
    y_ranks = boundary_ranks(bestring.y)
    instances = _instances_by_label(bestring)
    satisfied: List[RelationPredicate] = []
    unsatisfied: List[RelationPredicate] = []
    for predicate in predicates:
        subjects = instances.get(predicate.subject, [])
        targets = instances.get(predicate.target, [])
        holds = False
        for subject in subjects:
            for target in targets:
                if subject == target:
                    continue
                if predicate.holds_between(
                    x_ranks[subject], y_ranks[subject], x_ranks[target], y_ranks[target]
                ):
                    holds = True
                    break
            if holds:
                break
        (satisfied if holds else unsatisfied).append(predicate)
    return PredicateMatch(
        image_id=image_id or bestring.name,
        satisfied=tuple(satisfied),
        unsatisfied=tuple(unsatisfied),
    )


def search_by_predicates(
    records: Iterable[Tuple[str, BEString2D]],
    query: str | Sequence[RelationPredicate],
    minimum_score: float = 0.0,
) -> List[PredicateMatch]:
    """Rank images by the fraction of query predicates they satisfy.

    ``records`` is an iterable of ``(image_id, bestring)`` pairs -- typically
    ``(record.image_id, record.bestring)`` for every record of an
    :class:`~repro.index.database.ImageDatabase`.
    """
    predicates = parse_query(query) if isinstance(query, str) else list(query)
    if not predicates:
        raise PredicateError("at least one predicate is required")
    matches = [
        evaluate_predicates(bestring, predicates, image_id=image_id)
        for image_id, bestring in records
    ]
    matches = [match for match in matches if match.score >= minimum_score]
    matches.sort(key=lambda match: (-match.score, match.image_id))
    return matches
