"""The retrieval system facade (the paper's Section-5 demonstration, headless).

:class:`RetrievalSystem` wraps an :class:`~repro.index.database.ImageDatabase`
plus a :class:`~repro.index.query.QueryEngine` behind the handful of calls an
application actually needs: load pictures, compose queries, inspect a stored
image, and maintain it dynamically.  The examples and quality benchmarks are
written against this facade only, which is the "public API" promised in the
repository's README.

The query surface
-----------------

All retrieval goes through one fluent builder
(:class:`~repro.retrieval.querybuilder.QueryBuilder`)::

    results = (
        system.query()
        .similar_to(picture)         # similarity clause (optional .partial(...))
        .invariant()                 # rotations/reflections via string reversal
        .where("phone right-of monitor")  # relation-predicate clause
        .min_score(0.3)
        .limit(10)
        .execute()                   # -> ResultSet (page / explain / to_jsonl)
    )

Query *streams* go through :meth:`RetrievalSystem.query_batch`, which
deduplicates identical queries, shares the candidate shortlist per unique
query, and schedules score-cache misses on a thread/process pool.  Serial and
batch execution share one LRU score cache (on the underlying
:class:`~repro.index.query.QueryEngine`; 65536 entries by default, invalidated
automatically whenever the database changes), so a repeated identical query is
answered from memoised similarity results on *every* path, with rankings
guaranteed identical -- including tie-break ordering.

The legacy ``search`` / ``search_many`` / ``search_parallel`` /
``search_partial`` / ``search_by_relations`` / ``run_batch`` methods remain as
thin deprecated shims over the builder with byte-identical rankings; see
``docs/query-api.md`` for the migration table.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.similarity import DEFAULT_POLICY, SimilarityPolicy
from repro.geometry.rectangle import Rectangle
from repro.iconic.ascii_art import render_ascii
from repro.iconic.picture import SymbolicPicture
from repro.index.backends import StorageBackend, load_database_from, save_database_to
from repro.index.batch import BatchOptions, BatchReport
from repro.index.cache import CacheStatistics
from repro.index.database import ImageDatabase, ImageRecord
from repro.index.execution import (
    ExecutionOptions,
    ExecutionStatistics,
    PredicateStatistics,
)
from repro.index.query import Query, QueryEngine
from repro.index.ranking import RankedResult
from repro.index.shortlist import ShortlistStatistics
from repro.index.spec import QuerySpec, QuerySpecError
from repro.retrieval.querybuilder import QueryBuilder, ResultSet


@dataclass
class RetrievalSystem:
    """An image database with similarity retrieval over 2D BE-strings."""

    policy: SimilarityPolicy = DEFAULT_POLICY
    minimum_signature_overlap: float = 0.0
    #: Engine-wide execution defaults (kernel, strategy, pool, ...); every
    #: query inherits them unless overridden per query via
    #: ``query().execution(...)``.  See :mod:`repro.index.execution`.
    execution: Optional[ExecutionOptions] = None
    _engine: QueryEngine = field(init=False)

    def __post_init__(self) -> None:
        database = ImageDatabase()
        self._engine = QueryEngine.build(
            database,
            minimum_overlap_ratio=self.minimum_signature_overlap,
            execution=self.execution,
        )

    def enable_concurrent_access(self) -> "RetrievalSystem":
        """Make this system safe for concurrent readers and writers.

        Installs a write-preferring readers-writer lock
        (:class:`repro.service.rwlock.ReadWriteLock`) on the underlying
        :class:`~repro.index.query.QueryEngine`: queries and batches take a
        shared grant and run fully in parallel against a consistent snapshot,
        while mutations (:meth:`add_picture`, :meth:`remove_picture`,
        :meth:`add_object`, :meth:`remove_object`) take the exclusive grant
        and refresh the database, both auxiliary indexes and the score cache
        atomically.  Single-threaded use keeps the default no-op lock and
        pays nothing.  Idempotent; the retrieval service calls this on every
        system it serves.

        Returns:
            This system (chainable).
        """
        from repro.service.rwlock import ReadWriteLock

        if not isinstance(self._engine.lock, ReadWriteLock):
            self._engine.lock = ReadWriteLock()
        return self

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pictures(
        cls,
        pictures: Iterable[SymbolicPicture],
        policy: SimilarityPolicy = DEFAULT_POLICY,
        minimum_signature_overlap: float = 0.0,
        execution: Optional[ExecutionOptions] = None,
    ) -> "RetrievalSystem":
        """Build a system pre-loaded with a collection of pictures."""
        system = cls(
            policy=policy,
            minimum_signature_overlap=minimum_signature_overlap,
            execution=execution,
        )
        for picture in pictures:
            system.add_picture(picture)
        return system

    @classmethod
    def from_file(
        cls,
        path: Union[str, Path],
        policy: SimilarityPolicy = DEFAULT_POLICY,
        backend: Union[None, str, StorageBackend] = None,
        execution: Optional[ExecutionOptions] = None,
        durable: bool = False,
    ) -> "RetrievalSystem":
        """Load a system from a database written by :meth:`save`.

        ``backend`` selects the storage format by name (``"json"``,
        ``"sqlite"``, ``"sharded"``) or instance; by default the format is
        inferred from the file/directory content (see
        :mod:`repro.index.backends`).  ``execution`` sets the engine-wide
        execution defaults (kernel, strategy, ...) every query inherits.
        ``durable=True`` requires a sharded directory (the only format with
        a write-ahead log); any acknowledged-but-uncompacted log records are
        replayed on top of the shard snapshot either way, so a durable
        directory always loads to its full acknowledged state.

        Warm starts are cheap: the loaded records (pictures, validated
        BE-strings, and persisted shortlist signatures) are indexed in place
        by :meth:`QueryEngine.build` instead of being re-added picture by
        picture, so nothing is re-encoded and signature-carrying databases
        skip the shortlist-signature recomputation entirely.

        Returns:
            A system with every stored picture indexed and a clean dirty set
            (so a later ``save(..., incremental=True)`` rewrites nothing).

        Raises:
            repro.index.storage.StorageError: if the database is corrupt or
                truncated; the message names the offending path.
            ValueError: if ``durable=True`` and the target is not sharded.
            FileNotFoundError: if ``path`` does not exist.
        """
        database = load_database_from(path, backend=backend, durable=durable)
        system = cls(policy=policy, execution=execution)
        system._engine = QueryEngine.build(
            database,
            minimum_overlap_ratio=system.minimum_signature_overlap,
            execution=execution,
        )
        # Loading is not a mutation: the engine's database matches the file.
        system._engine.database.clear_dirty()
        return system

    def hot_swap(self, replacement: "RetrievalSystem") -> None:
        """Atomically replace this system's engine with ``replacement``'s.

        The zero-downtime reload primitive of the retrieval service: build a
        fresh system off to the side (e.g. re-loading the on-disk database),
        then swap its fully-indexed engine under *this* system's lock.  The
        existing lock object stays installed — in-flight readers holding a
        shared grant finish against the old engine, the swap itself takes
        the exclusive grant, and every later reader sees only the new
        engine.  No reader ever observes a mix of the two states.
        """
        lock = self._engine.lock
        replacement._engine.lock = lock
        with lock.write_locked():
            self._engine = replacement._engine

    # ------------------------------------------------------------------
    # Database maintenance
    # ------------------------------------------------------------------
    def add_picture(self, picture: SymbolicPicture, image_id: Optional[str] = None) -> str:
        """Store a picture (encoding its BE-string); returns its image id."""
        return self._engine.add_picture(picture, image_id)

    def remove_picture(self, image_id: str) -> None:
        """Remove a stored picture."""
        self._engine.remove_picture(image_id)

    def add_object(self, image_id: str, label: str, mbr: Rectangle) -> None:
        """Dynamically add one icon to a stored image (Section 3.2)."""
        self._engine.add_object(image_id, label, mbr)

    def remove_object(self, image_id: str, identifier: str) -> None:
        """Dynamically remove one icon from a stored image (Section 3.2)."""
        self._engine.remove_object(image_id, identifier)

    def save(
        self,
        path: Union[str, Path],
        backend: Union[None, str, StorageBackend] = None,
        *,
        incremental: bool = False,
        shard_count: Optional[int] = None,
        durable: bool = False,
    ) -> Path:
        """Persist the database.

        ``backend`` selects the storage format (``"json"``, ``"sqlite"``,
        ``"sharded"`` or a :class:`~repro.index.backends.StorageBackend`
        instance); by default it is inferred from the path.
        ``incremental=True`` lets the SQLite and sharded backends rewrite only
        the rows/shards touched since the last save or load;
        ``shard_count`` sizes a newly created sharded directory.
        ``durable=True`` writes a sharded directory with a write-ahead-log
        anchor (see ``docs/durability.md``), ready for ``repro serve --wal``.

        Returns:
            The path written.

        Raises:
            ValueError: on an unknown backend name, or ``durable=True`` with
                a non-sharded backend.
            repro.index.storage.StorageError: if the target exists in an
                incompatible format.
        """
        return save_database_to(
            self._engine.database,
            path,
            backend=backend,
            incremental=incremental,
            shard_count=shard_count,
            durable=durable,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._engine.database)

    @property
    def image_ids(self) -> List[str]:
        """Ids of all stored images, sorted."""
        return self._engine.database.image_ids

    def record(self, image_id: str) -> ImageRecord:
        """The stored record (picture + BE-string) of one image.

        Raises:
            repro.index.database.DatabaseError: if no image with
                ``image_id`` is stored.
        """
        return self._engine.database.get(image_id)

    def show(self, image_id: str, columns: int = 60, rows: int = 20) -> str:
        """ASCII rendering of a stored image (the headless 'visualisation')."""
        return render_ascii(self.record(image_id).picture, columns=columns, rows=rows)

    def statistics(self) -> dict:
        """Database-level statistics (image/object/symbol counts)."""
        return self._engine.database.statistics()

    # ------------------------------------------------------------------
    # The query surface
    # ------------------------------------------------------------------
    def query(self, picture: Optional[SymbolicPicture] = None) -> QueryBuilder:
        """Start composing a query with the fluent builder.

        ``picture`` optionally seeds the similarity clause (equivalent to
        calling ``.similar_to(picture)`` on the returned builder).

        Returns:
            A :class:`~repro.retrieval.querybuilder.QueryBuilder` bound to
            this system; call ``.execute()`` on it to get a
            :class:`~repro.retrieval.querybuilder.ResultSet`.
        """
        return QueryBuilder(self, picture=picture)

    def query_batch(
        self,
        queries: Sequence[Union[QuerySpec, QueryBuilder, Query]],
        options: Optional[BatchOptions] = None,
        execution: Optional[ExecutionOptions] = None,
        **overrides,
    ) -> List[ResultSet]:
        """Run many queries as one scheduled batch.

        Accepts :class:`~repro.index.spec.QuerySpec` values, prepared
        :class:`~repro.retrieval.querybuilder.QueryBuilder` instances, or
        engine-level :class:`~repro.index.query.Query` objects; each keeps
        its own limit, score threshold and transformation set.  The batch
        scheduler deduplicates identical queries, serves repeat scores from
        the shared LRU cache, and evaluates misses on a worker pool.  Pool
        knobs come from ``execution``
        (:class:`~repro.index.execution.ExecutionOptions` — ``workers``,
        ``executor``, ``chunk_size``, ``cache``) or the equivalent keyword
        overrides (``workers=8``, ``executor="process"``, ...); the engine's
        execution defaults seed both.  Rankings are identical -- including
        tie-break ordering -- to executing each query serially; per-query
        ``kernel``/``strategy`` selections are ignored in batch mode, which
        always runs the reference exhaustive evaluation.

        .. deprecated:: 1.2
            Passing ``options=BatchOptions(...)``; use
            ``execution=ExecutionOptions(...)`` (or the keyword overrides).

        Returns:
            One :class:`~repro.retrieval.querybuilder.ResultSet` per input
            query, in input order.

        Raises:
            repro.index.spec.QuerySpecError: if a spec has a predicate
                clause (predicates are not batchable yet) or is malformed.
            ValueError: on bad scheduler knobs.
        """
        if options is not None:
            self._warn_deprecated(
                "query_batch(options=BatchOptions(...))",
                "query_batch(execution=ExecutionOptions(...))",
            )
            base = options
        else:
            engine_execution = self._engine.execution.resolved()
            base = BatchOptions(
                workers=engine_execution.workers,
                executor=engine_execution.executor,
                chunk_size=engine_execution.chunk_size,
                use_cache=engine_execution.cache,
            )
        if execution is not None:
            pool_changes = {}
            if execution.workers is not None:
                pool_changes["workers"] = execution.workers
            if execution.executor is not None:
                pool_changes["executor"] = execution.executor
            if execution.chunk_size is not None:
                pool_changes["chunk_size"] = execution.chunk_size
            if execution.cache is not None:
                pool_changes["use_cache"] = execution.cache
            if pool_changes:
                base = replace(base, **pool_changes)
        compiled: List[Query] = []
        specs: List[Optional[QuerySpec]] = []
        for item in queries:
            if isinstance(item, QueryBuilder):
                item = item.spec()
            if isinstance(item, QuerySpec):
                if item.policy is None:
                    # A bare spec inherits this system's policy, exactly as a
                    # builder-made spec would -- keeping batch rankings
                    # identical to serial execution under custom policies.
                    item = item.with_overrides(policy=self.policy)
                item.validate()
                if item.has_predicate_clause:
                    raise QuerySpecError(
                        "predicate clauses are not supported in batches yet; "
                        "run where() queries serially via execute()"
                    )
                specs.append(item)
                compiled.append(item.to_query())
            elif isinstance(item, Query):
                specs.append(None)
                compiled.append(item)
            else:
                raise TypeError(
                    "query_batch() accepts QuerySpec, QueryBuilder or Query items, "
                    f"got {type(item).__name__}"
                )
        batches = self._engine.run_batch(compiled, options=base, **overrides)
        return [
            ResultSet(results, spec=spec) for results, spec in zip(batches, specs)
        ]

    @property
    def last_batch_report(self) -> Optional[BatchReport]:
        """Scheduler report of the most recent batch search (or ``None``)."""
        return self._engine.last_batch_report

    def cache_statistics(self) -> CacheStatistics:
        """Hit/miss/eviction counters of the shared score cache."""
        return self._engine.score_cache.statistics

    def shortlist_statistics(self) -> "ShortlistStatistics":
        """Cumulative two-stage shortlist counters (see :mod:`repro.index.shortlist`)."""
        return self._engine.shortlist_counters.statistics

    def execution_statistics(self) -> "ExecutionStatistics":
        """Cumulative branch-and-bound counters (see :mod:`repro.index.execution`)."""
        return self._engine.execution_counters.statistics

    def predicate_statistics(self) -> "PredicateStatistics":
        """Cumulative predicate-stage counters (see :mod:`repro.index.execution`)."""
        return self._engine.predicate_counters.statistics

    # ------------------------------------------------------------------
    # Deprecated search surface (thin shims over the builder)
    # ------------------------------------------------------------------
    def _warn_deprecated(self, old: str, replacement: str) -> None:
        """Emit the deprecation warning for one legacy ``search*`` call."""
        warnings.warn(
            f"RetrievalSystem.{old} is deprecated; use {replacement} instead "
            "(see docs/query-api.md for the migration table)",
            DeprecationWarning,
            stacklevel=3,
        )

    def _similarity_builder(
        self,
        query_picture: SymbolicPicture,
        limit: Optional[int],
        invariant: bool,
        minimum_score: float,
        use_filters: bool,
    ) -> QueryBuilder:
        return (
            self.query(query_picture)
            .invariant(invariant)
            .limit(limit)
            .min_score(minimum_score)
            .execution(shortlist=use_filters)
        )

    def search(
        self,
        query_picture: SymbolicPicture,
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
    ) -> List[RankedResult]:
        """Similarity search with the configured policy.

        .. deprecated:: 1.1
            Use ``system.query(picture)...execute()`` instead; this shim
            routes through the same pipeline and returns identical rankings.

        Returns:
            Ranked results, best first, ties broken by image id.
        """
        self._warn_deprecated("search", "query(picture).execute()")
        return list(
            self._similarity_builder(
                query_picture, limit, invariant, minimum_score, use_filters
            ).execute()
        )

    def search_many(
        self,
        query_pictures: Iterable[SymbolicPicture],
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
        workers: int = 1,
        executor: str = "auto",
        chunk_size: Optional[int] = None,
        use_cache: bool = True,
    ) -> List[List[RankedResult]]:
        """Batch similarity search: one ranked result list per query picture.

        .. deprecated:: 1.1
            Use :meth:`query_batch` with builder specs instead.
        """
        self._warn_deprecated("search_many", "query_batch([...], executor=..., workers=...)")
        return self._batch_pictures(
            query_pictures,
            limit,
            invariant,
            minimum_score,
            use_filters,
            ExecutionOptions(
                workers=workers,
                executor=executor,
                chunk_size=chunk_size,
                cache=use_cache,
            ),
        )

    def search_parallel(
        self,
        query_pictures: Iterable[SymbolicPicture],
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
        workers: int = 4,
        executor: str = "thread",
        chunk_size: Optional[int] = None,
        use_cache: bool = True,
    ) -> List[List[RankedResult]]:
        """Batch similarity search with the worker pool on (4 threads default).

        .. deprecated:: 1.1
            Use :meth:`query_batch` with ``workers=...`` instead.
        """
        self._warn_deprecated(
            "search_parallel", "query_batch([...], executor=\"thread\", workers=4)"
        )
        return self._batch_pictures(
            query_pictures,
            limit,
            invariant,
            minimum_score,
            use_filters,
            ExecutionOptions(
                workers=workers,
                executor=executor,
                chunk_size=chunk_size,
                cache=use_cache,
            ),
        )

    def _batch_pictures(
        self,
        query_pictures: Iterable[SymbolicPicture],
        limit: Optional[int],
        invariant: bool,
        minimum_score: float,
        use_filters: bool,
        execution: ExecutionOptions,
    ) -> List[List[RankedResult]]:
        """Shared body of the deprecated picture-batch shims."""
        specs = [
            self._similarity_builder(
                picture, limit, invariant, minimum_score, use_filters
            ).spec()
            for picture in query_pictures
        ]
        return [
            list(results) for results in self.query_batch(specs, execution=execution)
        ]

    def run_batch(
        self,
        queries: Sequence[Query],
        options: Optional[BatchOptions] = None,
        **overrides,
    ) -> List[List[RankedResult]]:
        """Run pre-built :class:`~repro.index.query.Query` objects as one batch.

        .. deprecated:: 1.1
            Use :meth:`query_batch`, which accepts the same ``Query`` objects
            (and builder specs) and returns ``ResultSet`` values.
        """
        self._warn_deprecated("run_batch", "query_batch(queries)")
        return [
            list(results)
            for results in self.query_batch(queries, options=options, **overrides)
        ]

    def search_partial(
        self,
        query_picture: SymbolicPicture,
        identifiers: Sequence[str],
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
    ) -> List[RankedResult]:
        """Search with only a subset of the query picture's icons.

        This is the paper's uncertain-target scenario: the caller knows some
        icons and their arrangement but not the whole scene.  ``minimum_score``
        and ``use_filters`` are forwarded like every other knob (they used to
        be silently dropped).

        .. deprecated:: 1.1
            Use ``system.query(picture).partial(identifiers)...execute()``.
        """
        self._warn_deprecated(
            "search_partial", "query(picture).partial(identifiers).execute()"
        )
        return list(
            self._similarity_builder(
                query_picture, limit, invariant, minimum_score, use_filters
            )
            .partial(identifiers)
            .execute()
        )

    def search_by_relations(
        self,
        query: str,
        limit: Optional[int] = 10,
        minimum_score: float = 0.0,
    ) -> List["PredicateMatch"]:
        """Relation-predicate search, e.g. ``"monitor above desk and phone right-of monitor"``.

        The predicates are evaluated against stored BE-strings (never against
        raw coordinates); images are ranked by the fraction of predicates they
        satisfy.  See :mod:`repro.retrieval.predicates` for the vocabulary.

        .. deprecated:: 1.1
            Use ``system.query().where(query)...execute()``.
        """
        self._warn_deprecated("search_by_relations", 'query().where("...").execute()')
        return list(
            self.query().where(query).limit(limit).min_score(minimum_score).execute()
        )
