"""The retrieval system facade (the paper's Section-5 demonstration, headless).

:class:`RetrievalSystem` wraps an :class:`~repro.index.database.ImageDatabase`
plus a :class:`~repro.index.query.QueryEngine` behind the handful of calls an
application actually needs: load pictures, search (exact, partial or
transformation-invariant), inspect a stored image, and maintain it
dynamically.  The examples and quality benchmarks are written against this
facade only, which is the "public API" promised in the repository's README.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.similarity import DEFAULT_POLICY, SimilarityPolicy
from repro.core.transforms import Transformation
from repro.geometry.rectangle import Rectangle
from repro.iconic.ascii_art import render_ascii
from repro.iconic.picture import SymbolicPicture
from repro.index.database import ImageDatabase, ImageRecord
from repro.index.query import Query, QueryEngine
from repro.index.ranking import RankedResult
from repro.index.storage import load_database, save_database


@dataclass
class RetrievalSystem:
    """An image database with similarity retrieval over 2D BE-strings."""

    policy: SimilarityPolicy = DEFAULT_POLICY
    minimum_signature_overlap: float = 0.0
    _engine: QueryEngine = field(init=False)

    def __post_init__(self) -> None:
        database = ImageDatabase()
        self._engine = QueryEngine.build(
            database, minimum_overlap_ratio=self.minimum_signature_overlap
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pictures(
        cls,
        pictures: Iterable[SymbolicPicture],
        policy: SimilarityPolicy = DEFAULT_POLICY,
        minimum_signature_overlap: float = 0.0,
    ) -> "RetrievalSystem":
        """Build a system pre-loaded with a collection of pictures."""
        system = cls(policy=policy, minimum_signature_overlap=minimum_signature_overlap)
        for picture in pictures:
            system.add_picture(picture)
        return system

    @classmethod
    def from_file(cls, path: Union[str, Path], policy: SimilarityPolicy = DEFAULT_POLICY) -> "RetrievalSystem":
        """Load a system from a database JSON file written by :meth:`save`."""
        database = load_database(path)
        system = cls(policy=policy)
        for record in list(database):
            system.add_picture(record.picture, record.image_id)
        return system

    # ------------------------------------------------------------------
    # Database maintenance
    # ------------------------------------------------------------------
    def add_picture(self, picture: SymbolicPicture, image_id: Optional[str] = None) -> str:
        """Store a picture (encoding its BE-string); returns its image id."""
        return self._engine.add_picture(picture, image_id)

    def remove_picture(self, image_id: str) -> None:
        """Remove a stored picture."""
        self._engine.remove_picture(image_id)

    def add_object(self, image_id: str, label: str, mbr: Rectangle) -> None:
        """Dynamically add one icon to a stored image (Section 3.2)."""
        record = self._engine.database.add_object(image_id, label, mbr)
        self._engine.signature_filter.update_picture(image_id, record.picture)
        self._engine.inverted_index.update_picture(image_id, record.picture)

    def remove_object(self, image_id: str, identifier: str) -> None:
        """Dynamically remove one icon from a stored image (Section 3.2)."""
        record = self._engine.database.remove_object(image_id, identifier)
        self._engine.signature_filter.update_picture(image_id, record.picture)
        self._engine.inverted_index.update_picture(image_id, record.picture)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the database to a JSON file."""
        return save_database(self._engine.database, path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._engine.database)

    @property
    def image_ids(self) -> List[str]:
        """Ids of all stored images, sorted."""
        return self._engine.database.image_ids

    def record(self, image_id: str) -> ImageRecord:
        """The stored record (picture + BE-string) of one image."""
        return self._engine.database.get(image_id)

    def show(self, image_id: str, columns: int = 60, rows: int = 20) -> str:
        """ASCII rendering of a stored image (the headless 'visualisation')."""
        return render_ascii(self.record(image_id).picture, columns=columns, rows=rows)

    def statistics(self) -> dict:
        """Database-level statistics (image/object/symbol counts)."""
        return self._engine.database.statistics()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        query_picture: SymbolicPicture,
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
    ) -> List[RankedResult]:
        """Similarity search with the configured policy.

        ``invariant=True`` additionally searches the five rotated/reflected
        variants of the query (retrieved purely by string reversal, as in the
        paper); ``use_filters=False`` bypasses the candidate pruning and scores
        every stored image.
        """
        transformations: Sequence[Transformation]
        if invariant:
            transformations = tuple(Transformation)
        else:
            transformations = (Transformation.IDENTITY,)
        query = Query(
            picture=query_picture,
            policy=self.policy,
            transformations=tuple(transformations),
            limit=limit,
            minimum_score=minimum_score,
            use_filters=use_filters,
        )
        return self._engine.execute(query)

    def search_partial(
        self,
        query_picture: SymbolicPicture,
        identifiers: Sequence[str],
        limit: Optional[int] = 10,
        invariant: bool = False,
    ) -> List[RankedResult]:
        """Search with only a subset of the query picture's icons.

        This is the paper's uncertain-target scenario: the caller knows some
        icons and their arrangement but not the whole scene.
        """
        return self.search(
            query_picture.subset(identifiers), limit=limit, invariant=invariant
        )

    def search_by_relations(
        self,
        query: str,
        limit: Optional[int] = 10,
        minimum_score: float = 0.0,
    ) -> List["PredicateMatch"]:
        """Relation-predicate search, e.g. ``"monitor above desk and phone right-of monitor"``.

        The predicates are evaluated against every stored image's BE-string
        (never against raw coordinates); images are ranked by the fraction of
        predicates they satisfy.  See :mod:`repro.retrieval.predicates` for
        the predicate vocabulary.
        """
        from repro.retrieval.predicates import search_by_predicates

        matches = search_by_predicates(
            ((record.image_id, record.bestring) for record in self._engine.database),
            query,
            minimum_score=minimum_score,
        )
        return matches[:limit] if limit is not None else matches
