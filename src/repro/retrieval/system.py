"""The retrieval system facade (the paper's Section-5 demonstration, headless).

:class:`RetrievalSystem` wraps an :class:`~repro.index.database.ImageDatabase`
plus a :class:`~repro.index.query.QueryEngine` behind the handful of calls an
application actually needs: load pictures, search (exact, partial or
transformation-invariant), inspect a stored image, and maintain it
dynamically.  The examples and quality benchmarks are written against this
facade only, which is the "public API" promised in the repository's README.

Batch retrieval
---------------

Query streams should go through the batch API instead of a loop of
:meth:`RetrievalSystem.search` calls:

* :meth:`RetrievalSystem.search_many` evaluates a whole sequence of query
  pictures in one pass.  Identical queries are deduplicated into a single
  evaluation, the inverted-index/signature shortlist is computed once per
  unique query, and per-(query, image) LCS scores are memoised in an LRU
  score cache that later batches reuse.
* :meth:`RetrievalSystem.search_parallel` is the same entry point with the
  worker pool turned on: cache misses are chunked and scored on a
  ``concurrent.futures`` thread or process pool.

Knobs (both methods): ``workers`` bounds the pool size, ``executor`` selects
``"thread"``/``"process"``/``"serial"``/``"auto"`` scheduling, ``chunk_size``
overrides the automatic task chunking, and ``use_cache=False`` disables the
score cache for one call.  The cache itself lives on the underlying
:class:`~repro.index.query.QueryEngine` (``capacity`` 65536 entries by
default) and is invalidated automatically whenever a picture is added or
removed or an object inside a stored image changes, so batch results always
reflect the current database.  Results are guaranteed identical -- including
tie-break ordering -- to running the equivalent serial searches; see
``tests/index/test_batch.py`` and ``benchmarks/bench_batch_query.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.similarity import DEFAULT_POLICY, SimilarityPolicy
from repro.core.transforms import Transformation
from repro.geometry.rectangle import Rectangle
from repro.iconic.ascii_art import render_ascii
from repro.iconic.picture import SymbolicPicture
from repro.index.backends import StorageBackend, load_database_from, save_database_to
from repro.index.batch import BatchOptions, BatchReport
from repro.index.database import ImageDatabase, ImageRecord
from repro.index.query import Query, QueryEngine
from repro.index.ranking import RankedResult


@dataclass
class RetrievalSystem:
    """An image database with similarity retrieval over 2D BE-strings."""

    policy: SimilarityPolicy = DEFAULT_POLICY
    minimum_signature_overlap: float = 0.0
    _engine: QueryEngine = field(init=False)

    def __post_init__(self) -> None:
        database = ImageDatabase()
        self._engine = QueryEngine.build(
            database, minimum_overlap_ratio=self.minimum_signature_overlap
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pictures(
        cls,
        pictures: Iterable[SymbolicPicture],
        policy: SimilarityPolicy = DEFAULT_POLICY,
        minimum_signature_overlap: float = 0.0,
    ) -> "RetrievalSystem":
        """Build a system pre-loaded with a collection of pictures."""
        system = cls(policy=policy, minimum_signature_overlap=minimum_signature_overlap)
        for picture in pictures:
            system.add_picture(picture)
        return system

    @classmethod
    def from_file(
        cls,
        path: Union[str, Path],
        policy: SimilarityPolicy = DEFAULT_POLICY,
        backend: Union[None, str, StorageBackend] = None,
    ) -> "RetrievalSystem":
        """Load a system from a database written by :meth:`save`.

        ``backend`` selects the storage format by name (``"json"``,
        ``"sqlite"``, ``"sharded"``) or instance; by default the format is
        inferred from the file/directory content (see
        :mod:`repro.index.backends`).

        Returns:
            A system with every stored picture indexed and a clean dirty set
            (so a later ``save(..., incremental=True)`` rewrites nothing).

        Raises:
            repro.index.storage.StorageError: if the database is corrupt or
                truncated; the message names the offending path.
            FileNotFoundError: if ``path`` does not exist.
        """
        database = load_database_from(path, backend=backend)
        system = cls(policy=policy)
        for record in list(database):
            system.add_picture(record.picture, record.image_id)
        # Loading is not a mutation: the engine's database matches the file.
        system._engine.database.clear_dirty()
        return system

    # ------------------------------------------------------------------
    # Database maintenance
    # ------------------------------------------------------------------
    def add_picture(self, picture: SymbolicPicture, image_id: Optional[str] = None) -> str:
        """Store a picture (encoding its BE-string); returns its image id."""
        return self._engine.add_picture(picture, image_id)

    def remove_picture(self, image_id: str) -> None:
        """Remove a stored picture."""
        self._engine.remove_picture(image_id)

    def add_object(self, image_id: str, label: str, mbr: Rectangle) -> None:
        """Dynamically add one icon to a stored image (Section 3.2)."""
        self._engine.add_object(image_id, label, mbr)

    def remove_object(self, image_id: str, identifier: str) -> None:
        """Dynamically remove one icon from a stored image (Section 3.2)."""
        self._engine.remove_object(image_id, identifier)

    def save(
        self,
        path: Union[str, Path],
        backend: Union[None, str, StorageBackend] = None,
        *,
        incremental: bool = False,
        shard_count: Optional[int] = None,
    ) -> Path:
        """Persist the database.

        ``backend`` selects the storage format (``"json"``, ``"sqlite"``,
        ``"sharded"`` or a :class:`~repro.index.backends.StorageBackend`
        instance); by default it is inferred from the path.
        ``incremental=True`` lets the SQLite and sharded backends rewrite only
        the rows/shards touched since the last save or load;
        ``shard_count`` sizes a newly created sharded directory.

        Returns:
            The path written.

        Raises:
            ValueError: on an unknown backend name.
            repro.index.storage.StorageError: if the target exists in an
                incompatible format.
        """
        return save_database_to(
            self._engine.database,
            path,
            backend=backend,
            incremental=incremental,
            shard_count=shard_count,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._engine.database)

    @property
    def image_ids(self) -> List[str]:
        """Ids of all stored images, sorted."""
        return self._engine.database.image_ids

    def record(self, image_id: str) -> ImageRecord:
        """The stored record (picture + BE-string) of one image.

        Raises:
            repro.index.database.DatabaseError: if no image with
                ``image_id`` is stored.
        """
        return self._engine.database.get(image_id)

    def show(self, image_id: str, columns: int = 60, rows: int = 20) -> str:
        """ASCII rendering of a stored image (the headless 'visualisation')."""
        return render_ascii(self.record(image_id).picture, columns=columns, rows=rows)

    def statistics(self) -> dict:
        """Database-level statistics (image/object/symbol counts)."""
        return self._engine.database.statistics()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        query_picture: SymbolicPicture,
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
    ) -> List[RankedResult]:
        """Similarity search with the configured policy.

        ``invariant=True`` additionally searches the five rotated/reflected
        variants of the query (retrieved purely by string reversal, as in the
        paper); ``use_filters=False`` bypasses the candidate pruning and scores
        every stored image.

        Returns:
            Ranked results, best first, ties broken by image id.
        """
        query = self._make_query(
            query_picture,
            limit=limit,
            invariant=invariant,
            minimum_score=minimum_score,
            use_filters=use_filters,
        )
        return self._engine.execute(query)

    def search_many(
        self,
        query_pictures: Iterable[SymbolicPicture],
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
        workers: int = 1,
        executor: str = "auto",
        chunk_size: Optional[int] = None,
        use_cache: bool = True,
    ) -> List[List[RankedResult]]:
        """Batch similarity search: one ranked result list per query picture.

        Identical query pictures share a single evaluation and candidate
        shortlist, and per-(query, image) scores are served from the engine's
        LRU score cache when a previous batch already computed them.  With the
        default ``workers=1`` all misses are scored inline; pass ``workers``
        and ``executor`` (or use :meth:`search_parallel`) to score them on a
        pool.  See the module docstring for the full knob reference.
        """
        queries = [
            self._make_query(
                picture,
                limit=limit,
                invariant=invariant,
                minimum_score=minimum_score,
                use_filters=use_filters,
            )
            for picture in query_pictures
        ]
        options = BatchOptions(
            workers=workers,
            executor=executor,
            chunk_size=chunk_size,
            use_cache=use_cache,
        )
        return self._engine.run_batch(queries, options=options)

    def search_parallel(
        self,
        query_pictures: Iterable[SymbolicPicture],
        limit: Optional[int] = 10,
        invariant: bool = False,
        minimum_score: float = 0.0,
        use_filters: bool = True,
        workers: int = 4,
        executor: str = "thread",
        chunk_size: Optional[int] = None,
        use_cache: bool = True,
    ) -> List[List[RankedResult]]:
        """:meth:`search_many` with the worker pool on (4 threads by default)."""
        return self.search_many(
            query_pictures,
            limit=limit,
            invariant=invariant,
            minimum_score=minimum_score,
            use_filters=use_filters,
            workers=workers,
            executor=executor,
            chunk_size=chunk_size,
            use_cache=use_cache,
        )

    def run_batch(
        self,
        queries: Sequence[Query],
        options: Optional[BatchOptions] = None,
        **overrides,
    ) -> List[List[RankedResult]]:
        """Run pre-built :class:`~repro.index.query.Query` objects as one batch.

        Unlike :meth:`search_many`, each query keeps its own limit, score
        threshold and transformation set; the batch scheduler still
        deduplicates, caches and parallelises across them.  Keyword overrides
        (``workers=8``, ``executor="process"``, ...) adjust the
        :class:`~repro.index.batch.BatchOptions`.
        """
        return self._engine.run_batch(queries, options=options, **overrides)

    @property
    def last_batch_report(self) -> Optional[BatchReport]:
        """Scheduler report of the most recent batch search (or ``None``)."""
        return self._engine.last_batch_report

    def _make_query(
        self,
        query_picture: SymbolicPicture,
        limit: Optional[int],
        invariant: bool,
        minimum_score: float,
        use_filters: bool,
    ) -> Query:
        transformations: Sequence[Transformation]
        if invariant:
            transformations = tuple(Transformation)
        else:
            transformations = (Transformation.IDENTITY,)
        return Query(
            picture=query_picture,
            policy=self.policy,
            transformations=tuple(transformations),
            limit=limit,
            minimum_score=minimum_score,
            use_filters=use_filters,
        )

    def search_partial(
        self,
        query_picture: SymbolicPicture,
        identifiers: Sequence[str],
        limit: Optional[int] = 10,
        invariant: bool = False,
    ) -> List[RankedResult]:
        """Search with only a subset of the query picture's icons.

        This is the paper's uncertain-target scenario: the caller knows some
        icons and their arrangement but not the whole scene.
        """
        return self.search(
            query_picture.subset(identifiers), limit=limit, invariant=invariant
        )

    def search_by_relations(
        self,
        query: str,
        limit: Optional[int] = 10,
        minimum_score: float = 0.0,
    ) -> List["PredicateMatch"]:
        """Relation-predicate search, e.g. ``"monitor above desk and phone right-of monitor"``.

        The predicates are evaluated against every stored image's BE-string
        (never against raw coordinates); images are ranked by the fraction of
        predicates they satisfy.  See :mod:`repro.retrieval.predicates` for
        the predicate vocabulary.
        """
        from repro.retrieval.predicates import search_by_predicates

        matches = search_by_predicates(
            ((record.image_id, record.bestring) for record in self._engine.database),
            query,
            minimum_score=minimum_score,
        )
        return matches[:limit] if limit is not None else matches
