"""Ranked-retrieval quality metrics.

All functions take a ranked list of retrieved image ids (best first) and the
set of relevant ids, and return a value in [0, 1].  They are deliberately
simple, dependency-free implementations; the evaluation runner aggregates them
across queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set


def _validate_k(k: int) -> None:
    if k < 1:
        raise ValueError("k must be at least 1")


def precision_at_k(ranked_ids: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the top-k results that are relevant.

    Returns:
        A value in ``[0, 1]`` (0.0 for an empty ranking).

    Raises:
        ValueError: if ``k`` is less than 1.
    """
    _validate_k(k)
    if not ranked_ids:
        return 0.0
    top = ranked_ids[:k]
    hits = sum(1 for image_id in top if image_id in relevant)
    return hits / len(top)


def recall_at_k(ranked_ids: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the relevant images found in the top-k results.

    Returns:
        A value in ``[0, 1]`` (0.0 when nothing is relevant).

    Raises:
        ValueError: if ``k`` is less than 1.
    """
    _validate_k(k)
    if not relevant:
        return 0.0
    top = set(ranked_ids[:k])
    return len(top & relevant) / len(relevant)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def average_precision(ranked_ids: Sequence[str], relevant: Set[str]) -> float:
    """Average of the precision values at every relevant rank."""
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for index, image_id in enumerate(ranked_ids, start=1):
        if image_id in relevant:
            hits += 1
            precision_sum += hits / index
    return precision_sum / len(relevant)


def mean_average_precision(
    ranked_lists: Iterable[Sequence[str]], relevant_sets: Iterable[Set[str]]
) -> float:
    """Mean of :func:`average_precision` over a set of queries."""
    values: List[float] = [
        average_precision(ranked, relevant)
        for ranked, relevant in zip(ranked_lists, relevant_sets)
    ]
    if not values:
        return 0.0
    return sum(values) / len(values)


def reciprocal_rank(ranked_ids: Sequence[str], relevant: Set[str]) -> float:
    """1 / rank of the first relevant result (0 when none is retrieved)."""
    for index, image_id in enumerate(ranked_ids, start=1):
        if image_id in relevant:
            return 1.0 / index
    return 0.0


def summarize_query(
    ranked_ids: Sequence[str], relevant: Set[str], cutoffs: Sequence[int] = (1, 3, 5, 10)
) -> Dict[str, float]:
    """All per-query metrics in one dictionary (used by the evaluation runner)."""
    summary: Dict[str, float] = {
        "average_precision": average_precision(ranked_ids, relevant),
        "reciprocal_rank": reciprocal_rank(ranked_ids, relevant),
    }
    for k in cutoffs:
        summary[f"precision@{k}"] = precision_at_k(ranked_ids, relevant, k)
        summary[f"recall@{k}"] = recall_at_k(ranked_ids, relevant, k)
    return summary
