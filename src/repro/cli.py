"""Command-line interface of the reproduction.

A thin front-end over the library for the workflows a user of the paper's
system would script:

``python -m repro.cli encode <scene.json>``
    Encode a scene file (the JSON form of a symbolic picture) and print its
    2D BE-string.

``python -m repro.cli build <database.json> <scene.json> [...]``
    Encode one or more scene files into a database file.

``python -m repro.cli search <database.json> <query-scene.json> [--invariant] [--top K]``
    Run a similarity query against a stored database.  ``--where`` adds a
    relation-predicate clause (full grammar: ``not``/``or``/parentheses and
    per-leaf ``[w=2 fuzzy]`` annotations, see ``docs/predicates.md``),
    ``--fuzzy`` grades every relation by boundary distance,
    ``--min-score`` a score cut-off and ``--jsonl``
    machine-readable output (one JSON object per result).  ``--kernel
    bitparallel`` scores with the bit-parallel LCS kernel and ``--strategy
    anytime`` enables branch-and-bound early termination (see
    ``docs/kernels.md``); both default to the historical reference behaviour.

``python -m repro.cli explain <database.json> <query-scene.json> [--where ...]``
    Run a query like ``search`` but print the execution trace: the shortlist
    funnel, per-result admission stage, score-cache hit/miss, winning
    transformation and LCS lengths.  With ``--where`` and no scene it
    explains a predicate-only query; graded clauses additionally print
    per-leaf satisfaction degrees and the predicate-stage counters.

``python -m repro.cli batch-search <database.json> <queries.jsonl> [--workers N]``
    Run many similarity queries as one batch.  Each line of the JSONL file is
    either a scene object or ``{"scene": {...}, "invariant": true, "top": 5}``;
    shared work is deduplicated, scores are cached, and cache misses are
    evaluated on a worker pool (see ``repro.index.batch``).

``python -m repro.cli relations <database.json> "<predicate query>"``
    Run a relation-predicate query ("monitor above desk and ...").

All retrieval commands are fronts over the fluent query builder
(``system.query()...execute()``, see ``docs/query-api.md``); they share one
unified pipeline and score cache.

``python -m repro.cli show <database.json> <image-id>``
    ASCII-render one stored image.

``python -m repro.cli convert <src> <dst> [--to FORMAT] [--shards N]``
    Convert a database between storage formats (JSON / SQLite / sharded
    binary); the target format defaults to what the destination path implies.
    ``--bitmap-width N`` tunes the precomputed shortlist signatures (see
    ``docs/shortlist.md``) and ``--no-signatures`` omits them entirely.

``python -m repro.cli info <database>``
    Print the storage format, schema version and size statistics of a stored
    database without fully validating it.

``python -m repro.cli demo``
    Build a small synthetic database in a temporary directory and run an
    example query end to end (no input files needed).

``python -m repro.cli serve <database> [--port N] [--workers N] [--backlog N] [--shard-workers N]``
    Run the JSON-over-HTTP retrieval daemon over a stored database: concurrent
    ``/search`` + ``/batch`` queries, mutation endpoints with incremental
    write-back persistence, ``/healthz`` and ``/stats`` (see
    ``docs/service.md``).  ``--port 0`` binds an ephemeral port (printed on
    start-up); ``--no-persist`` serves the database read-write in memory only.
    ``--wal`` turns on the crash-safe durable mode for sharded databases:
    every mutation is fsync'd to a write-ahead log before it is acknowledged
    and a background thread compacts the log into the shards (``docs/durability.md``).

``python -m repro.cli recover <database> [--check]``
    Inspect a durable database's write-ahead log (pending records, torn
    tail) and fold any acknowledged-but-uncompacted records back into the
    shards.  ``--check`` reports without modifying anything.

``python -m repro.cli replica <database> [--follow-interval S] [--primary URL]``
    Run a read-only replica daemon over a durable database directory: it
    warm-starts from the shard snapshot, tails the primary's write-ahead
    log to stay current, serves the full read surface (``/search``,
    ``/batch``, ``/healthz``, ``/stats`` with a ``replication`` lag block)
    and rejects writes with 403 naming the primary.  ``POST /promote``
    detaches it into a writable primary (see ``docs/replication.md``).

``python -m repro.cli ping <url>``
    Health-check a running daemon and print its image count, uptime and the
    measured round-trip time.

Every command that reads a database sniffs its storage format from the
file/directory content; pass ``--format json|sqlite|sharded`` to override
(see ``docs/storage-formats.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.construct import encode_picture
from repro.index.backends import (
    describe_database,
    load_database_from,
    save_database_to,
)
from repro.index.database import ImageDatabase
from repro.index.execution import ExecutionOptions, KERNELS, STRATEGIES
from repro.index.spec import QuerySpec, QuerySpecError
from repro.index.storage import StorageError, picture_from_json_text
from repro.retrieval.predicates import PredicateError
from repro.retrieval.system import RetrievalSystem

#: ``--format`` choices; ``auto`` infers from path/content (the default).
FORMAT_CHOICES = ("auto", "json", "sqlite", "sharded")


class CliError(RuntimeError):
    """Raised for user-facing CLI failures (bad paths, malformed files)."""


def _backend_argument(arguments: argparse.Namespace):
    """The backend name selected by ``--format`` (``None`` for ``auto``)."""
    fmt = getattr(arguments, "format", "auto")
    return None if fmt == "auto" else fmt


def _load_picture(path: str):
    try:
        return picture_from_json_text(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CliError(f"scene file not found: {path}") from None
    except (StorageError, ValueError, KeyError) as error:
        raise CliError(f"malformed scene file {path}: {error}") from error


def _load_database(path: str, backend=None) -> ImageDatabase:
    try:
        return load_database_from(path, backend=backend)
    except FileNotFoundError:
        raise CliError(f"database not found: {path}") from None
    except StorageError as error:
        raise CliError(f"malformed database {path}: {error}") from error


def _load_system(path: str, backend=None, execution=None, durable: bool = False) -> RetrievalSystem:
    # from_file is the warm-start path: it indexes the loaded records in
    # place (no re-encoding) and keeps their persisted shortlist signatures,
    # tuned bitmap width included — re-adding picture by picture would drop
    # both and leave every image dirty for the first incremental save.
    try:
        return RetrievalSystem.from_file(
            path, backend=backend, execution=execution, durable=durable
        )
    except FileNotFoundError:
        raise CliError(f"database not found: {path}") from None
    except ValueError as error:
        raise CliError(str(error)) from error
    except StorageError as error:
        raise CliError(f"malformed database {path}: {error}") from error


# ----------------------------------------------------------------------
# Sub-command implementations (each returns a process exit code)
# ----------------------------------------------------------------------
def _command_encode(arguments: argparse.Namespace) -> int:
    picture = _load_picture(arguments.scene)
    bestring = encode_picture(picture)
    print(f"picture: {picture.name or arguments.scene} "
          f"({len(picture)} objects, {picture.width:g}x{picture.height:g})")
    print("x:", bestring.x.to_text())
    print("y:", bestring.y.to_text())
    print(f"storage: {bestring.total_symbols} symbols")
    return 0


def _command_build(arguments: argparse.Namespace) -> int:
    database = ImageDatabase(name=Path(arguments.database).stem)
    for index, scene_path in enumerate(arguments.scenes):
        picture = _load_picture(scene_path)
        image_id = picture.name or f"image-{index:04d}"
        database.add_picture(picture, image_id)
    try:
        save_database_to(
            database,
            arguments.database,
            backend=_backend_argument(arguments),
            shard_count=arguments.shards,
        )
    except (StorageError, ValueError) as error:
        raise CliError(str(error)) from error
    print(f"wrote {len(database)} images "
          f"({database.total_objects()} objects, {database.total_storage_symbols()} symbols) "
          f"to {arguments.database}")
    return 0


def _command_convert(arguments: argparse.Namespace) -> int:
    from repro.index.shortlist import DEFAULT_BITMAP_WIDTH, ensure_signatures

    database = _load_database(arguments.source, backend=_backend_argument(arguments))
    target_backend = None if arguments.to == "auto" else arguments.to
    persist_signatures = not arguments.no_signatures
    if arguments.bitmap_width is None:
        # Keep the tuning of an already-tuned database across format
        # conversions; fall back to the default only when nothing is stored.
        width = next(
            (
                record.signature.width
                for record in database
                if record.signature is not None
            ),
            DEFAULT_BITMAP_WIDTH,
        )
    else:
        width = arguments.bitmap_width
    if width < 1:
        raise CliError("--bitmap-width must be at least 1")
    computed = 0
    if persist_signatures:
        computed = ensure_signatures(database, width)
    try:
        save_database_to(
            database,
            arguments.destination,
            backend=target_backend,
            shard_count=arguments.shards,
            persist_signatures=persist_signatures,
        )
    except (StorageError, ValueError) as error:
        raise CliError(str(error)) from error
    summary = describe_database(arguments.destination)
    signatures = "without signatures"
    if persist_signatures:
        signatures = f"with shortlist signatures ({computed} computed, width {width})"
    print(
        f"converted {summary['images']} images to {summary['format']} "
        f"at {arguments.destination} ({summary['size_bytes']} bytes, {signatures})"
    )
    return 0


def _command_info(arguments: argparse.Namespace) -> int:
    try:
        summary = describe_database(arguments.database, backend=_backend_argument(arguments))
    except FileNotFoundError:
        raise CliError(f"database not found: {arguments.database}") from None
    except StorageError as error:
        raise CliError(f"malformed database {arguments.database}: {error}") from error
    for key in (
        "path",
        "format",
        "schema_version",
        "name",
        "images",
        "shard_count",
        "signatures",
        "size_bytes",
    ):
        if key in summary:
            print(f"{key}: {summary[key]}")
    wal = summary.get("wal")
    if wal is not None:
        print(
            f"wal: {wal['file']} (snapshot_lsn {wal['snapshot_lsn']}, "
            f"last_lsn {wal['last_lsn']}, {wal['pending_records']} pending, "
            f"{wal['size_bytes']} bytes, "
            f"{'clean' if wal['clean'] else 'torn tail'})"
        )
    return 0


def _build_query(system: RetrievalSystem, arguments: argparse.Namespace):
    """Compose the builder shared by the ``search`` and ``explain`` commands.

    Raises:
        CliError: if neither a query scene nor a ``--where`` predicate was
            given, or the predicate text is malformed.
    """
    builder = system.query()
    if getattr(arguments, "query", None):
        builder.similar_to(_load_picture(arguments.query))
    builder.invariant(arguments.invariant).limit(arguments.top)
    builder.execution(
        shortlist=not arguments.no_filters,
        kernel=getattr(arguments, "kernel", None),
        strategy=getattr(arguments, "strategy", None),
    )
    builder.min_score(getattr(arguments, "min_score", 0.0))
    where = getattr(arguments, "where", None)
    if where:
        try:
            builder.where(where, fuzzy=getattr(arguments, "fuzzy", False))
        except PredicateError as error:
            raise CliError(str(error)) from error
    elif getattr(arguments, "fuzzy", False):
        raise CliError("--fuzzy requires a --where clause")
    try:
        builder.spec()
    except QuerySpecError as error:
        raise CliError(str(error)) from error
    return builder


def _command_search(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database, backend=_backend_argument(arguments))
    results = _build_query(system, arguments).execute()
    if arguments.jsonl:
        # Keep stdout machine-readable: an empty result set emits nothing.
        text = results.to_jsonl()
        if text:
            print(text)
        else:
            print("no matching images", file=sys.stderr)
        return 0 if results else 1
    if not results:
        print("no matching images")
        return 1
    for result in results:
        print(result.describe())
    return 0


def _command_explain(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database, backend=_backend_argument(arguments))
    results = _build_query(system, arguments).execute()
    print(results.explain_report())
    return 0 if results else 1


def _load_batch_queries(path: str, arguments: argparse.Namespace) -> List["QuerySpec"]:
    """Parse a JSONL query file into :class:`QuerySpec` objects.

    Each non-empty line is either a scene object, or a wrapper
    ``{"scene": {...}, "invariant": bool, "top": int|null, "min_score": float}``
    whose optional keys override the command-line defaults for that query
    (``"top": null`` means unlimited results).
    """
    from repro.core.transforms import Transformation
    from repro.iconic.picture import SymbolicPicture

    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        raise CliError(f"query file not found: {path}") from None
    queries: List[QuerySpec] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise CliError(f"{path}:{number}: invalid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise CliError(f"{path}:{number}: expected a JSON object")
        overrides = payload if "scene" in payload else {}
        scene = payload.get("scene", payload)
        try:
            picture = SymbolicPicture.from_dict(scene)
        except (StorageError, ValueError, KeyError, TypeError) as error:
            raise CliError(f"{path}:{number}: malformed scene: {error}") from error
        invariant = overrides.get("invariant", arguments.invariant)
        if not isinstance(invariant, bool):
            raise CliError(f"{path}:{number}: 'invariant' must be a JSON boolean")
        limit = overrides.get("top", arguments.top)
        if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
            raise CliError(f"{path}:{number}: 'top' must be a JSON integer or null")
        minimum_score = overrides.get("min_score", 0.0)
        if isinstance(minimum_score, bool) or not isinstance(minimum_score, (int, float)):
            raise CliError(f"{path}:{number}: 'min_score' must be a JSON number")
        queries.append(
            QuerySpec(
                picture=picture,
                transformations=tuple(Transformation) if invariant else (Transformation.IDENTITY,),
                limit=limit,
                minimum_score=float(minimum_score),
                use_filters=not arguments.no_filters,
            )
        )
    if not queries:
        raise CliError(f"query file {path} contains no queries")
    return queries


def _command_batch_search(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database, backend=_backend_argument(arguments))
    queries = _load_batch_queries(arguments.queries, arguments)
    started = time.perf_counter()
    try:
        batches = system.query_batch(
            queries, workers=arguments.workers, executor=arguments.executor
        )
    except ValueError as error:  # bad scheduler knobs, e.g. --workers 0
        raise CliError(str(error)) from error
    elapsed = time.perf_counter() - started
    matched = 0
    for index, (query, results) in enumerate(zip(queries, batches)):
        name = query.picture.name or f"query-{index}"
        print(f"[{index}] {name}: {len(results)} results")
        for result in results:
            print("   ", result.describe())
        if results:
            matched += 1
    report = system.last_batch_report
    throughput = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(
        f"batch: {report.describe()}; "
        f"{elapsed:.3f}s total ({throughput:.1f} queries/s)"
    )
    return 0 if matched else 1


def _command_relations(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database, backend=_backend_argument(arguments))
    try:
        matches = system.query().where(arguments.query).limit(arguments.top).execute()
    except PredicateError as error:
        raise CliError(str(error)) from error
    if not matches:
        print("no matching images")
        return 1
    for match in matches:
        print(match.describe())
    return 0


def _command_show(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database, backend=_backend_argument(arguments))
    try:
        print(system.show(arguments.image_id, columns=arguments.columns, rows=arguments.rows))
    except KeyError:
        raise CliError(f"no image {arguments.image_id!r} in {arguments.database}") from None
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    from repro.service.server import create_server

    backend = _backend_argument(arguments)
    execution = None
    if arguments.kernel is not None or arguments.strategy is not None:
        execution = ExecutionOptions(
            kernel=arguments.kernel, strategy=arguments.strategy
        )
    if arguments.wal and arguments.no_persist:
        raise CliError("--wal writes a write-ahead log; it cannot combine with --no-persist")
    if arguments.wal_compact_every < 1:
        raise CliError("--wal-compact-every must be at least 1")
    system = _load_system(
        arguments.database, backend=backend, execution=execution, durable=arguments.wal
    )
    persist_path = None if arguments.no_persist else arguments.database
    try:
        server = create_server(
            system,
            host=arguments.host,
            port=arguments.port,
            workers=arguments.workers,
            backlog=arguments.backlog,
            database_path=persist_path,
            backend=backend,
            durable=arguments.wal,
            compact_threshold=arguments.wal_compact_every,
            shard_workers=arguments.shard_workers,
        )
    except (OSError, ValueError, StorageError) as error:
        raise CliError(f"cannot start the service: {error}") from error
    if arguments.wal:
        persistence = (
            "write-ahead logging (ack-after-fsync, "
            f"compacting every {arguments.wal_compact_every} records)"
        )
    elif persist_path:
        persistence = "persisting incrementally"
    else:
        persistence = "in-memory only"
    sharding = (
        f", shard-workers={arguments.shard_workers}" if arguments.shard_workers else ""
    )
    print(
        f"serving {arguments.database} ({len(system)} images) on {server.url} "
        f"(workers={arguments.workers}, backlog={arguments.backlog}{sharding}, "
        f"{persistence})",
        flush=True,
    )
    if arguments.check:
        server.close()
        return 0
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _command_replica(arguments: argparse.Namespace) -> int:
    from repro.service.replica import create_replica_server

    execution = None
    if arguments.kernel is not None or arguments.strategy is not None:
        execution = ExecutionOptions(
            kernel=arguments.kernel, strategy=arguments.strategy
        )
    if arguments.follow_interval <= 0:
        raise CliError("--follow-interval must be positive")
    try:
        server = create_replica_server(
            arguments.database,
            host=arguments.host,
            port=arguments.port,
            workers=arguments.workers,
            backlog=arguments.backlog,
            follow_interval=arguments.follow_interval,
            primary_url=arguments.primary,
            execution=execution,
        )
    except FileNotFoundError:
        raise CliError(f"database not found: {arguments.database}") from None
    except (OSError, ValueError, StorageError) as error:
        raise CliError(f"cannot start the replica: {error}") from error
    service = server.service
    print(
        f"replica of {arguments.database} ({len(service.system)} images) on "
        f"{server.url} (workers={arguments.workers}, "
        f"follow-interval={arguments.follow_interval:g}s, "
        f"applied_lsn={service.replica.applied_lsn})",
        flush=True,
    )
    if arguments.check:
        server.close()
        return 0
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _command_recover(arguments: argparse.Namespace) -> int:
    from repro.index.backends import DurableShardedStore

    try:
        summary = describe_database(arguments.database)
    except FileNotFoundError:
        raise CliError(f"database not found: {arguments.database}") from None
    except StorageError as error:
        raise CliError(f"malformed database {arguments.database}: {error}") from error
    wal = summary.get("wal")
    if wal is None:
        raise CliError(
            f"{arguments.database} has no write-ahead log "
            "(serve it with --wal to make it durable)"
        )
    print(f"database: {arguments.database} ({summary['images']} images in shards)")
    print(f"log: {wal['file']} ({'clean' if wal['clean'] else 'torn tail dropped'})")
    print(f"snapshot_lsn: {wal['snapshot_lsn']}  last_lsn: {wal['last_lsn']}")
    print(f"pending records to replay: {wal['pending_records']}")
    if arguments.check:
        return 0
    database = _load_database(arguments.database)
    try:
        store = DurableShardedStore(database, arguments.database)
        store.compact()
        store.close()
    except (StorageError, ValueError) as error:
        raise CliError(f"recovery failed: {error}") from error
    print(
        f"recovered: {len(database)} images, log compacted through "
        f"LSN {store.snapshot_lsn}"
    )
    return 0


def _command_ping(arguments: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    try:
        client = ServiceClient.from_url(arguments.url, timeout=arguments.timeout)
        info = client.ping()
    except (ServiceError, ValueError) as error:
        raise CliError(str(error)) from error
    print(
        f"{info.get('status', 'ok')}: {info.get('images', '?')} images, "
        f"uptime {info.get('uptime_seconds', 0):g}s, "
        f"round-trip {info['round_trip_ms']:g}ms"
    )
    return 0


def _command_demo(arguments: argparse.Namespace) -> int:
    from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene

    pictures = (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(3)]
        + [landscape_scene(variant) for variant in range(3)]
    )
    system = RetrievalSystem.from_pictures(pictures)
    backend = _backend_argument(arguments)
    default_name = {"sqlite": "demo-db.sqlite", "sharded": "demo-db.shards"}.get(
        backend or "", "demo-db.json"
    )
    target = arguments.output or str(
        Path(tempfile.mkdtemp(prefix="repro-demo-")) / default_name
    )
    try:
        system.save(target, backend=backend)
    except (StorageError, ValueError) as error:
        raise CliError(str(error)) from error
    print(f"built a demo database of {len(system)} themed scenes at {target}")
    print()
    query = office_scene(0)
    print("query: the canonical office scene; top 3 similarity matches:")
    for result in system.query(query).limit(3).execute():
        print(" ", result.describe())
    print()
    print('relation query: "monitor above desk and phone right-of monitor"')
    for match in (
        system.query()
        .where("monitor above desk and phone right-of monitor")
        .limit(3)
        .execute()
    ):
        print(" ", match.describe())
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _add_format_flag(subparser: argparse.ArgumentParser, help_suffix: str = "") -> None:
    """Attach the shared ``--format`` storage-format override flag."""
    subparser.add_argument(
        "--format",
        choices=FORMAT_CHOICES,
        default="auto",
        help=f"storage format{help_suffix} (default: auto — infer from path/content)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for testing and docs).

    Returns:
        The fully configured :class:`argparse.ArgumentParser`.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="2D BE-string image indexing and similarity retrieval (Wang, ICDCS 2001)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    encode = subparsers.add_parser("encode", help="encode a scene file as a 2D BE-string")
    encode.add_argument("scene", help="path to a scene JSON file")
    encode.set_defaults(handler=_command_encode)

    build = subparsers.add_parser("build", help="build a database from scene files")
    build.add_argument("database", help="output database path (.json/.sqlite/.shards)")
    build.add_argument("scenes", nargs="+", help="scene JSON files to index")
    _add_format_flag(build, " of the output database")
    build.add_argument(
        "--shards", type=int, default=None,
        help="shard count when writing a sharded database (default 16)",
    )
    build.set_defaults(handler=_command_build)

    convert = subparsers.add_parser(
        "convert", help="convert a database between storage formats"
    )
    convert.add_argument("source", help="existing database path")
    convert.add_argument("destination", help="output database path")
    _add_format_flag(convert, " of the source database")
    convert.add_argument(
        "--to",
        choices=FORMAT_CHOICES,
        default="auto",
        help="target format (default: auto — infer from the destination path)",
    )
    convert.add_argument(
        "--shards", type=int, default=None,
        help="shard count when writing a sharded database (default 16)",
    )
    convert.add_argument(
        "--no-signatures", action="store_true",
        help="write a lean database without the precomputed shortlist signatures",
    )
    convert.add_argument(
        "--bitmap-width", type=int, default=None,
        help="bitmap width (bits) of the shortlist signatures (default 128)",
    )
    convert.set_defaults(handler=_command_convert)

    info = subparsers.add_parser(
        "info", help="print storage format and statistics of a database"
    )
    info.add_argument("database", help="database path")
    _add_format_flag(info)
    info.set_defaults(handler=_command_info)

    def _add_query_flags(subparser: argparse.ArgumentParser) -> None:
        """The flags shared by the builder-backed ``search``/``explain`` commands."""
        subparser.add_argument("database", help="database path (any storage format)")
        subparser.add_argument(
            "query", nargs="?", default=None, help="query scene JSON path"
        )
        subparser.add_argument(
            "--top", type=int, default=10, help="number of results (default 10)"
        )
        subparser.add_argument(
            "--invariant", action="store_true", help="also match rotations and reflections"
        )
        subparser.add_argument(
            "--no-filters", action="store_true",
            help="score every image (skip candidate pruning)",
        )
        subparser.add_argument(
            "--where", default=None,
            help='relation-predicate clause, e.g. '
                 '"not (phone right-of monitor) or phone above desk [w=2]"',
        )
        subparser.add_argument(
            "--fuzzy", action="store_true",
            help="grade every --where relation by boundary distance instead "
                 "of matching it crisply",
        )
        subparser.add_argument(
            "--min-score", type=float, default=0.0, help="drop results below this score"
        )
        subparser.add_argument(
            "--kernel", choices=KERNELS, default=None,
            help="LCS implementation for scoring (default: reference DP)",
        )
        subparser.add_argument(
            "--strategy", choices=STRATEGIES, default=None,
            help="candidate processing: anytime branch-and-bound or exhaustive "
                 "(default: exhaustive)",
        )
        _add_format_flag(subparser)

    search = subparsers.add_parser("search", help="similarity query against a database")
    _add_query_flags(search)
    search.add_argument(
        "--jsonl", action="store_true", help="print results as JSON Lines instead of text"
    )
    search.set_defaults(handler=_command_search)

    explain = subparsers.add_parser(
        "explain", help="run a query and print its execution trace"
    )
    _add_query_flags(explain)
    explain.set_defaults(handler=_command_explain)

    batch = subparsers.add_parser(
        "batch-search", help="run many similarity queries from a JSONL file as one batch"
    )
    batch.add_argument("database", help="database path (any storage format)")
    batch.add_argument("queries", help="JSONL file with one query scene per line")
    batch.add_argument("--top", type=int, default=10, help="results per query (default 10)")
    batch.add_argument(
        "--invariant", action="store_true", help="also match rotations and reflections"
    )
    batch.add_argument(
        "--no-filters", action="store_true", help="score every image (skip candidate pruning)"
    )
    batch.add_argument(
        "--workers", type=int, default=4, help="worker pool size for cache misses (default 4)"
    )
    batch.add_argument(
        "--executor",
        choices=("thread", "process", "serial", "auto"),
        default="auto",
        help="how cache misses are scheduled (default auto)",
    )
    _add_format_flag(batch)
    batch.set_defaults(handler=_command_batch_search)

    relations = subparsers.add_parser("relations", help="relation-predicate query")
    relations.add_argument("database", help="database path (any storage format)")
    relations.add_argument("query", help='predicate query, e.g. "car left-of tree"')
    relations.add_argument("--top", type=int, default=10, help="number of results (default 10)")
    _add_format_flag(relations)
    relations.set_defaults(handler=_command_relations)

    show = subparsers.add_parser("show", help="ASCII-render a stored image")
    show.add_argument("database", help="database path (any storage format)")
    show.add_argument("image_id", help="id of the stored image")
    show.add_argument("--columns", type=int, default=60)
    show.add_argument("--rows", type=int, default=20)
    _add_format_flag(show)
    show.set_defaults(handler=_command_show)

    serve = subparsers.add_parser(
        "serve", help="run the JSON-over-HTTP retrieval daemon over a database"
    )
    serve.add_argument("database", help="database path (any storage format)")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="port to bind; 0 picks an ephemeral port (default 8765)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="max requests executing concurrently (default 4)",
    )
    serve.add_argument(
        "--backlog", type=int, default=16,
        help="max requests waiting beyond the workers before 503s (default 16)",
    )
    serve.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="scatter-gather every search across N forked shard-worker "
             "processes (byte-identical rankings; see docs/parallelism.md)",
    )
    serve.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="engine-default LCS implementation for every served query",
    )
    serve.add_argument(
        "--strategy", choices=STRATEGIES, default=None,
        help="engine-default candidate-processing strategy for every served query",
    )
    serve.add_argument(
        "--no-persist", action="store_true",
        help="keep mutations in memory instead of writing back to the database",
    )
    serve.add_argument(
        "--wal", action="store_true",
        help="durable mode (sharded databases): fsync every mutation to a "
             "write-ahead log before acknowledging, compact in the background "
             "(see docs/durability.md)",
    )
    serve.add_argument(
        "--wal-compact-every", type=int, default=256, metavar="N",
        help="pending log records that trigger a background compaction "
             "(default 256)",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="bind, print the address and exit without serving (smoke tests)",
    )
    _add_format_flag(serve)
    serve.set_defaults(handler=_command_serve)

    replica = subparsers.add_parser(
        "replica",
        help="run a read-only replica daemon that tails a durable database's WAL",
    )
    replica.add_argument("database", help="durable sharded database directory (the primary's)")
    replica.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default 127.0.0.1)"
    )
    replica.add_argument(
        "--port", type=int, default=8766,
        help="port to bind; 0 picks an ephemeral port (default 8766)",
    )
    replica.add_argument(
        "--workers", type=int, default=4,
        help="max requests executing concurrently (default 4)",
    )
    replica.add_argument(
        "--backlog", type=int, default=16,
        help="max requests waiting beyond the workers before 503s (default 16)",
    )
    replica.add_argument(
        "--follow-interval", type=float, default=0.25, metavar="S",
        help="seconds between write-ahead-log polls (default 0.25)",
    )
    replica.add_argument(
        "--primary", default=None, metavar="URL",
        help="the primary's base URL, advertised in 403 write rejections",
    )
    replica.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="engine-default LCS implementation for every served query",
    )
    replica.add_argument(
        "--strategy", choices=STRATEGIES, default=None,
        help="engine-default candidate-processing strategy for every served query",
    )
    replica.add_argument(
        "--check", action="store_true",
        help="bind, print the address and exit without serving (smoke tests)",
    )
    replica.set_defaults(handler=_command_replica)

    recover = subparsers.add_parser(
        "recover",
        help="inspect and recover a durable (write-ahead-logged) database",
    )
    recover.add_argument("database", help="durable sharded database directory")
    recover.add_argument(
        "--check", action="store_true",
        help="report the log state (pending records, torn tail) without recovering",
    )
    recover.set_defaults(handler=_command_recover)

    ping = subparsers.add_parser("ping", help="health-check a running retrieval daemon")
    ping.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8765")
    ping.add_argument(
        "--timeout", type=float, default=5.0, help="request timeout in seconds (default 5)"
    )
    ping.set_defaults(handler=_command_ping)

    demo = subparsers.add_parser("demo", help="build and query a synthetic demo database")
    demo.add_argument("--output", help="where to write the demo database")
    _add_format_flag(demo, " of the demo database")
    demo.set_defaults(handler=_command_demo)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
