"""Command-line interface of the reproduction.

A thin front-end over the library for the workflows a user of the paper's
system would script:

``python -m repro.cli encode <scene.json>``
    Encode a scene file (the JSON form of a symbolic picture) and print its
    2D BE-string.

``python -m repro.cli build <database.json> <scene.json> [...]``
    Encode one or more scene files into a database file.

``python -m repro.cli search <database.json> <query-scene.json> [--invariant] [--top K]``
    Run a similarity query against a stored database.

``python -m repro.cli batch-search <database.json> <queries.jsonl> [--workers N]``
    Run many similarity queries as one batch.  Each line of the JSONL file is
    either a scene object or ``{"scene": {...}, "invariant": true, "top": 5}``;
    shared work is deduplicated, scores are cached, and cache misses are
    evaluated on a worker pool (see ``repro.index.batch``).

``python -m repro.cli relations <database.json> "<predicate query>"``
    Run a relation-predicate query ("monitor above desk and ...").

``python -m repro.cli show <database.json> <image-id>``
    ASCII-render one stored image.

``python -m repro.cli demo``
    Build a small synthetic database in a temporary directory and run an
    example query end to end (no input files needed).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.construct import encode_picture
from repro.index.database import ImageDatabase
from repro.index.storage import (
    StorageError,
    load_database,
    picture_from_json_text,
    save_database,
)
from repro.retrieval.predicates import PredicateError
from repro.retrieval.system import RetrievalSystem


class CliError(RuntimeError):
    """Raised for user-facing CLI failures (bad paths, malformed files)."""


def _load_picture(path: str):
    try:
        return picture_from_json_text(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CliError(f"scene file not found: {path}") from None
    except (StorageError, ValueError, KeyError) as error:
        raise CliError(f"malformed scene file {path}: {error}") from error


def _load_system(path: str) -> RetrievalSystem:
    try:
        database = load_database(path)
    except FileNotFoundError:
        raise CliError(f"database file not found: {path}") from None
    except StorageError as error:
        raise CliError(f"malformed database file {path}: {error}") from error
    system = RetrievalSystem()
    for record in database:
        system.add_picture(record.picture, record.image_id)
    return system


# ----------------------------------------------------------------------
# Sub-command implementations (each returns a process exit code)
# ----------------------------------------------------------------------
def _command_encode(arguments: argparse.Namespace) -> int:
    picture = _load_picture(arguments.scene)
    bestring = encode_picture(picture)
    print(f"picture: {picture.name or arguments.scene} "
          f"({len(picture)} objects, {picture.width:g}x{picture.height:g})")
    print("x:", bestring.x.to_text())
    print("y:", bestring.y.to_text())
    print(f"storage: {bestring.total_symbols} symbols")
    return 0


def _command_build(arguments: argparse.Namespace) -> int:
    database = ImageDatabase(name=Path(arguments.database).stem)
    for index, scene_path in enumerate(arguments.scenes):
        picture = _load_picture(scene_path)
        image_id = picture.name or f"image-{index:04d}"
        database.add_picture(picture, image_id)
    save_database(database, arguments.database)
    print(f"wrote {len(database)} images "
          f"({database.total_objects()} objects, {database.total_storage_symbols()} symbols) "
          f"to {arguments.database}")
    return 0


def _command_search(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database)
    query = _load_picture(arguments.query)
    results = system.search(
        query, limit=arguments.top, invariant=arguments.invariant, use_filters=not arguments.no_filters
    )
    if not results:
        print("no matching images")
        return 1
    for result in results:
        print(result.describe())
    return 0


def _load_batch_queries(path: str, arguments: argparse.Namespace) -> List["Query"]:
    """Parse a JSONL query file into :class:`Query` objects.

    Each non-empty line is either a scene object, or a wrapper
    ``{"scene": {...}, "invariant": bool, "top": int|null, "min_score": float}``
    whose optional keys override the command-line defaults for that query
    (``"top": null`` means unlimited results).
    """
    from repro.core.transforms import Transformation
    from repro.iconic.picture import SymbolicPicture
    from repro.index.query import Query

    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        raise CliError(f"query file not found: {path}") from None
    queries: List[Query] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise CliError(f"{path}:{number}: invalid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise CliError(f"{path}:{number}: expected a JSON object")
        overrides = payload if "scene" in payload else {}
        scene = payload.get("scene", payload)
        try:
            picture = SymbolicPicture.from_dict(scene)
        except (StorageError, ValueError, KeyError, TypeError) as error:
            raise CliError(f"{path}:{number}: malformed scene: {error}") from error
        invariant = overrides.get("invariant", arguments.invariant)
        if not isinstance(invariant, bool):
            raise CliError(f"{path}:{number}: 'invariant' must be a JSON boolean")
        limit = overrides.get("top", arguments.top)
        if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
            raise CliError(f"{path}:{number}: 'top' must be a JSON integer or null")
        minimum_score = overrides.get("min_score", 0.0)
        if isinstance(minimum_score, bool) or not isinstance(minimum_score, (int, float)):
            raise CliError(f"{path}:{number}: 'min_score' must be a JSON number")
        queries.append(
            Query(
                picture=picture,
                transformations=tuple(Transformation) if invariant else (Transformation.IDENTITY,),
                limit=limit,
                minimum_score=float(minimum_score),
                use_filters=not arguments.no_filters,
            )
        )
    if not queries:
        raise CliError(f"query file {path} contains no queries")
    return queries


def _command_batch_search(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database)
    queries = _load_batch_queries(arguments.queries, arguments)
    started = time.perf_counter()
    try:
        batches = system.run_batch(
            queries, workers=arguments.workers, executor=arguments.executor
        )
    except ValueError as error:  # bad scheduler knobs, e.g. --workers 0
        raise CliError(str(error)) from error
    elapsed = time.perf_counter() - started
    matched = 0
    for index, (query, results) in enumerate(zip(queries, batches)):
        name = query.picture.name or f"query-{index}"
        print(f"[{index}] {name}: {len(results)} results")
        for result in results:
            print("   ", result.describe())
        if results:
            matched += 1
    report = system.last_batch_report
    throughput = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(
        f"batch: {report.describe()}; "
        f"{elapsed:.3f}s total ({throughput:.1f} queries/s)"
    )
    return 0 if matched else 1


def _command_relations(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database)
    try:
        matches = system.search_by_relations(arguments.query, limit=arguments.top)
    except PredicateError as error:
        raise CliError(str(error)) from error
    if not matches:
        print("no matching images")
        return 1
    for match in matches:
        print(match.describe())
    return 0


def _command_show(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments.database)
    try:
        print(system.show(arguments.image_id, columns=arguments.columns, rows=arguments.rows))
    except KeyError:
        raise CliError(f"no image {arguments.image_id!r} in {arguments.database}") from None
    return 0


def _command_demo(arguments: argparse.Namespace) -> int:
    from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene

    pictures = (
        [office_scene(variant) for variant in range(3)]
        + [traffic_scene(variant) for variant in range(3)]
        + [landscape_scene(variant) for variant in range(3)]
    )
    system = RetrievalSystem.from_pictures(pictures)
    target = arguments.output or str(Path(tempfile.mkdtemp(prefix="repro-demo-")) / "demo-db.json")
    system.save(target)
    print(f"built a demo database of {len(system)} themed scenes at {target}")
    print()
    query = office_scene(0)
    print("query: the canonical office scene; top 3 similarity matches:")
    for result in system.search(query, limit=3):
        print(" ", result.describe())
    print()
    print('relation query: "monitor above desk and phone right-of monitor"')
    for match in system.search_by_relations(
        "monitor above desk and phone right-of monitor", limit=3
    ):
        print(" ", match.describe())
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="2D BE-string image indexing and similarity retrieval (Wang, ICDCS 2001)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    encode = subparsers.add_parser("encode", help="encode a scene file as a 2D BE-string")
    encode.add_argument("scene", help="path to a scene JSON file")
    encode.set_defaults(handler=_command_encode)

    build = subparsers.add_parser("build", help="build a database file from scene files")
    build.add_argument("database", help="output database JSON path")
    build.add_argument("scenes", nargs="+", help="scene JSON files to index")
    build.set_defaults(handler=_command_build)

    search = subparsers.add_parser("search", help="similarity query against a database")
    search.add_argument("database", help="database JSON path")
    search.add_argument("query", help="query scene JSON path")
    search.add_argument("--top", type=int, default=10, help="number of results (default 10)")
    search.add_argument(
        "--invariant", action="store_true", help="also match rotations and reflections"
    )
    search.add_argument(
        "--no-filters", action="store_true", help="score every image (skip candidate pruning)"
    )
    search.set_defaults(handler=_command_search)

    batch = subparsers.add_parser(
        "batch-search", help="run many similarity queries from a JSONL file as one batch"
    )
    batch.add_argument("database", help="database JSON path")
    batch.add_argument("queries", help="JSONL file with one query scene per line")
    batch.add_argument("--top", type=int, default=10, help="results per query (default 10)")
    batch.add_argument(
        "--invariant", action="store_true", help="also match rotations and reflections"
    )
    batch.add_argument(
        "--no-filters", action="store_true", help="score every image (skip candidate pruning)"
    )
    batch.add_argument(
        "--workers", type=int, default=4, help="worker pool size for cache misses (default 4)"
    )
    batch.add_argument(
        "--executor",
        choices=("thread", "process", "serial", "auto"),
        default="auto",
        help="how cache misses are scheduled (default auto)",
    )
    batch.set_defaults(handler=_command_batch_search)

    relations = subparsers.add_parser("relations", help="relation-predicate query")
    relations.add_argument("database", help="database JSON path")
    relations.add_argument("query", help='predicate query, e.g. "car left-of tree"')
    relations.add_argument("--top", type=int, default=10, help="number of results (default 10)")
    relations.set_defaults(handler=_command_relations)

    show = subparsers.add_parser("show", help="ASCII-render a stored image")
    show.add_argument("database", help="database JSON path")
    show.add_argument("image_id", help="id of the stored image")
    show.add_argument("--columns", type=int, default=60)
    show.add_argument("--rows", type=int, default=20)
    show.set_defaults(handler=_command_show)

    demo = subparsers.add_parser("demo", help="build and query a synthetic demo database")
    demo.add_argument("--output", help="where to write the demo database JSON")
    demo.set_defaults(handler=_command_demo)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
