"""A minimal 2-D point type used throughout the geometry substrate."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point.

    Coordinates are stored as floats but integer inputs are preserved exactly
    (``float`` holds all 32-bit integers losslessly), which is all the paper's
    pixel-grid scenes require.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def scale(self, factor_x: float, factor_y: float | None = None) -> "Point":
        """Return a new point scaled about the origin.

        When ``factor_y`` is omitted the same factor is applied to both axes.
        """
        if factor_y is None:
            factor_y = factor_x
        return Point(self.x * factor_x, self.y * factor_y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def reflect_x(self, axis_y: float = 0.0) -> "Point":
        """Reflect across the horizontal line ``y = axis_y``."""
        return Point(self.x, 2.0 * axis_y - self.y)

    def reflect_y(self, axis_x: float = 0.0) -> "Point":
        """Reflect across the vertical line ``x = axis_x``."""
        return Point(2.0 * axis_x - self.x, self.y)

    def rotate90(self, width: float, height: float) -> "Point":
        """Rotate 90 degrees clockwise inside a ``width x height`` frame.

        The frame convention matches the paper's image frames: the point stays
        inside the rotated frame (which is ``height x width``).
        """
        return Point(height - self.y, self.x)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point({self.x:g}, {self.y:g})"
