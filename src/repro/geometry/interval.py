"""Closed 1-D intervals: the axis projections of minimum bounding rectangles.

Every representation in the 2-D string family (and the paper's 2D BE-string)
works on the *begin* and *end* boundaries of each object's MBR projected onto
the x- and y-axes.  :class:`Interval` is that projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[begin, end]`` with ``begin <= end``."""

    begin: float
    end: float

    def __post_init__(self) -> None:
        if self.begin > self.end:
            raise ValueError(
                f"Interval begin {self.begin!r} must not exceed end {self.end!r}"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def length(self) -> float:
        """Length of the interval (``end - begin``)."""
        return self.end - self.begin

    @property
    def midpoint(self) -> float:
        """Arithmetic midpoint of the interval."""
        return (self.begin + self.end) / 2.0

    @property
    def is_degenerate(self) -> bool:
        """True when the interval is a single point."""
        return self.begin == self.end

    def __iter__(self) -> Iterator[float]:
        yield self.begin
        yield self.end

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(begin, end)``."""
        return (self.begin, self.end)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, value: float) -> bool:
        """True when ``begin <= value <= end``."""
        return self.begin <= value <= self.end

    def contains(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely within this interval."""
        return self.begin <= other.begin and other.end <= self.end

    def strictly_contains(self, other: "Interval") -> bool:
        """True when ``other`` lies strictly inside this interval."""
        return self.begin < other.begin and other.end < self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point."""
        return self.begin <= other.end and other.begin <= self.end

    def strictly_overlaps(self, other: "Interval") -> bool:
        """True when the interiors of the intervals intersect."""
        return self.begin < other.end and other.begin < self.end

    def touches(self, other: "Interval") -> bool:
        """True when the intervals share exactly a boundary point."""
        return self.end == other.begin or other.end == self.begin

    def disjoint_from(self, other: "Interval") -> bool:
        """True when the closed intervals share no point at all."""
        return not self.overlaps(other)

    # ------------------------------------------------------------------
    # Combinations
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The overlapping sub-interval, or ``None`` if disjoint."""
        begin = max(self.begin, other.begin)
        end = min(self.end, other.end)
        if begin > end:
            return None
        return Interval(begin, end)

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both operands (their convex hull)."""
        return Interval(min(self.begin, other.begin), max(self.end, other.end))

    def translate(self, delta: float) -> "Interval":
        """Shift both boundaries by ``delta``."""
        return Interval(self.begin + delta, self.end + delta)

    def scale(self, factor: float) -> "Interval":
        """Scale both boundaries about the origin by a non-negative factor."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Interval(self.begin * factor, self.end * factor)

    def reflect(self, extent: float) -> "Interval":
        """Reflect inside ``[0, extent]`` (mirror about ``extent / 2``).

        This is exactly the boundary arithmetic needed when an image of width
        ``extent`` is mirrored: the begin boundary of each object becomes
        ``extent - end`` and vice versa.
        """
        return Interval(extent - self.end, extent - self.begin)

    def clamp(self, low: float, high: float) -> "Interval":
        """Clip the interval to ``[low, high]``."""
        if low > high:
            raise ValueError("clamp bounds must satisfy low <= high")
        begin = min(max(self.begin, low), high)
        end = min(max(self.end, low), high)
        return Interval(begin, end)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.begin:g}, {self.end:g})"
