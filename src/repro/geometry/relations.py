"""2-D spatial relations between MBRs.

A pair of MBRs is fully characterised (up to metric detail) by the pair of
Allen relations between their x- and y-projections -- 13 x 13 = 169 categories.
The 2-D string family's type-0/1/2 similarity definitions are coarsenings of
these categories; this module provides both the fine-grained
:class:`SpatialRelation` and the coarse :class:`DirectionalRelation` /
:class:`TopologicalClass` views the baselines need.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geometry.allen import (
    AllenRelation,
    allen_relation,
    inverse_relation,
    shares_point,
)
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle


class DirectionalRelation(Enum):
    """Coarse ordering of two MBRs along one axis.

    ``BEFORE``/``AFTER`` mean the projections are disjoint (possibly
    adjoining); ``SAME`` means the projections share interior or boundary in a
    way that prevents a strict ordering.  This is the granularity of the
    original 2-D string operators ``<`` and ``=``.
    """

    BEFORE = "<"
    SAME = "="
    AFTER = ">"


class TopologicalClass(Enum):
    """Topological classification of two MBRs in the plane."""

    DISJOINT = "disjoint"
    TOUCHING = "touching"
    OVERLAPPING = "overlapping"
    CONTAINS = "contains"
    INSIDE = "inside"
    EQUAL = "equal"


@dataclass(frozen=True)
class SpatialRelation:
    """The exact pair of Allen relations between two MBR projections."""

    x: AllenRelation
    y: AllenRelation

    def inverse(self) -> "SpatialRelation":
        """Relation with the two rectangles swapped."""
        return SpatialRelation(inverse_relation(self.x), inverse_relation(self.y))

    @property
    def topology(self) -> TopologicalClass:
        """Coarse topological class implied by the two axis relations."""
        x_shares = shares_point(self.x)
        y_shares = shares_point(self.y)
        if not (x_shares and y_shares):
            return TopologicalClass.DISJOINT
        if self.x == AllenRelation.EQUALS and self.y == AllenRelation.EQUALS:
            return TopologicalClass.EQUAL
        containing_x = self.x in (
            AllenRelation.CONTAINS,
            AllenRelation.STARTED_BY,
            AllenRelation.FINISHED_BY,
            AllenRelation.EQUALS,
        )
        containing_y = self.y in (
            AllenRelation.CONTAINS,
            AllenRelation.STARTED_BY,
            AllenRelation.FINISHED_BY,
            AllenRelation.EQUALS,
        )
        inside_x = self.x in (
            AllenRelation.DURING,
            AllenRelation.STARTS,
            AllenRelation.FINISHES,
            AllenRelation.EQUALS,
        )
        inside_y = self.y in (
            AllenRelation.DURING,
            AllenRelation.STARTS,
            AllenRelation.FINISHES,
            AllenRelation.EQUALS,
        )
        if containing_x and containing_y:
            return TopologicalClass.CONTAINS
        if inside_x and inside_y:
            return TopologicalClass.INSIDE
        touching_x = self.x in (AllenRelation.MEETS, AllenRelation.MET_BY)
        touching_y = self.y in (AllenRelation.MEETS, AllenRelation.MET_BY)
        if touching_x or touching_y:
            return TopologicalClass.TOUCHING
        return TopologicalClass.OVERLAPPING

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(x:{self.x.value}, y:{self.y.value})"


def spatial_relation(a: Rectangle, b: Rectangle) -> SpatialRelation:
    """Compute the exact 2-D spatial relation between two MBRs."""
    return SpatialRelation(
        allen_relation(a.x_interval, b.x_interval),
        allen_relation(a.y_interval, b.y_interval),
    )


def directional_relation(a_begin: float, a_end: float, b_begin: float, b_end: float) -> DirectionalRelation:
    """Coarse 1-D ordering used by the original 2-D string operators.

    The original 2-D string compares objects by a reference point (in practice
    the projection extent); ``a < b`` when *a* lies entirely before *b*,
    ``a > b`` when entirely after, otherwise ``=``.
    """
    if a_end < b_begin:
        return DirectionalRelation.BEFORE
    if b_end < a_begin:
        return DirectionalRelation.AFTER
    return DirectionalRelation.SAME


def directional_relation_between(a: Rectangle, b: Rectangle, axis: str) -> DirectionalRelation:
    """Coarse directional relation between two MBRs along ``"x"`` or ``"y"``."""
    if axis == "x":
        return directional_relation(a.x_begin, a.x_end, b.x_begin, b.x_end)
    if axis == "y":
        return directional_relation(a.y_begin, a.y_end, b.y_begin, b.y_end)
    raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")


# ----------------------------------------------------------------------
# Graded (fuzzy) relation degrees
# ----------------------------------------------------------------------
#
# Each ``degree_*`` function returns a satisfaction degree in [0, 1] for the
# 1-D relation its boolean counterpart decides: exactly 1.0 when the crisp
# relation holds, and otherwise a value strictly below 1.0 that decays
# linearly with the boundary distance by which the relation is violated,
# normalised by the longer of the two interval lengths (so the degree is
# scale-free; a unit fallback keeps degenerate point intervals finite).
# 2-D predicates compose the per-axis degrees with ``min`` (the Gödel
# t-norm), which preserves "exact 1.0 iff crisp" because every axis degree
# does.


def _violation_scale(a: Interval, b: Interval) -> float:
    """Normalisation length for boundary-distance violations."""
    return max(a.length, b.length, 1.0)


def _soft(violation: float, scale: float) -> float:
    """Map a positive boundary-distance violation to a degree in [0, 1)."""
    return max(0.0, 1.0 - violation / scale)


def degree_before(a: Interval, b: Interval) -> float:
    """Degree to which ``a`` lies entirely before ``b`` (crisp: ``a.end <= b.begin``)."""
    violation = a.end - b.begin
    if violation <= 0:
        return 1.0
    return _soft(violation, _violation_scale(a, b))


def degree_after(a: Interval, b: Interval) -> float:
    """Degree to which ``a`` lies entirely after ``b``."""
    return degree_before(b, a)


def degree_shares(a: Interval, b: Interval) -> float:
    """Degree to which the closed intervals share at least one point."""
    gap = max(b.begin - a.end, a.begin - b.end)
    if gap <= 0:
        return 1.0
    return _soft(gap, _violation_scale(a, b))


def degree_covers(a: Interval, b: Interval) -> float:
    """Degree to which ``a`` covers ``b`` (crisp: ``a.begin <= b.begin <= b.end <= a.end``)."""
    violation = max(0.0, a.begin - b.begin) + max(0.0, b.end - a.end)
    if violation <= 0:
        return 1.0
    return _soft(violation, _violation_scale(a, b))


def degree_within(a: Interval, b: Interval) -> float:
    """Degree to which ``a`` lies within ``b``."""
    return degree_covers(b, a)


def degree_meets(a: Interval, b: Interval) -> float:
    """Degree to which the intervals adjoin at a boundary point on either side."""
    distance = min(abs(a.end - b.begin), abs(b.end - a.begin))
    if distance <= 0:
        return 1.0
    return _soft(distance, _violation_scale(a, b))
