"""Geometric substrate for the 2D BE-string reproduction.

The paper's spatial-relation model consumes only icon identifiers plus their
minimum bounding rectangles (MBRs).  This subpackage provides the geometric
vocabulary every other layer builds on:

* :class:`~repro.geometry.point.Point` -- an integer/float 2-D point.
* :class:`~repro.geometry.interval.Interval` -- a closed 1-D interval, the
  projection of an MBR on one axis.
* :class:`~repro.geometry.rectangle.Rectangle` -- an axis-aligned MBR with
  intersection/union/containment/transform operations.
* :mod:`~repro.geometry.allen` -- Allen's thirteen interval relations, which
  are exactly the relations the 2-D string family's spatial operators encode.
* :mod:`~repro.geometry.relations` -- 2-D spatial relation categories built
  from per-axis Allen relations, plus the coarse directional relations used by
  the type-0/1/2 similarity baselines.
"""

from repro.geometry.allen import AllenRelation, allen_relation, inverse_relation
from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle
from repro.geometry.relations import (
    DirectionalRelation,
    SpatialRelation,
    TopologicalClass,
    directional_relation,
    spatial_relation,
)

__all__ = [
    "AllenRelation",
    "allen_relation",
    "inverse_relation",
    "Interval",
    "Point",
    "Rectangle",
    "DirectionalRelation",
    "SpatialRelation",
    "TopologicalClass",
    "directional_relation",
    "spatial_relation",
]
