"""Allen's thirteen interval relations.

The spatial operators of the 2-D string family (``<``, ``=``, ``|``, ``%``,
``[``, ``]``, ``/`` ...) are a re-coding of Allen's interval algebra applied to
MBR projections.  The reproduction uses the full thirteen-relation vocabulary
in the baselines (type-0/1/2 similarity) and in the reasoning layer that
recovers pairwise relations from a 2D BE-string.
"""

from __future__ import annotations

from enum import Enum

from repro.geometry.interval import Interval


class AllenRelation(Enum):
    """The thirteen mutually exclusive, jointly exhaustive interval relations.

    Naming follows Allen (1983).  ``a RELATION b`` reads left to right, e.g.
    ``AllenRelation.BEFORE`` means interval *a* ends strictly before *b*
    begins.
    """

    BEFORE = "<"
    MEETS = "m"
    OVERLAPS = "o"
    STARTS = "s"
    DURING = "d"
    FINISHES = "f"
    EQUALS = "="
    FINISHED_BY = "fi"
    CONTAINS = "di"
    STARTED_BY = "si"
    OVERLAPPED_BY = "oi"
    MET_BY = "mi"
    AFTER = ">"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Inverse (converse) of each relation: if ``a R b`` then ``b inverse(R) a``.
_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUALS: AllenRelation.EQUALS,
}

#: Relations in which the two intervals share at least one point.
OVERLAPPING_RELATIONS = frozenset(
    {
        AllenRelation.MEETS,
        AllenRelation.MET_BY,
        AllenRelation.OVERLAPS,
        AllenRelation.OVERLAPPED_BY,
        AllenRelation.STARTS,
        AllenRelation.STARTED_BY,
        AllenRelation.DURING,
        AllenRelation.CONTAINS,
        AllenRelation.FINISHES,
        AllenRelation.FINISHED_BY,
        AllenRelation.EQUALS,
    }
)

#: Relations in which the interiors of the intervals intersect.  These are the
#: "local" relations of the 2D G-string (set R_l); the remaining relations are
#: "global" (set R_g: disjoint, adjoining, or identical boundaries).
LOCAL_RELATIONS = frozenset(
    {
        AllenRelation.OVERLAPS,
        AllenRelation.OVERLAPPED_BY,
        AllenRelation.STARTS,
        AllenRelation.STARTED_BY,
        AllenRelation.DURING,
        AllenRelation.CONTAINS,
        AllenRelation.FINISHES,
        AllenRelation.FINISHED_BY,
        AllenRelation.EQUALS,
    }
)


def inverse_relation(relation: AllenRelation) -> AllenRelation:
    """Return the converse relation (swap the two operands)."""
    return _INVERSES[relation]


def allen_relation(a: Interval, b: Interval) -> AllenRelation:
    """Classify the relation between two closed intervals.

    The classification is exact on the boundary values, which matches how the
    2-D string family compares *projected boundary coordinates* rather than
    areas.
    """
    if a.end < b.begin:
        return AllenRelation.BEFORE
    if b.end < a.begin:
        return AllenRelation.AFTER
    if a.end == b.begin and a.begin < b.begin:
        return AllenRelation.MEETS
    if b.end == a.begin and b.begin < a.begin:
        return AllenRelation.MET_BY
    if a.begin == b.begin and a.end == b.end:
        return AllenRelation.EQUALS
    if a.begin == b.begin:
        return AllenRelation.STARTS if a.end < b.end else AllenRelation.STARTED_BY
    if a.end == b.end:
        return AllenRelation.FINISHES if a.begin > b.begin else AllenRelation.FINISHED_BY
    if b.begin < a.begin and a.end < b.end:
        return AllenRelation.DURING
    if a.begin < b.begin and b.end < a.end:
        return AllenRelation.CONTAINS
    if a.begin < b.begin:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


def is_local(relation: AllenRelation) -> bool:
    """True when the relation belongs to the G-string local set ``R_l``."""
    return relation in LOCAL_RELATIONS


def is_global(relation: AllenRelation) -> bool:
    """True when the relation belongs to the G-string global set ``R_g``."""
    return relation not in LOCAL_RELATIONS


def shares_point(relation: AllenRelation) -> bool:
    """True when the two intervals share at least one point."""
    return relation in OVERLAPPING_RELATIONS
