"""Axis-aligned rectangles (minimum bounding rectangles).

The 2D BE-string "straightly represents an icon by its MBR boundaries"; this
class is that MBR.  It also carries the geometric transforms (rotation within
an image frame, reflection across image axes) that Section 4 of the paper
retrieves by simple string manipulation -- the geometric versions here are the
ground truth the string-level transforms are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.geometry.interval import Interval
from repro.geometry.point import Point


@dataclass(frozen=True, order=True)
class Rectangle:
    """A closed axis-aligned rectangle ``[x_begin, x_end] x [y_begin, y_end]``."""

    x_begin: float
    y_begin: float
    x_end: float
    y_end: float

    def __post_init__(self) -> None:
        if self.x_begin > self.x_end:
            raise ValueError(
                f"x_begin {self.x_begin!r} must not exceed x_end {self.x_end!r}"
            )
        if self.y_begin > self.y_end:
            raise ValueError(
                f"y_begin {self.y_begin!r} must not exceed y_end {self.y_end!r}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_corners(cls, a: Point, b: Point) -> "Rectangle":
        """Build from two opposite corners in any order."""
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @classmethod
    def from_intervals(cls, x: Interval, y: Interval) -> "Rectangle":
        """Build from the two axis projections."""
        return cls(x.begin, y.begin, x.end, y.end)

    @classmethod
    def from_origin_size(
        cls, x: float, y: float, width: float, height: float
    ) -> "Rectangle":
        """Build from the bottom-left corner plus a non-negative size."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(x, y, x + width, y + height)

    # ------------------------------------------------------------------
    # Projections and measures
    # ------------------------------------------------------------------
    @property
    def x_interval(self) -> Interval:
        """Projection of the rectangle onto the x-axis."""
        return Interval(self.x_begin, self.x_end)

    @property
    def y_interval(self) -> Interval:
        """Projection of the rectangle onto the y-axis."""
        return Interval(self.y_begin, self.y_end)

    @property
    def width(self) -> float:
        return self.x_end - self.x_begin

    @property
    def height(self) -> float:
        return self.y_end - self.y_begin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_begin + self.x_end) / 2.0, (self.y_begin + self.y_end) / 2.0)

    @property
    def bottom_left(self) -> Point:
        return Point(self.x_begin, self.y_begin)

    @property
    def top_right(self) -> Point:
        return Point(self.x_end, self.y_end)

    def __iter__(self) -> Iterator[float]:
        yield self.x_begin
        yield self.y_begin
        yield self.x_end
        yield self.y_end

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(x_begin, y_begin, x_end, y_end)``."""
        return (self.x_begin, self.y_begin, self.x_end, self.y_end)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """True when the point lies inside or on the boundary."""
        return self.x_interval.contains_point(point.x) and self.y_interval.contains_point(
            point.y
        )

    def contains(self, other: "Rectangle") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return self.x_interval.contains(other.x_interval) and self.y_interval.contains(
            other.y_interval
        )

    def intersects(self, other: "Rectangle") -> bool:
        """True when the closed rectangles share at least one point."""
        return self.x_interval.overlaps(other.x_interval) and self.y_interval.overlaps(
            other.y_interval
        )

    def strictly_intersects(self, other: "Rectangle") -> bool:
        """True when the rectangle interiors intersect."""
        return self.x_interval.strictly_overlaps(
            other.x_interval
        ) and self.y_interval.strictly_overlaps(other.y_interval)

    # ------------------------------------------------------------------
    # Combinations
    # ------------------------------------------------------------------
    def intersection(self, other: "Rectangle") -> Optional["Rectangle"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        x = self.x_interval.intersection(other.x_interval)
        y = self.y_interval.intersection(other.y_interval)
        if x is None or y is None:
            return None
        return Rectangle.from_intervals(x, y)

    def union_hull(self, other: "Rectangle") -> "Rectangle":
        """Smallest rectangle covering both operands."""
        return Rectangle.from_intervals(
            self.x_interval.union_hull(other.x_interval),
            self.y_interval.union_hull(other.y_interval),
        )

    # ------------------------------------------------------------------
    # Transforms (within an image frame of size ``width`` x ``height``)
    # ------------------------------------------------------------------
    def translate(self, dx: float, dy: float) -> "Rectangle":
        """Shift the rectangle by ``(dx, dy)``."""
        return Rectangle(
            self.x_begin + dx, self.y_begin + dy, self.x_end + dx, self.y_end + dy
        )

    def scale(self, factor_x: float, factor_y: float | None = None) -> "Rectangle":
        """Scale about the origin by non-negative factors."""
        if factor_y is None:
            factor_y = factor_x
        if factor_x < 0 or factor_y < 0:
            raise ValueError("scale factors must be non-negative")
        return Rectangle(
            self.x_begin * factor_x,
            self.y_begin * factor_y,
            self.x_end * factor_x,
            self.y_end * factor_y,
        )

    def reflect_y_axis(self, frame_width: float) -> "Rectangle":
        """Mirror horizontally inside an image frame of the given width."""
        x = self.x_interval.reflect(frame_width)
        return Rectangle(x.begin, self.y_begin, x.end, self.y_end)

    def reflect_x_axis(self, frame_height: float) -> "Rectangle":
        """Mirror vertically inside an image frame of the given height."""
        y = self.y_interval.reflect(frame_height)
        return Rectangle(self.x_begin, y.begin, self.x_end, y.end)

    def rotate90(self, frame_width: float, frame_height: float) -> "Rectangle":
        """Rotate 90 degrees clockwise inside a frame of the given size.

        The rotated rectangle lives in a frame of size
        ``frame_height x frame_width``.  A point ``(x, y)`` maps to
        ``(frame_height - y, x)``; applying that to both corners and
        re-normalising gives the rotated MBR.
        """
        del frame_width  # only the height participates in the clockwise map
        return Rectangle(
            frame_height - self.y_end,
            self.x_begin,
            frame_height - self.y_begin,
            self.x_end,
        )

    def rotate180(self, frame_width: float, frame_height: float) -> "Rectangle":
        """Rotate 180 degrees inside a frame of the given size."""
        return Rectangle(
            frame_width - self.x_end,
            frame_height - self.y_end,
            frame_width - self.x_begin,
            frame_height - self.y_begin,
        )

    def rotate270(self, frame_width: float, frame_height: float) -> "Rectangle":
        """Rotate 270 degrees clockwise (= 90 counter-clockwise) in the frame."""
        del frame_height
        return Rectangle(
            self.y_begin,
            frame_width - self.x_end,
            self.y_end,
            frame_width - self.x_begin,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Rectangle(x=[{self.x_begin:g}, {self.x_end:g}], "
            f"y=[{self.y_begin:g}, {self.y_end:g}])"
        )
