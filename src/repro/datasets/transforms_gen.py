"""Variant generators: transformed, perturbed, partial and scrambled scenes.

The retrieval-quality experiments need database images standing in controlled
relationships to a query scene:

* :func:`transformed_variants` -- the six geometric transforms of a scene
  (what experiment E6 plants and must retrieve via string reversal);
* :func:`perturbed_variant` -- icons nudged without changing the frame, which
  typically preserves most but not all pairwise relations (a "similar" image);
* :func:`partial_variant` -- a subset of the icons (a "partial match", the
  uncertain-query case of Section 4);
* :func:`scrambled_variant` -- the same icon multiset at random positions (a
  hard negative: matching icon sets, different spatial structure).
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Union

from repro.core.transforms import Transformation
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture

RandomSource = Union[int, random.Random, None]


def _rng(seed: RandomSource) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


_GEOMETRIC_TRANSFORMS = {
    Transformation.IDENTITY: lambda picture: picture,
    Transformation.ROTATE_90: SymbolicPicture.rotate90,
    Transformation.ROTATE_180: SymbolicPicture.rotate180,
    Transformation.ROTATE_270: SymbolicPicture.rotate270,
    Transformation.REFLECT_X: SymbolicPicture.reflect_x,
    Transformation.REFLECT_Y: SymbolicPicture.reflect_y,
}


def transformed_variants(
    picture: SymbolicPicture,
    include: Sequence[Transformation] = tuple(Transformation),
) -> Dict[Transformation, SymbolicPicture]:
    """Geometrically transformed copies of a picture, named per transformation."""
    variants: Dict[Transformation, SymbolicPicture] = {}
    for transformation in include:
        transformed = _GEOMETRIC_TRANSFORMS[transformation](picture)
        variants[transformation] = transformed.renamed(
            f"{picture.name}-{transformation.value}" if picture.name else transformation.value
        )
    return variants


def perturbed_variant(
    picture: SymbolicPicture,
    seed: RandomSource = 0,
    amount: float = 0.05,
    name: str = "",
) -> SymbolicPicture:
    """Nudge every icon by up to ``amount`` of the frame size (clamped inside)."""
    rng = _rng(seed)
    max_dx = amount * picture.width
    max_dy = amount * picture.height
    objects = []
    for icon in picture.icons:
        dx = rng.uniform(-max_dx, max_dx)
        dy = rng.uniform(-max_dy, max_dy)
        dx = min(max(dx, -icon.mbr.x_begin), picture.width - icon.mbr.x_end)
        dy = min(max(dy, -icon.mbr.y_begin), picture.height - icon.mbr.y_end)
        objects.append((icon.label, icon.mbr.translate(dx, dy)))
    return SymbolicPicture.build(
        width=picture.width,
        height=picture.height,
        objects=objects,
        name=name or f"{picture.name}-perturbed",
    )


def partial_variant(
    picture: SymbolicPicture,
    keep: int,
    seed: RandomSource = 0,
    name: str = "",
) -> SymbolicPicture:
    """Keep only ``keep`` randomly chosen icons of the picture."""
    if keep < 1 or keep > len(picture):
        raise ValueError(f"keep must be between 1 and {len(picture)}")
    rng = _rng(seed)
    identifiers = list(picture.identifiers)
    rng.shuffle(identifiers)
    subset = picture.subset(identifiers[:keep])
    return subset.renamed(name or f"{picture.name}-partial{keep}")


def scrambled_variant(
    picture: SymbolicPicture,
    seed: RandomSource = 0,
    name: str = "",
) -> SymbolicPicture:
    """Same icons (labels and sizes), positions drawn uniformly at random.

    A hard negative for retrieval: it passes any label-based filter but its
    spatial relations are unrelated to the original.
    """
    rng = _rng(seed)
    objects = []
    for icon in picture.icons:
        width = min(icon.mbr.width, picture.width)
        height = min(icon.mbr.height, picture.height)
        x_begin = rng.uniform(0.0, picture.width - width)
        y_begin = rng.uniform(0.0, picture.height - height)
        objects.append(
            (icon.label, Rectangle(x_begin, y_begin, x_begin + width, y_begin + height))
        )
    return SymbolicPicture.build(
        width=picture.width,
        height=picture.height,
        objects=objects,
        name=name or f"{picture.name}-scrambled",
    )
