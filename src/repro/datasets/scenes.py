"""Deterministic themed scenes used by the examples and the quality benchmarks.

Each builder returns a small, human-interpretable scene from one of the icon
vocabularies ("find all images in which the monitor is on the desk and the
phone is to its right" is the kind of query the 2-D string literature
motivates).  A ``variant`` index produces structured variations of the base
layout: icons shifted, swapped or resized while keeping the scene plausible,
which gives the retrieval-quality experiments a controlled mix of identical,
similar and dissimilar database images.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture

_Objects = List[Tuple[str, Rectangle]]


def _jitter(rng: random.Random, amount: float) -> float:
    return rng.uniform(-amount, amount)


def _shift(mbr: Rectangle, dx: float, dy: float, width: float, height: float) -> Rectangle:
    """Translate an MBR and clamp it back into the frame."""
    dx = min(max(dx, -mbr.x_begin), width - mbr.x_end)
    dy = min(max(dy, -mbr.y_begin), height - mbr.y_end)
    return mbr.translate(dx, dy)


def office_scene(variant: int = 0, name: str = "") -> SymbolicPicture:
    """An office desk scene: desk, chair, monitor, keyboard, phone, lamp, shelf.

    ``variant`` 0 is the canonical layout; higher variants jitter positions
    (keeping the qualitative arrangement) and variants that are multiples of 5
    additionally swap the phone and the lamp, changing some spatial relations.
    """
    width, height = 120.0, 90.0
    rng = random.Random(1000 + variant)
    amount = 0.0 if variant == 0 else 3.0
    desk = Rectangle(20.0, 20.0, 100.0, 45.0)
    chair = Rectangle(45.0, 5.0, 70.0, 20.0)
    monitor = Rectangle(50.0, 45.0, 75.0, 65.0)
    keyboard = Rectangle(52.0, 38.0, 72.0, 43.0)
    phone = Rectangle(80.0, 45.0, 92.0, 55.0)
    lamp = Rectangle(25.0, 45.0, 35.0, 70.0)
    bookshelf = Rectangle(102.0, 20.0, 118.0, 85.0)
    plant = Rectangle(5.0, 20.0, 15.0, 40.0)
    if variant and variant % 5 == 0:
        phone, lamp = (
            Rectangle(25.0, 45.0, 37.0, 55.0),
            Rectangle(80.0, 45.0, 90.0, 70.0),
        )
    objects: _Objects = []
    for label, mbr in [
        ("desk", desk),
        ("chair", chair),
        ("monitor", monitor),
        ("keyboard", keyboard),
        ("phone", phone),
        ("lamp", lamp),
        ("bookshelf", bookshelf),
        ("plant", plant),
    ]:
        shifted = _shift(mbr, _jitter(rng, amount), _jitter(rng, amount), width, height)
        objects.append((label, shifted))
    return SymbolicPicture.build(
        width=width, height=height, objects=objects, name=name or f"office-{variant:03d}"
    )


def traffic_scene(variant: int = 0, name: str = "") -> SymbolicPicture:
    """A street scene: road-side buildings, vehicles, a crossing and a light.

    Variants jitter vehicle positions; variants that are multiples of 4 move
    the bus to the opposite side of the car, flipping their left/right
    relation.
    """
    width, height = 160.0, 100.0
    rng = random.Random(2000 + variant)
    amount = 0.0 if variant == 0 else 4.0
    building_left = Rectangle(0.0, 60.0, 40.0, 100.0)
    building_right = Rectangle(120.0, 60.0, 160.0, 100.0)
    crosswalk = Rectangle(70.0, 20.0, 90.0, 60.0)
    traffic_light = Rectangle(92.0, 55.0, 98.0, 80.0)
    car = Rectangle(20.0, 25.0, 45.0, 40.0)
    bus = Rectangle(100.0, 22.0, 140.0, 45.0)
    bicycle = Rectangle(55.0, 25.0, 65.0, 35.0)
    pedestrian = Rectangle(75.0, 40.0, 82.0, 55.0)
    if variant and variant % 4 == 0:
        car, bus = (
            Rectangle(100.0, 25.0, 125.0, 40.0),
            Rectangle(10.0, 22.0, 50.0, 45.0),
        )
    objects: _Objects = []
    for label, mbr in [
        ("building", building_left),
        ("building", building_right),
        ("crosswalk", crosswalk),
        ("traffic_light", traffic_light),
        ("car", car),
        ("bus", bus),
        ("bicycle", bicycle),
        ("pedestrian", pedestrian),
    ]:
        shifted = _shift(mbr, _jitter(rng, amount), _jitter(rng, amount), width, height)
        objects.append((label, shifted))
    return SymbolicPicture.build(
        width=width, height=height, objects=objects, name=name or f"traffic-{variant:03d}"
    )


def landscape_scene(variant: int = 0, name: str = "") -> SymbolicPicture:
    """A landscape: sun and cloud above a mountain, lake, house and trees.

    Variants jitter element positions; variants that are multiples of 3 put
    the sun behind the cloud (overlapping MBRs) instead of beside it.
    """
    width, height = 150.0, 100.0
    rng = random.Random(3000 + variant)
    amount = 0.0 if variant == 0 else 3.5
    sun = Rectangle(10.0, 75.0, 30.0, 95.0)
    cloud = Rectangle(50.0, 78.0, 90.0, 92.0)
    mountain = Rectangle(80.0, 30.0, 150.0, 80.0)
    lake = Rectangle(10.0, 5.0, 70.0, 25.0)
    house = Rectangle(30.0, 30.0, 55.0, 50.0)
    tree_one = Rectangle(60.0, 28.0, 72.0, 55.0)
    tree_two = Rectangle(5.0, 30.0, 17.0, 52.0)
    bird = Rectangle(95.0, 85.0, 102.0, 90.0)
    if variant and variant % 3 == 0:
        sun = Rectangle(55.0, 80.0, 75.0, 98.0)
    objects: _Objects = []
    for label, mbr in [
        ("sun", sun),
        ("cloud", cloud),
        ("mountain", mountain),
        ("lake", lake),
        ("house", house),
        ("tree", tree_one),
        ("tree", tree_two),
        ("bird", bird),
    ]:
        shifted = _shift(mbr, _jitter(rng, amount), _jitter(rng, amount), width, height)
        objects.append((label, shifted))
    return SymbolicPicture.build(
        width=width, height=height, objects=objects, name=name or f"landscape-{variant:03d}"
    )
