"""Synthetic workloads.

The paper's demonstration system used an in-house image collection that was
never published, so the reproduction generates synthetic symbolic scenes that
exercise the same code paths (icons + MBRs in, BE-strings and rankings out):

* :mod:`~repro.datasets.synthetic` -- seeded random scene generators,
  including the aligned / staircase layouts used for best- and worst-case
  storage experiments.
* :mod:`~repro.datasets.scenes` -- deterministic themed scenes (office,
  traffic, landscape) built from the icon vocabularies, used by the examples.
* :mod:`~repro.datasets.transforms_gen` -- transformed, perturbed, partial and
  scrambled variants of a base scene.
* :mod:`~repro.datasets.corpus` -- labelled corpora with relevance ground
  truth for the retrieval-quality experiments (E5, E6, E9).
"""

from repro.datasets.corpus import Corpus, planted_retrieval_corpus, transformation_corpus
from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.datasets.synthetic import (
    SceneParameters,
    aligned_picture,
    random_picture,
    random_pictures,
    staircase_picture,
)
from repro.datasets.transforms_gen import (
    partial_variant,
    perturbed_variant,
    scrambled_variant,
    transformed_variants,
)

__all__ = [
    "Corpus",
    "planted_retrieval_corpus",
    "transformation_corpus",
    "landscape_scene",
    "office_scene",
    "traffic_scene",
    "SceneParameters",
    "aligned_picture",
    "random_picture",
    "random_pictures",
    "staircase_picture",
    "partial_variant",
    "perturbed_variant",
    "scrambled_variant",
    "transformed_variants",
]
