"""Labelled retrieval corpora with relevance ground truth.

A :class:`Corpus` is a list of database pictures, a list of query pictures,
and for each query the set of database image ids considered relevant.  Two
builders produce the corpora the quality experiments need:

* :func:`planted_retrieval_corpus` (E5, E9) -- for each of a set of base
  scenes, the corpus contains the scene itself, a perturbed copy and a partial
  copy (all relevant to that scene's query), a scrambled copy and unrelated
  random scenes (not relevant).  Queries are partial views of each base scene,
  reproducing the paper's "query targets and/or spatial relationships are not
  certain" setting.
* :func:`transformation_corpus` (E6) -- each base scene is planted in exactly
  one transformed orientation among distractors; the query is the original
  scene and the transformed copy is its only relevant image.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.transforms import Transformation
from repro.datasets.scenes import landscape_scene, office_scene, traffic_scene
from repro.datasets.synthetic import SceneParameters, random_picture
from repro.datasets.transforms_gen import (
    partial_variant,
    perturbed_variant,
    scrambled_variant,
    transformed_variants,
)
from repro.iconic.picture import SymbolicPicture


@dataclass
class Corpus:
    """Database pictures, query pictures and per-query relevance sets."""

    name: str
    database_pictures: List[SymbolicPicture] = field(default_factory=list)
    queries: List[SymbolicPicture] = field(default_factory=list)
    relevance: Dict[str, Set[str]] = field(default_factory=dict)

    def relevant_to(self, query_name: str) -> Set[str]:
        """Ids of the database images relevant to ``query_name``."""
        return set(self.relevance.get(query_name, set()))

    @property
    def database_ids(self) -> List[str]:
        """Names of all database pictures."""
        return [picture.name for picture in self.database_pictures]

    def validate(self) -> None:
        """Check that every relevance entry points at existing pictures."""
        database_ids = set(self.database_ids)
        query_ids = {query.name for query in self.queries}
        for query_name, relevant in self.relevance.items():
            if query_name not in query_ids:
                raise ValueError(f"relevance refers to unknown query {query_name!r}")
            missing = relevant - database_ids
            if missing:
                raise ValueError(
                    f"relevance of query {query_name!r} refers to unknown images "
                    f"{sorted(missing)}"
                )

    def summary(self) -> Dict[str, int]:
        """Sizes used in benchmark reports."""
        return {
            "database_images": len(self.database_pictures),
            "queries": len(self.queries),
            "relevant_pairs": sum(len(value) for value in self.relevance.values()),
        }


_BASE_SCENES = (office_scene, traffic_scene, landscape_scene)


def _base_scene(index: int, variant: int = 0) -> SymbolicPicture:
    builder = _BASE_SCENES[index % len(_BASE_SCENES)]
    scene = builder(variant=variant)
    return scene.renamed(f"{scene.name}-base{index:02d}")


def planted_retrieval_corpus(
    seed: int = 0,
    base_scene_count: int = 3,
    distractors_per_scene: int = 6,
    query_keep_fraction: float = 0.6,
    distractor_parameters: Optional[SceneParameters] = None,
) -> Corpus:
    """Corpus with planted full, perturbed, partial and scrambled copies.

    For base scene ``i`` the database receives:

    * the scene itself (relevant),
    * a perturbed copy (relevant),
    * a partial copy containing roughly 75% of the icons (relevant),
    * a scrambled copy -- same icons, random layout (NOT relevant), and
    * ``distractors_per_scene`` unrelated random scenes (NOT relevant).

    The query for scene ``i`` keeps ``query_keep_fraction`` of its icons, so
    both the query and some relevant images are partial -- the exact setting
    the paper's LCS evaluation is designed for.
    """
    if not (0.0 < query_keep_fraction <= 1.0):
        raise ValueError("query_keep_fraction must lie in (0, 1]")
    rng = random.Random(seed)
    corpus = Corpus(name=f"planted-{base_scene_count}x{distractors_per_scene}")
    distractor_parameters = distractor_parameters or SceneParameters(object_count=8)
    for index in range(base_scene_count):
        base = _base_scene(index)
        perturbed = perturbed_variant(base, seed=rng.randint(0, 2**31), amount=0.04)
        partial_keep = max(2, int(round(len(base) * 0.75)))
        partial = partial_variant(base, keep=partial_keep, seed=rng.randint(0, 2**31))
        scrambled = scrambled_variant(base, seed=rng.randint(0, 2**31))
        corpus.database_pictures.extend([base, perturbed, partial, scrambled])
        relevant = {base.name, perturbed.name, partial.name}
        for distractor_index in range(distractors_per_scene):
            distractor = random_picture(
                rng,
                distractor_parameters,
                name=f"distractor-{index:02d}-{distractor_index:02d}",
            )
            corpus.database_pictures.append(distractor)
        query_keep = max(2, int(round(len(base) * query_keep_fraction)))
        query = partial_variant(
            base, keep=query_keep, seed=rng.randint(0, 2**31), name=f"query-{index:02d}"
        )
        corpus.queries.append(query)
        corpus.relevance[query.name] = relevant
    corpus.validate()
    return corpus


def transformation_corpus(
    seed: int = 0,
    base_scene_count: int = 6,
    distractors_per_scene: int = 4,
    transformations: Sequence[Transformation] = (
        Transformation.ROTATE_90,
        Transformation.ROTATE_180,
        Transformation.ROTATE_270,
        Transformation.REFLECT_X,
        Transformation.REFLECT_Y,
    ),
    distractor_parameters: Optional[SceneParameters] = None,
) -> Corpus:
    """Corpus in which each relevant image is a *transformed* copy of its query.

    Scene ``i`` is planted only as transformation ``transformations[i % k]``;
    the query is the untransformed scene.  A retrieval method that cannot
    search over rotations/reflections scores near zero here, while the paper's
    string-reversal retrieval recovers every planted copy.
    """
    rng = random.Random(seed)
    corpus = Corpus(name=f"transformed-{base_scene_count}x{distractors_per_scene}")
    distractor_parameters = distractor_parameters or SceneParameters(object_count=8)
    for index in range(base_scene_count):
        base = _base_scene(index, variant=index)
        transformation = transformations[index % len(transformations)]
        planted = transformed_variants(base, include=(transformation,))[transformation]
        corpus.database_pictures.append(planted)
        for distractor_index in range(distractors_per_scene):
            distractor = random_picture(
                rng,
                distractor_parameters,
                name=f"distractor-{index:02d}-{distractor_index:02d}",
            )
            corpus.database_pictures.append(distractor)
        query = base.renamed(f"query-{index:02d}")
        corpus.queries.append(query)
        corpus.relevance[query.name] = {planted.name}
    corpus.validate()
    return corpus
