"""Seeded random scene generators.

All generators take an explicit seed (or a ``random.Random`` instance) so that
tests and benchmarks are reproducible run to run.  Three layout families cover
the regimes the paper's complexity claims distinguish:

* :func:`random_picture` -- independent random MBRs with a configurable
  probability of boundary alignment (alignment creates the coincident
  projections where the BE-string saves dummies and the B-string spends ``=``
  operators);
* :func:`aligned_picture` -- a tiling whose boundaries all coincide with grid
  lines (the BE-string's best case);
* :func:`staircase_picture` -- a chain of partially overlapping objects (the
  C-string's quadratic-cut worst case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture

#: Default label pool when the caller does not supply one: generic icon names.
DEFAULT_LABELS: Tuple[str, ...] = tuple(f"icon{index:02d}" for index in range(40))

RandomSource = Union[int, random.Random, None]


def _rng(seed: RandomSource) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


@dataclass(frozen=True)
class SceneParameters:
    """Parameters of the random scene generator."""

    width: float = 100.0
    height: float = 100.0
    object_count: int = 8
    minimum_size: float = 4.0
    maximum_size: float = 30.0
    #: Probability that each generated boundary snaps to an integer grid line,
    #: which creates coincident projections across objects.
    alignment_probability: float = 0.25
    #: Grid pitch used when snapping boundaries.
    grid: float = 10.0
    labels: Tuple[str, ...] = DEFAULT_LABELS
    #: How labels are assigned to the generated objects: ``"cyclic"`` walks the
    #: label pool in order (every scene of the same size uses the same label
    #: multiset), ``"random"`` samples labels independently per object (scenes
    #: share only some labels -- the regime where label-based candidate
    #: filtering has something to prune).
    label_choice: str = "cyclic"

    def __post_init__(self) -> None:
        if self.object_count < 0:
            raise ValueError("object_count must be non-negative")
        if self.minimum_size <= 0 or self.maximum_size < self.minimum_size:
            raise ValueError("sizes must satisfy 0 < minimum_size <= maximum_size")
        if not (0.0 <= self.alignment_probability <= 1.0):
            raise ValueError("alignment_probability must lie in [0, 1]")
        if self.maximum_size > min(self.width, self.height):
            raise ValueError("maximum_size must fit inside the frame")
        if self.object_count > 0 and not self.labels:
            raise ValueError("at least one label is required")
        if self.label_choice not in ("cyclic", "random"):
            raise ValueError("label_choice must be 'cyclic' or 'random'")


def _maybe_snap(value: float, parameters: SceneParameters, rng: random.Random) -> float:
    if rng.random() < parameters.alignment_probability:
        return round(value / parameters.grid) * parameters.grid
    return round(value, 2)


def random_picture(
    seed: RandomSource = 0,
    parameters: Optional[SceneParameters] = None,
    name: str = "",
) -> SymbolicPicture:
    """Generate one random scene."""
    parameters = parameters or SceneParameters()
    rng = _rng(seed)
    objects: List[Tuple[str, Rectangle]] = []
    for index in range(parameters.object_count):
        if parameters.label_choice == "random":
            label = rng.choice(parameters.labels)
        else:
            label = parameters.labels[index % len(parameters.labels)]
        width = rng.uniform(parameters.minimum_size, parameters.maximum_size)
        height = rng.uniform(parameters.minimum_size, parameters.maximum_size)
        x_begin = rng.uniform(0.0, parameters.width - width)
        y_begin = rng.uniform(0.0, parameters.height - height)
        x_begin = _maybe_snap(x_begin, parameters, rng)
        y_begin = _maybe_snap(y_begin, parameters, rng)
        x_end = _maybe_snap(min(parameters.width, x_begin + width), parameters, rng)
        y_end = _maybe_snap(min(parameters.height, y_begin + height), parameters, rng)
        x_end = max(x_end, x_begin + 1.0)
        y_end = max(y_end, y_begin + 1.0)
        x_end = min(x_end, parameters.width)
        y_end = min(y_end, parameters.height)
        x_begin = min(x_begin, x_end - 0.5) if x_end - 0.5 > 0 else x_begin
        y_begin = min(y_begin, y_end - 0.5) if y_end - 0.5 > 0 else y_begin
        x_begin = max(0.0, x_begin)
        y_begin = max(0.0, y_begin)
        objects.append((label, Rectangle(x_begin, y_begin, x_end, y_end)))
    return SymbolicPicture.build(
        width=parameters.width,
        height=parameters.height,
        objects=objects,
        name=name or f"random-{parameters.object_count}",
    )


def random_pictures(
    count: int,
    seed: RandomSource = 0,
    parameters: Optional[SceneParameters] = None,
    name_prefix: str = "image",
) -> List[SymbolicPicture]:
    """Generate a list of random scenes with distinct names."""
    rng = _rng(seed)
    parameters = parameters or SceneParameters()
    return [
        random_picture(rng, parameters, name=f"{name_prefix}-{index:04d}")
        for index in range(count)
    ]


def aligned_picture(
    object_count: int,
    width: float = 100.0,
    height: float = 100.0,
    labels: Sequence[str] = DEFAULT_LABELS,
    name: str = "",
) -> SymbolicPicture:
    """A tiling whose boundaries all coincide: the BE-string's best case.

    Objects are laid out in a row of equal-width tiles spanning the full
    height, so consecutive x-boundaries coincide pairwise and the y-boundaries
    all coincide with the frame edges: no dummy object is ever needed.
    """
    if object_count < 1:
        raise ValueError("aligned_picture needs at least one object")
    tile_width = width / object_count
    objects: List[Tuple[str, Rectangle]] = []
    for index in range(object_count):
        label = labels[index % len(labels)]
        x_begin = index * tile_width
        x_end = width if index == object_count - 1 else (index + 1) * tile_width
        objects.append((label, Rectangle(x_begin, 0.0, x_end, height)))
    return SymbolicPicture.build(
        width=width, height=height, objects=objects, name=name or f"aligned-{object_count}"
    )


def stacked_picture(
    object_count: int,
    width: float = 100.0,
    height: float = 100.0,
    labels: Sequence[str] = DEFAULT_LABELS,
    name: str = "",
) -> SymbolicPicture:
    """Objects all spanning the entire frame: the BE-string's best case.

    Every begin boundary projects to the image origin and every end boundary
    to the image extent, so each axis needs only the ``2n`` boundary symbols
    plus a single dummy between the begin and end groups -- the paper's
    ``2n + 1`` best-case storage.
    """
    if object_count < 1:
        raise ValueError("stacked_picture needs at least one object")
    objects: List[Tuple[str, Rectangle]] = [
        (labels[index % len(labels)], Rectangle(0.0, 0.0, width, height))
        for index in range(object_count)
    ]
    return SymbolicPicture.build(
        width=width, height=height, objects=objects, name=name or f"stacked-{object_count}"
    )


def staircase_picture(
    object_count: int,
    width: float = 100.0,
    height: float = 100.0,
    labels: Sequence[str] = DEFAULT_LABELS,
    name: str = "",
) -> SymbolicPicture:
    """A chain of partially overlapping objects: the C-string's worst case.

    Object ``i`` spans from ``i * step`` to the right edge of the frame on
    both axes, so every earlier object's end boundary falls inside every later
    object, producing O(n^2) C-string cuts while the BE-string still needs
    only O(n) symbols.
    """
    if object_count < 1:
        raise ValueError("staircase_picture needs at least one object")
    step_x = width / (object_count + 1)
    step_y = height / (object_count + 1)
    objects: List[Tuple[str, Rectangle]] = []
    for index in range(object_count):
        label = labels[index % len(labels)]
        objects.append(
            (
                label,
                Rectangle(
                    index * step_x,
                    index * step_y,
                    width - (object_count - index - 1) * step_x * 0.5,
                    height - (object_count - index - 1) * step_y * 0.5,
                ),
            )
        )
    return SymbolicPicture.build(
        width=width,
        height=height,
        objects=objects,
        name=name or f"staircase-{object_count}",
    )


def distinct_boundaries_picture(
    object_count: int,
    width: float = 1000.0,
    height: float = 1000.0,
    labels: Sequence[str] = DEFAULT_LABELS,
    name: str = "",
) -> SymbolicPicture:
    """Disjoint objects with all-distinct projections and free space at edges.

    This is the BE-string's worst case: every gap needs a dummy, giving the
    full ``4n + 1`` symbols per axis.
    """
    if object_count < 1:
        raise ValueError("distinct_boundaries_picture needs at least one object")
    slot_x = width / (2 * object_count + 1)
    slot_y = height / (2 * object_count + 1)
    objects: List[Tuple[str, Rectangle]] = []
    for index in range(object_count):
        label = labels[index % len(labels)]
        x_begin = (2 * index + 0.5) * slot_x
        y_begin = (2 * index + 0.5) * slot_y
        objects.append(
            (label, Rectangle(x_begin, y_begin, x_begin + slot_x, y_begin + slot_y))
        )
    return SymbolicPicture.build(
        width=width,
        height=height,
        objects=objects,
        name=name or f"distinct-{object_count}",
    )
