"""Reproduction of "Image Indexing and Similarity Retrieval Based on A New
Spatial Relation Model" (Ying-Hong Wang, ICDCS 2001 workshops).

The package implements the 2D BE-string spatial-relation model, its
construction and modified-LCS similarity algorithms, the 2-D string family
baselines it is compared against, and an image database / retrieval system
built on top -- see DESIGN.md for the system inventory and EXPERIMENTS.md for
the reproduced results.

Typical usage::

    from repro import SymbolicPicture, Rectangle, RetrievalSystem, encode_picture

    picture = SymbolicPicture.build(
        width=100, height=100,
        objects=[("car", Rectangle(10, 10, 40, 30)), ("tree", Rectangle(60, 20, 80, 70))],
        name="street",
    )
    bestring = encode_picture(picture)
    system = RetrievalSystem.from_pictures([picture])
    results = system.query(picture).limit(5).execute()
"""

from repro.core import (
    AxisBEString,
    BEString2D,
    SimilarityPolicy,
    SimilarityResult,
    Transformation,
    encode_picture,
    similarity,
    similarity_between_pictures,
)
from repro.geometry import Interval, Point, Rectangle
from repro.iconic import IconObject, IconVocabulary, LabeledRaster, SymbolicPicture
from repro.index import ImageDatabase, Query, QueryEngine, QuerySpec
from repro.retrieval import QueryBuilder, ResultSet, RetrievalSystem

__version__ = "1.0.0"

__all__ = [
    "AxisBEString",
    "BEString2D",
    "SimilarityPolicy",
    "SimilarityResult",
    "Transformation",
    "encode_picture",
    "similarity",
    "similarity_between_pictures",
    "Interval",
    "Point",
    "Rectangle",
    "IconObject",
    "IconVocabulary",
    "LabeledRaster",
    "SymbolicPicture",
    "ImageDatabase",
    "Query",
    "QueryEngine",
    "QuerySpec",
    "QueryBuilder",
    "ResultSet",
    "RetrievalSystem",
    "__version__",
]
