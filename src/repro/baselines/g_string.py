"""The 2D G-string (Chang, Jungert & Li 1988).

The G-string extends the 2-D string with two operator sets (local relations
``R_l`` for partial overlap, global relations ``R_g`` for disjoint/adjoining/
same-position) and cuts every object at every MBR boundary so that only the
global operators are needed between the resulting sub-objects.  Its cost is
the number of sub-objects: every boundary inside an object produces a cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.cutting import CutSegment, g_string_cuts, ordered_segment_symbols
from repro.geometry.interval import Interval
from repro.iconic.picture import SymbolicPicture


@dataclass(frozen=True)
class AxisGString:
    """One axis of a G-string: the cut sub-objects in projection order."""

    segments: Tuple[CutSegment, ...]

    @property
    def symbols(self) -> List[str]:
        """Sub-object symbols in projection order."""
        return [symbol for _, symbol in ordered_segment_symbols(self.segments)]

    @property
    def segment_count(self) -> int:
        """Number of sub-objects on this axis."""
        return len(self.segments)

    @property
    def storage_units(self) -> int:
        """Sub-object symbols plus one global operator between consecutive ones."""
        count = len(self.segments)
        return count + max(0, count - 1)

    def to_text(self) -> str:
        """Linear text form of the axis string."""
        return " < ".join(self.symbols)


@dataclass(frozen=True)
class GString2D:
    """The 2D G-string of a picture: one cut axis string per dimension."""

    x: AxisGString
    y: AxisGString
    name: str = ""

    @property
    def storage_units(self) -> int:
        """Total storage units across both axes (benchmark E2's measure)."""
        return self.x.storage_units + self.y.storage_units

    @property
    def total_segments(self) -> int:
        """Total number of sub-objects across both axes."""
        return self.x.segment_count + self.y.segment_count

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x.to_text()}, {self.y.to_text()})"


def encode_g_string(picture: SymbolicPicture) -> GString2D:
    """Encode a symbolic picture as a 2D G-string."""
    x_projections: Dict[str, Interval] = {
        icon.identifier: icon.mbr.x_interval for icon in picture.icons
    }
    y_projections: Dict[str, Interval] = {
        icon.identifier: icon.mbr.y_interval for icon in picture.icons
    }
    return GString2D(
        x=AxisGString(tuple(g_string_cuts(x_projections))),
        y=AxisGString(tuple(g_string_cuts(y_projections))),
        name=picture.name,
    )
