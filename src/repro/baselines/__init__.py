"""Baselines: the 2-D string family the paper compares against.

Section 2 of the paper reviews four prior representations and their shared
similarity machinery; all of them are implemented here so the benchmarks can
reproduce the comparisons:

* :mod:`~repro.baselines.twod_string` -- Chang et al.'s original 2-D strings
  (symbolic projection with ``<``/``=`` operators).
* :mod:`~repro.baselines.g_string` -- the 2D G-string, which cuts every object
  at every MBR boundary crossing it.
* :mod:`~repro.baselines.c_string` -- the 2D C-string, which minimises cutting
  but still produces O(n^2) cut objects in the worst case.
* :mod:`~repro.baselines.b_string` -- the 2D B-string, which drops cutting and
  keeps begin/end symbols joined by the ``=`` operator.
* :mod:`~repro.baselines.type_similarity` + :mod:`~repro.baselines.clique` --
  the type-0/1/2 similarity used by all of the above: build a pairwise
  relation compatibility graph and find its maximum complete subgraph.
* :mod:`~repro.baselines.lcs_plain` -- the textbook LCS and an explicit
  "dummy-aware" variant, ablations of the paper's two LCS modifications.
"""

from repro.baselines.b_string import BString2D, encode_b_string
from repro.baselines.c_string import CString2D, encode_c_string
from repro.baselines.clique import greedy_clique, maximum_clique
from repro.baselines.cutting import cut_interval, g_string_cuts, c_string_cuts
from repro.baselines.g_string import GString2D, encode_g_string
from repro.baselines.lcs_plain import classic_lcs_length, classic_lcs_string, dummy_aware_lcs_length
from repro.baselines.twod_string import TwoDString, encode_2d_string
from repro.baselines.type_similarity import (
    SimilarityType,
    type_similarity,
    type_similarity_all,
)

__all__ = [
    "BString2D",
    "encode_b_string",
    "CString2D",
    "encode_c_string",
    "greedy_clique",
    "maximum_clique",
    "cut_interval",
    "g_string_cuts",
    "c_string_cuts",
    "GString2D",
    "encode_g_string",
    "classic_lcs_length",
    "classic_lcs_string",
    "dummy_aware_lcs_length",
    "TwoDString",
    "encode_2d_string",
    "SimilarityType",
    "type_similarity",
    "type_similarity_all",
]
