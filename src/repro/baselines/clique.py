"""Maximum complete subgraph (maximum clique) search.

The 2-D string family's type-0/1/2 similarity reduces to finding the maximum
complete subgraph of a compatibility graph -- an NP-complete problem, which is
exactly the cost the paper's LCS-based evaluation avoids.  Benchmark E4
measures this cost directly, so the implementation is an exact
branch-and-bound (Bron--Kerbosch with pivoting, tracking the best clique) plus
a cheap greedy heuristic for comparison.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Set, Tuple

#: A graph is an adjacency mapping ``vertex -> set of neighbours``.
Graph = Dict[Hashable, Set[Hashable]]


def build_graph(vertices: Iterable[Hashable], edges: Iterable[Tuple[Hashable, Hashable]]) -> Graph:
    """Build an undirected adjacency mapping from vertices and edge pairs."""
    graph: Graph = {vertex: set() for vertex in vertices}
    for first, second in edges:
        if first == second:
            continue
        if first not in graph or second not in graph:
            raise ValueError(f"edge ({first!r}, {second!r}) references an unknown vertex")
        graph[first].add(second)
        graph[second].add(first)
    return graph


def maximum_clique(graph: Graph) -> FrozenSet[Hashable]:
    """Exact maximum clique via Bron--Kerbosch with pivoting.

    Exponential in the worst case -- intentionally so, since this is the
    baseline cost the paper's O(mn) LCS evaluation is compared against.
    """
    best: Set[Hashable] = set()

    def expand(candidate: Set[Hashable], allowed: Set[Hashable], excluded: Set[Hashable]) -> None:
        nonlocal best
        if not allowed and not excluded:
            if len(candidate) > len(best):
                best = set(candidate)
            return
        if len(candidate) + len(allowed) <= len(best):
            return  # bound: cannot beat the best clique found so far
        pivot_pool = allowed | excluded
        pivot = max(pivot_pool, key=lambda vertex: len(graph[vertex] & allowed))
        for vertex in list(allowed - graph[pivot]):
            neighbours = graph[vertex]
            expand(candidate | {vertex}, allowed & neighbours, excluded & neighbours)
            allowed.remove(vertex)
            excluded.add(vertex)

    expand(set(), set(graph), set())
    return frozenset(best)


def greedy_clique(graph: Graph) -> FrozenSet[Hashable]:
    """Greedy heuristic clique: repeatedly add the highest-degree compatible vertex.

    Used only as a fast lower bound / comparison point; the baselines' actual
    similarity definition requires the exact maximum.
    """
    clique: Set[Hashable] = set()
    candidates = sorted(graph, key=lambda vertex: len(graph[vertex]), reverse=True)
    for vertex in candidates:
        if all(vertex in graph[member] for member in clique):
            clique.add(vertex)
    return frozenset(clique)


def clique_number(graph: Graph) -> int:
    """Size of the maximum clique."""
    return len(maximum_clique(graph))
