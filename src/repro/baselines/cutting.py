"""Object cutting, the substrate of the 2D G-string and 2D C-string.

The G-string "cuts all the objects along their MBR boundaries": every object's
projection is segmented at every other object's boundary that falls strictly
inside it.  The C-string minimises cutting by keeping the *leading* object of
each partly-overlapping pair whole and cutting only the follower at the
leader's end boundary -- which still degenerates to O(n^2) cut objects in the
worst case, the observation that motivates the paper's cut-free model.

The functions here work on one axis at a time (interval projections); the
G-/C-string encoders apply them to both axes and count the resulting
sub-object symbols, which is the storage measure benchmark E2 compares against
the BE-string's ``2n .. 4n+1`` symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.geometry.interval import Interval


@dataclass(frozen=True)
class CutSegment:
    """One sub-object produced by cutting: owner identifier plus its sub-interval."""

    identifier: str
    piece: int
    interval: Interval

    @property
    def symbol(self) -> str:
        """Symbol of the sub-object, e.g. ``A[0]``, ``A[1]``."""
        return f"{self.identifier}[{self.piece}]"


def cut_interval(interval: Interval, cut_points: Iterable[float]) -> List[Interval]:
    """Split an interval at every cut point strictly inside it."""
    interior = sorted(
        {point for point in cut_points if interval.begin < point < interval.end}
    )
    if not interior:
        return [interval]
    segments: List[Interval] = []
    previous = interval.begin
    for point in interior:
        segments.append(Interval(previous, point))
        previous = point
    segments.append(Interval(previous, interval.end))
    return segments


def g_string_cuts(projections: Dict[str, Interval]) -> List[CutSegment]:
    """G-string cutting: every object is cut at every boundary inside it."""
    all_boundaries: Set[float] = set()
    for interval in projections.values():
        all_boundaries.add(interval.begin)
        all_boundaries.add(interval.end)
    segments: List[CutSegment] = []
    for identifier in sorted(projections):
        pieces = cut_interval(projections[identifier], all_boundaries)
        segments.extend(
            CutSegment(identifier=identifier, piece=index, interval=piece)
            for index, piece in enumerate(pieces)
        )
    return segments


def c_string_cuts(projections: Dict[str, Interval]) -> List[CutSegment]:
    """C-string (minimal) cutting.

    Objects are processed in order of their begin boundary.  When a leading
    object's end boundary falls strictly inside a later-beginning object (the
    pair partially overlaps), the follower is cut at that end boundary; the
    leader itself is never cut by the follower.  Containment does not trigger
    a cut.  This reproduces the behaviour that matters for the paper's
    comparison: far fewer cuts than the G-string on typical scenes, but a
    quadratic number of sub-objects when many objects overlap in a staircase
    pattern.
    """
    ordered = sorted(projections.items(), key=lambda item: (item[1].begin, item[0]))
    cut_points: Dict[str, Set[float]] = {identifier: set() for identifier in projections}
    for index, (leader_id, leader) in enumerate(ordered):
        for follower_id, follower in ordered[index + 1 :]:
            if follower.begin >= leader.end:
                break  # later objects begin even further right; no overlap
            # follower begins inside the leader; a *partial* overlap cuts the
            # follower at the leader's end boundary.
            if leader.end < follower.end:
                cut_points[follower_id].add(leader.end)
    segments: List[CutSegment] = []
    for identifier in sorted(projections):
        pieces = cut_interval(projections[identifier], cut_points[identifier])
        segments.extend(
            CutSegment(identifier=identifier, piece=index, interval=piece)
            for index, piece in enumerate(pieces)
        )
    return segments


def segment_count(segments: Sequence[CutSegment]) -> int:
    """Number of sub-objects produced by a cutting."""
    return len(segments)


def segments_per_object(segments: Sequence[CutSegment]) -> Dict[str, int]:
    """How many pieces each object was cut into."""
    counts: Dict[str, int] = {}
    for segment in segments:
        counts[segment.identifier] = counts.get(segment.identifier, 0) + 1
    return counts


def ordered_segment_symbols(segments: Sequence[CutSegment]) -> List[Tuple[float, str]]:
    """Sub-object symbols sorted by their begin boundary (projection order)."""
    return sorted(
        ((segment.interval.begin, segment.symbol) for segment in segments),
        key=lambda item: (item[0], item[1]),
    )
