"""Textbook LCS and an explicit dummy-aware variant (ablations for E4).

The paper modifies the CLRS LCS algorithm in two ways: dummy suppression via
sign-encoded table cells, and omission of the path matrix.  To quantify what
those modifications buy (and to check they do not change the scores), this
module provides:

* :func:`classic_lcs_length` / :func:`classic_lcs_string` -- the unmodified
  textbook algorithm with an explicit direction matrix, and
* :func:`dummy_aware_lcs_length` -- the same dummy-suppression semantics as the
  paper's Algorithm 2 but implemented with a separate boolean
  "ends-with-dummy" table instead of sign encoding.  Its result must equal
  :func:`repro.core.lcs.be_lcs_length` on every input (property-tested), which
  validates the paper's more compact formulation.
"""

from __future__ import annotations

from typing import List

from repro.core.bestring import AxisBEString
from repro.core.symbols import Symbol


def classic_lcs_length(query: AxisBEString, database: AxisBEString) -> int:
    """Length of the unmodified (dummy-oblivious) LCS of two axis strings."""
    q = query.symbols
    d = database.symbols
    previous = [0] * (len(d) + 1)
    for i in range(1, len(q) + 1):
        current = [0] * (len(d) + 1)
        q_symbol = q[i - 1]
        for j in range(1, len(d) + 1):
            if q_symbol == d[j - 1]:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[len(d)]


def classic_lcs_string(query: AxisBEString, database: AxisBEString) -> AxisBEString:
    """The unmodified LCS string, reconstructed via an explicit path matrix."""
    q = query.symbols
    d = database.symbols
    m, n = len(q), len(d)
    lengths = [[0] * (n + 1) for _ in range(m + 1)]
    # Direction codes: 1 = diagonal (match), 2 = up, 3 = left.
    directions = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            if q[i - 1] == d[j - 1]:
                lengths[i][j] = lengths[i - 1][j - 1] + 1
                directions[i][j] = 1
            elif lengths[i - 1][j] >= lengths[i][j - 1]:
                lengths[i][j] = lengths[i - 1][j]
                directions[i][j] = 2
            else:
                lengths[i][j] = lengths[i][j - 1]
                directions[i][j] = 3
    symbols: List[Symbol] = []
    i, j = m, n
    while i > 0 and j > 0:
        direction = directions[i][j]
        if direction == 1:
            symbols.append(q[i - 1])
            i -= 1
            j -= 1
        elif direction == 2:
            i -= 1
        else:
            j -= 1
    symbols.reverse()
    return AxisBEString(tuple(symbols))


def dummy_aware_lcs_length(query: AxisBEString, database: AxisBEString) -> int:
    """Dummy-suppressed LCS length with an explicit "ends with dummy" table.

    Semantically identical to the paper's Algorithm 2 but stores the
    ends-with-dummy flag in a parallel boolean table rather than in the sign
    of the length.  Used to cross-validate the sign-encoded formulation and to
    measure its constant-factor benefit in benchmark E4.
    """
    q = query.symbols
    d = database.symbols
    m, n = len(q), len(d)
    lengths = [[0] * (n + 1) for _ in range(m + 1)]
    ends_with_dummy = [[False] * (n + 1) for _ in range(m + 1)]
    for i in range(1, m + 1):
        q_symbol = q[i - 1]
        q_is_dummy = q_symbol.is_dummy
        for j in range(1, n + 1):
            if lengths[i - 1][j] >= lengths[i][j - 1]:
                best_length = lengths[i - 1][j]
                best_dummy = ends_with_dummy[i - 1][j]
            else:
                best_length = lengths[i][j - 1]
                best_dummy = ends_with_dummy[i][j - 1]
            if q_symbol == d[j - 1] and (not q_is_dummy or not ends_with_dummy[i - 1][j - 1]):
                diagonal = lengths[i - 1][j - 1] + 1
                if diagonal > best_length:
                    best_length = diagonal
                    best_dummy = q_is_dummy
            lengths[i][j] = best_length
            ends_with_dummy[i][j] = best_dummy
    return lengths[m][n]
