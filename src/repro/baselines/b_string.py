"""The 2D B-string (Lee, Yang & Chen 1992).

The B-string drops cutting entirely: each object contributes its begin and end
boundary symbols, and the single spatial operator ``=`` marks two boundaries
whose projections are *identical*.  The paper's 2D BE-string is the dual: it
marks *distinct* projections with a dummy object and needs no operator at all.

Because the two models carry the same ordinal information, the B-string is the
closest baseline; the reproduction provides it both for the storage comparison
(E2) and as the representation the clique-based type-i similarity baseline
(E4/E9) runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.symbols import BoundaryKind
from repro.iconic.picture import SymbolicPicture


@dataclass(frozen=True)
class BBoundary:
    """One boundary symbol of a B-string axis."""

    identifier: str
    kind: BoundaryKind

    @property
    def symbol(self) -> str:
        """Text symbol, e.g. ``A.b`` / ``A.e``."""
        return f"{self.identifier}.{self.kind.value}"


@dataclass(frozen=True)
class AxisBString:
    """One axis of a 2D B-string: boundary symbols joined by optional ``=``.

    ``operators[i]`` is ``"="`` when boundaries ``i`` and ``i + 1`` project to
    the same coordinate and ``""`` (no operator) otherwise.
    """

    boundaries: Tuple[BBoundary, ...]
    operators: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.boundaries and len(self.operators) != len(self.boundaries) - 1:
            raise ValueError("a B-string needs one operator slot between boundaries")

    @property
    def storage_units(self) -> int:
        """Boundary symbols plus explicit ``=`` operators (benchmark E2)."""
        return len(self.boundaries) + sum(1 for operator in self.operators if operator == "=")

    def to_text(self) -> str:
        """Linear text form, e.g. ``"A.b A.e = C.b B.b"``."""
        if not self.boundaries:
            return ""
        parts: List[str] = [self.boundaries[0].symbol]
        for operator, boundary in zip(self.operators, self.boundaries[1:]):
            if operator:
                parts.append(operator)
            parts.append(boundary.symbol)
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


@dataclass(frozen=True)
class BString2D:
    """The 2D B-string of a picture."""

    x: AxisBString
    y: AxisBString
    name: str = ""

    @property
    def storage_units(self) -> int:
        """Total storage units across both axes."""
        return self.x.storage_units + self.y.storage_units

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x.to_text()}, {self.y.to_text()})"


def _axis_b_string(records: Sequence[Tuple[float, str, BoundaryKind]]) -> AxisBString:
    ordered = sorted(
        records, key=lambda record: (record[0], record[1], record[2] is BoundaryKind.END)
    )
    boundaries = tuple(
        BBoundary(identifier=identifier, kind=kind) for _, identifier, kind in ordered
    )
    operators = tuple(
        "=" if left[0] == right[0] else ""
        for left, right in zip(ordered, ordered[1:])
    )
    return AxisBString(boundaries=boundaries, operators=operators)


def encode_b_string(picture: SymbolicPicture) -> BString2D:
    """Encode a symbolic picture as a 2D B-string."""
    x_records: List[Tuple[float, str, BoundaryKind]] = []
    y_records: List[Tuple[float, str, BoundaryKind]] = []
    for icon in picture.icons:
        identifier = icon.identifier
        x_records.append((icon.mbr.x_begin, identifier, BoundaryKind.BEGIN))
        x_records.append((icon.mbr.x_end, identifier, BoundaryKind.END))
        y_records.append((icon.mbr.y_begin, identifier, BoundaryKind.BEGIN))
        y_records.append((icon.mbr.y_end, identifier, BoundaryKind.END))
    return BString2D(
        x=_axis_b_string(x_records), y=_axis_b_string(y_records), name=picture.name
    )
