"""Type-0 / type-1 / type-2 similarity of the 2-D string family.

Section 2 of the paper describes the shared similarity machinery of 2-D
strings, 2D G-, C- and B-strings:

1. define three nested similarity types (type-2 stricter than type-1 stricter
   than type-0);
2. examine every pair of objects common to the query image and the database
   image and connect the pair in a "type-i graph" when its spatial
   relationship satisfies the type-i condition in both images;
3. the similarity is the number of objects in the **maximum complete
   subgraph** of that graph.

Enumerating the pairs is O(n^2) and the clique step is NP-complete -- the cost
the paper's LCS evaluation replaces.  The concrete type conditions vary
slightly across the family's papers; the reproduction uses the standard
nesting:

* **type-0** -- the coarse directional relation (``<`` / ``=`` / ``>`` per
  axis, i.e. original 2-D string operator level) agrees in both images;
* **type-1** -- the exact Allen relation category agrees on both axes;
* **type-2** -- type-1 *and* the ordinal boundary-rank differences agree
  (same relation category in the same ordinal configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.baselines.clique import build_graph, maximum_clique
from repro.geometry.allen import allen_relation
from repro.geometry.relations import directional_relation_between
from repro.iconic.picture import SymbolicPicture


class SimilarityType(Enum):
    """The three nested similarity levels of the 2-D string family."""

    TYPE_0 = 0
    TYPE_1 = 1
    TYPE_2 = 2


@dataclass(frozen=True)
class TypeSimilarityResult:
    """Result of a clique-based type-i similarity evaluation."""

    similarity_type: SimilarityType
    matched_objects: FrozenSet[str]
    common_objects: FrozenSet[str]
    pair_count: int

    @property
    def similarity(self) -> int:
        """The paper-family similarity value: the size of the maximum clique."""
        return len(self.matched_objects)

    @property
    def match_ratio(self) -> float:
        """Matched objects as a fraction of the common objects."""
        if not self.common_objects:
            return 0.0
        return len(self.matched_objects) / len(self.common_objects)


def _ordinal_ranks(values: List[float]) -> Dict[float, int]:
    ranks: Dict[float, int] = {}
    for rank, value in enumerate(sorted(set(values))):
        ranks[value] = rank
    return ranks


def _rank_signature(picture: SymbolicPicture, first: str, second: str) -> Tuple[int, int, int, int]:
    """Ordinal signature of a pair: rank differences of the four boundaries."""
    x_values: List[float] = []
    y_values: List[float] = []
    for icon in picture.icons:
        x_values.extend([icon.mbr.x_begin, icon.mbr.x_end])
        y_values.extend([icon.mbr.y_begin, icon.mbr.y_end])
    x_ranks = _ordinal_ranks(x_values)
    y_ranks = _ordinal_ranks(y_values)
    a = picture.icon(first).mbr
    b = picture.icon(second).mbr
    return (
        x_ranks[b.x_begin] - x_ranks[a.x_begin],
        x_ranks[b.x_end] - x_ranks[a.x_end],
        y_ranks[b.y_begin] - y_ranks[a.y_begin],
        y_ranks[b.y_end] - y_ranks[a.y_end],
    )


def _pair_matches(
    query: SymbolicPicture,
    database: SymbolicPicture,
    first: str,
    second: str,
    similarity_type: SimilarityType,
) -> bool:
    query_a = query.icon(first).mbr
    query_b = query.icon(second).mbr
    database_a = database.icon(first).mbr
    database_b = database.icon(second).mbr

    if similarity_type is SimilarityType.TYPE_0:
        for axis in ("x", "y"):
            query_relation = directional_relation_between(query_a, query_b, axis)
            database_relation = directional_relation_between(database_a, database_b, axis)
            if query_relation != database_relation:
                return False
        return True

    query_x = allen_relation(query_a.x_interval, query_b.x_interval)
    query_y = allen_relation(query_a.y_interval, query_b.y_interval)
    database_x = allen_relation(database_a.x_interval, database_b.x_interval)
    database_y = allen_relation(database_a.y_interval, database_b.y_interval)
    if (query_x, query_y) != (database_x, database_y):
        return False
    if similarity_type is SimilarityType.TYPE_1:
        return True
    return _rank_signature(query, first, second) == _rank_signature(database, first, second)


def type_similarity(
    query: SymbolicPicture,
    database: SymbolicPicture,
    similarity_type: SimilarityType = SimilarityType.TYPE_1,
) -> TypeSimilarityResult:
    """Clique-based type-i similarity between two symbolic pictures.

    Objects are matched by identifier (label plus instance index), as in the
    family's papers where the symbol vocabulary is shared across images.
    """
    common = sorted(set(query.identifiers) & set(database.identifiers))
    edges: List[Tuple[str, str]] = []
    pair_count = 0
    for index, first in enumerate(common):
        for second in common[index + 1 :]:
            pair_count += 1
            if _pair_matches(query, database, first, second, similarity_type):
                edges.append((first, second))
    if not common:
        return TypeSimilarityResult(
            similarity_type=similarity_type,
            matched_objects=frozenset(),
            common_objects=frozenset(),
            pair_count=0,
        )
    if len(common) == 1:
        # A single common object is trivially a complete subgraph of size 1.
        return TypeSimilarityResult(
            similarity_type=similarity_type,
            matched_objects=frozenset(common),
            common_objects=frozenset(common),
            pair_count=0,
        )
    graph = build_graph(common, edges)
    clique = maximum_clique(graph)
    return TypeSimilarityResult(
        similarity_type=similarity_type,
        matched_objects=frozenset(str(vertex) for vertex in clique),
        common_objects=frozenset(common),
        pair_count=pair_count,
    )


def type_similarity_all(
    query: SymbolicPicture, database: SymbolicPicture
) -> Dict[SimilarityType, TypeSimilarityResult]:
    """Evaluate all three similarity types at once."""
    return {
        similarity_type: type_similarity(query, database, similarity_type)
        for similarity_type in SimilarityType
    }
