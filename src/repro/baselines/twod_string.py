"""Chang et al.'s original 2-D strings (1987).

A 2-D string represents a picture by two 1-D strings, one per axis: the icon
symbols listed in projection order, joined by the spatial operators ``<``
(strictly before), ``=`` (same position) and ``:`` (in the same local block --
collapsed here to ``=`` since the reproduction works at MBR granularity).

The original formulation projects each object to a single reference point.
The reproduction supports two conventions, selected by ``reference``:

* ``"centroid"`` -- the MBR centre (the common choice in the literature), and
* ``"begin"`` -- the begin boundary, which makes the representation directly
  comparable with the begin/end models.

2-D strings are the storage baseline for benchmark E2 and feed the type-0/1/2
similarity baseline (which, as the paper notes, is shared by the whole
family).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Sequence, Tuple

from repro.iconic.picture import SymbolicPicture

Reference = Literal["centroid", "begin"]


@dataclass(frozen=True)
class AxisTwoDString:
    """One axis of a 2-D string: symbols in order plus the operators between them."""

    symbols: Tuple[str, ...]
    operators: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.symbols and len(self.operators) != len(self.symbols) - 1:
            raise ValueError("a 2-D string needs exactly one operator between symbols")

    @property
    def symbol_count(self) -> int:
        """Number of icon symbols."""
        return len(self.symbols)

    @property
    def storage_units(self) -> int:
        """Symbols plus operators -- the storage measure used in benchmark E2."""
        return len(self.symbols) + len(self.operators)

    def to_text(self) -> str:
        """Linear text form, e.g. ``"A < B = C"``."""
        if not self.symbols:
            return ""
        parts: List[str] = [self.symbols[0]]
        for operator, symbol in zip(self.operators, self.symbols[1:]):
            parts.append(operator)
            parts.append(symbol)
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


@dataclass(frozen=True)
class TwoDString:
    """The pair of axis strings of Chang's representation."""

    u: AxisTwoDString
    v: AxisTwoDString
    name: str = ""

    @property
    def storage_units(self) -> int:
        """Total storage units across both axes."""
        return self.u.storage_units + self.v.storage_units

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.u.to_text()}, {self.v.to_text()})"


def _axis_string(positions: Sequence[Tuple[float, str]]) -> AxisTwoDString:
    ordered = sorted(positions)
    symbols = tuple(identifier for _, identifier in ordered)
    operators: List[str] = []
    for (left_value, _), (right_value, _) in zip(ordered, ordered[1:]):
        operators.append("=" if left_value == right_value else "<")
    return AxisTwoDString(symbols=symbols, operators=tuple(operators))


def encode_2d_string(
    picture: SymbolicPicture, reference: Reference = "centroid"
) -> TwoDString:
    """Encode a symbolic picture as a 2-D string."""
    if reference not in ("centroid", "begin"):
        raise ValueError(f"unknown reference point convention {reference!r}")
    x_positions: List[Tuple[float, str]] = []
    y_positions: List[Tuple[float, str]] = []
    for icon in picture.icons:
        if reference == "centroid":
            x_value = icon.mbr.center.x
            y_value = icon.mbr.center.y
        else:
            x_value = icon.mbr.x_begin
            y_value = icon.mbr.y_begin
        x_positions.append((x_value, icon.identifier))
        y_positions.append((y_value, icon.identifier))
    return TwoDString(
        u=_axis_string(x_positions), v=_axis_string(y_positions), name=picture.name
    )


def rank_assignment(axis: AxisTwoDString) -> Dict[str, int]:
    """Rank of each symbol along one axis (equal ranks under ``=``).

    Ranks are the standard intermediate form for 2-D string matching: two
    pictures are type-0 similar on an axis when the rank orderings of the
    common symbols agree.
    """
    ranks: Dict[str, int] = {}
    rank = 0
    for index, symbol in enumerate(axis.symbols):
        if index > 0 and axis.operators[index - 1] == "<":
            rank += 1
        ranks[symbol] = rank
    return ranks
