"""Process-parallel shard workers: scatter-gather query execution.

Everything upstream of this module is GIL-bound: the batch scheduler's
thread pool and the service daemon both serialize on the Python bytecode of
the scoring loop, so the shortlist/kernel speedups stop at one core.  This
module partitions the database along the existing CRC-32 shard scheme
(:func:`repro.index.backends.shard_index_for`) into worker *processes*:

* :class:`ShardWorkerPool` forks N workers, each owning a disjoint,
  contiguous slice of the shard space.  A worker builds its own
  :class:`~repro.index.query.QueryEngine` — signature shortlist, inverted
  index and score cache included — over just its slice, **lazily on the
  first query it receives**, warm-starting either from the fork-inherited
  in-memory records or (when the database lives in a sharded directory)
  by reading only its own ``shard-NNNN.bin`` files plus the pending
  write-ahead-log records, so a worker restart costs O(shard slice), not
  O(database).
* A query is *scattered*: the :class:`~repro.index.spec.QuerySpec` is
  serialized to every worker, each scores its slice locally under the
  resolved execution options (kernel, strategy, shortlist, cache), and the
  per-worker rankings are *gathered* and merged with the exact serial
  tie-break order ``(-score, image_id)``.  Because admission, scoring and
  predicate evaluation are all per-image decisions, the global top-k is a
  subset of the union of per-worker top-k lists — the merged ranking is
  byte-identical to the single-process engine (asserted by the E18
  benchmark and the cross-process equivalence suite).
* Worker-side counter deltas (execution, shortlist, cache) ride back in
  every gather response, so ``explain()`` traces and the service ``/stats``
  blocks stay truthful under ``executor="shard_process"``.

A crashed worker is detected by the broken pipe, restarted from its
generation's source, and the in-flight requests are replayed against the
fresh process; the pool counts restarts per worker.  A scatter that fails
*permanently* (a worker's error response, or a restart budget exhausted)
restarts **every** worker before the error propagates, so queued requests
and buffered responses from the aborted batch can never be attributed to
a later query's request ids.  See ``docs/parallelism.md`` for the
protocol and failure semantics.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from multiprocessing.connection import wait as connection_wait
from dataclasses import dataclass, field as dataclass_field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.index.backends import (
    DEFAULT_SHARD_COUNT,
    ShardedBackend,
    shard_index_for,
)
from repro.index.cache import CacheStatistics
from repro.index.database import ImageDatabase
from repro.index.execution import EXECUTOR_SHARD_PROCESS, ExecutionOptions
from repro.index.spec import QuerySpec, QueryTrace
from repro.index.storage import StorageError, image_entry_to_record

#: Executor value workers run internally (anything but ``shard_process``,
#: which would recurse).
_WORKER_EXECUTOR = "serial"

#: Restarts the pool will attempt per worker within one scatter before
#: giving up on the gather.
DEFAULT_MAX_RESTARTS = 3


class ShardWorkerError(RuntimeError):
    """A shard worker failed permanently (crash-restart budget exhausted)."""


def sanitized_execution(execution: Optional[ExecutionOptions]) -> ExecutionOptions:
    """``execution`` with the scatter-gather executor replaced by a serial one.

    Workers must never resolve to ``shard_process`` themselves; every other
    field (kernel, strategy, shortlist, cache) passes through untouched so a
    worker scores exactly like the serial engine would.
    """
    if execution is None:
        return ExecutionOptions(executor=_WORKER_EXECUTOR)
    if execution.executor == EXECUTOR_SHARD_PROCESS:
        return replace(execution, executor=_WORKER_EXECUTOR)
    return execution


def spec_for_worker(spec: QuerySpec) -> QuerySpec:
    """The spec a worker should execute: same plan, serial executor."""
    if spec.execution is not None and spec.execution.executor == EXECUTOR_SHARD_PROCESS:
        return spec.with_overrides(
            execution=replace(spec.execution, executor=_WORKER_EXECUTOR)
        )
    return spec


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerConfig:
    """Everything one worker process needs to build its slice engine."""

    worker_id: int
    shard_count: int
    owned: Tuple[int, ...]
    #: Sharded-directory path to lazy-load the owned shards from; ``None``
    #: filters the fork-inherited in-memory database instead.
    shard_source: Optional[str]
    #: The parent engine's database (fork-shared, read-only in the child).
    database: Optional[ImageDatabase]
    execution: ExecutionOptions
    bitmap_width: int
    minimum_overlap_ratio: float


def _load_owned_shards(
    source: Path, shard_count: int, owned: frozenset
) -> ImageDatabase:
    """Read only the owned ``shard-NNNN.bin`` files (plus pending WAL records).

    This is the O(shard slice) warm start: a restarted worker re-reads its
    own shard files and replays just the acknowledged log records that hash
    into its slice, never touching the rest of the database.
    """
    manifest = ShardedBackend._read_manifest(source)
    database = ImageDatabase(name=manifest.get("name", "image-database"))
    entries: List[Dict[str, Any]] = []
    for key in sorted(manifest["shards"]):
        if int(key) not in owned:
            continue
        shard_path = source / manifest["shards"][key]["file"]
        entries.extend(ShardedBackend._read_shard(shard_path))
    entries.sort(key=lambda entry: str(entry.get("image_id", "")))
    for entry in entries:
        image_entry_to_record(database, entry)
    for record in ShardedBackend.pending_wal_records(source, manifest):
        if shard_index_for(record.image_id, shard_count) not in owned:
            continue
        if record.image_id in database:
            database.remove_picture(record.image_id)
        if record.op == "upsert":
            entry = dict(record.entry or {})
            entry["image_id"] = record.image_id
            image_entry_to_record(database, entry)
    database.clear_dirty()
    return database


def _build_worker_database(config: _WorkerConfig) -> ImageDatabase:
    """The worker's slice of the database, from disk shards or fork memory."""
    owned = frozenset(config.owned)
    if config.shard_source is not None:
        return _load_owned_shards(Path(config.shard_source), config.shard_count, owned)
    if config.database is None:  # pragma: no cover - constructor guarantees one
        raise ShardWorkerError("worker has neither a shard source nor a database")
    database = ImageDatabase(name=config.database.name)
    for record in config.database:
        if shard_index_for(record.image_id, config.shard_count) in owned:
            # Adopt the existing record object: BE-string and signature are
            # already materialised, so the slice costs no re-encoding.
            database._records[record.image_id] = record
    database.clear_dirty()
    return database


def _statistics_delta(after: Any, before: Any, names: Sequence[str]) -> Dict[str, int]:
    """Per-field difference of two frozen statistics snapshots."""
    return {name: getattr(after, name) - getattr(before, name) for name in names}


_EXECUTION_FIELDS = ("queries", "anytime_queries", "admitted", "examined", "skipped")
_SHORTLIST_FIELDS = ("queries", "admitted", "bitmap_rejected", "relation_rejected")
_PREDICATE_FIELDS = ("queries", "graded_queries", "evaluated", "pruned")


def _worker_main(config: _WorkerConfig, connection) -> None:
    """The worker-process request loop.

    The engine is built lazily on the first ``spec`` message (the lazy warm
    start); every response carries the ranking for the worker's slice, the
    execution trace, and the counter deltas the parent folds into its own
    aggregates.  The loop exits on a ``stop`` message or a closed pipe.
    """
    from repro.index.query import QueryEngine

    engine = None
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind != "spec":  # pragma: no cover - protocol guard
            continue
        _, request_id, spec = message
        try:
            if engine is None:
                engine = QueryEngine.build(
                    _build_worker_database(config),
                    minimum_overlap_ratio=config.minimum_overlap_ratio,
                    bitmap_width=config.bitmap_width,
                    execution=config.execution,
                )
            execution_before = engine.execution_counters.statistics
            shortlist_before = engine.shortlist_counters.statistics
            predicate_before = engine.predicate_counters.statistics
            outcome = engine.execute_spec(spec)
            payload = {
                "results": outcome.results,
                "predicate_matches": outcome.predicate_matches,
                "trace": outcome.trace,
                "images": len(engine.database),
                "execution": _statistics_delta(
                    engine.execution_counters.statistics,
                    execution_before,
                    _EXECUTION_FIELDS,
                ),
                "shortlist": _statistics_delta(
                    engine.shortlist_counters.statistics,
                    shortlist_before,
                    _SHORTLIST_FIELDS,
                ),
                "predicates": _statistics_delta(
                    engine.predicate_counters.statistics,
                    predicate_before,
                    _PREDICATE_FIELDS,
                ),
                "cache": engine.score_cache.statistics,
            }
            connection.send(("ok", request_id, payload))
        except Exception as error:  # noqa: BLE001 - forwarded to the parent
            try:
                connection.send(
                    ("error", request_id, f"{type(error).__name__}: {error}")
                )
            except (OSError, ValueError):  # pragma: no cover - parent gone
                break


# ----------------------------------------------------------------------
# Merge (the deterministic gather)
# ----------------------------------------------------------------------
@dataclass
class GatherOutcome:
    """One scattered query's merged result plus the counter deltas to fold."""

    results: List[Any]
    trace: QueryTrace
    predicate_matches: Optional[Dict[str, Any]]
    #: Summed per-worker :class:`ExecutionCounters` deltas.
    execution: Dict[str, int]
    #: Summed per-worker :class:`ShortlistCounters` deltas.
    shortlist: Dict[str, int]
    #: Summed per-worker :class:`PredicateCounters` deltas.
    predicates: Dict[str, int]


def _merge_ranked(spec: QuerySpec, payloads: List[Dict[str, Any]]) -> List[Any]:
    """Merge per-worker rankings with the exact serial tie-break order.

    Each worker already applied ``minimum_score`` and cut to ``limit`` on
    its slice; since the global top-k is a subset of the union of per-worker
    top-k lists, re-sorting the union by ``(-score, image_id)`` — the same
    key :func:`repro.index.ranking.rank_results` uses — and cutting/
    renumbering reproduces the serial ranking byte for byte.
    """
    pooled = [result for payload in payloads for result in payload["results"]]
    pooled.sort(key=lambda result: (-result.score, result.image_id))
    if spec.limit is not None:
        pooled = pooled[: spec.limit]
    if spec.has_similarity_clause:
        return [
            replace(result, rank=position)
            for position, result in enumerate(pooled, start=1)
        ]
    return pooled


def _merge_traces(payloads: List[Dict[str, Any]]) -> QueryTrace:
    """One truthful trace for the whole scatter: summed funnel counters."""
    traces = [payload["trace"] for payload in payloads]
    merged = QueryTrace(mode=traces[0].mode if traces else "similarity")
    inverted = [t.inverted_candidates for t in traces if t.inverted_candidates is not None]
    merged.inverted_candidates = sum(inverted) if inverted else None
    bound_cutoffs = [t.bound_cutoff for t in traces if t.bound_cutoff is not None]
    merged.bound_cutoff = max(bound_cutoffs) if bound_cutoffs else None
    for trace in traces:
        merged.database_size += trace.database_size
        merged.shortlisted += trace.shortlisted
        merged.bitmap_pruned += trace.bitmap_pruned
        merged.relation_pruned += trace.relation_pruned
        merged.cache_hits += trace.cache_hits
        merged.cache_misses += trace.cache_misses
        merged.predicate_evaluated += trace.predicate_evaluated
        merged.predicate_pruned += trace.predicate_pruned
        merged.candidates_examined += trace.candidates_examined
        merged.bound_skipped += trace.bound_skipped
        merged.candidates.update(trace.candidates)
    if traces:
        merged.kernel = traces[0].kernel
        merged.strategy = (
            "anytime"
            if any(trace.strategy == "anytime" for trace in traces)
            else traces[0].strategy
        )
    return merged


def merge_gather(spec: QuerySpec, payloads: List[Dict[str, Any]]) -> GatherOutcome:
    """Merge every worker's response for one spec into a single outcome."""
    matches: Optional[Dict[str, Any]] = None
    if any(payload["predicate_matches"] is not None for payload in payloads):
        matches = {}
        for payload in payloads:
            if payload["predicate_matches"]:
                matches.update(payload["predicate_matches"])
    execution = {name: 0 for name in _EXECUTION_FIELDS}
    shortlist = {name: 0 for name in _SHORTLIST_FIELDS}
    predicates = {name: 0 for name in _PREDICATE_FIELDS}
    for payload in payloads:
        for name in _EXECUTION_FIELDS:
            execution[name] += payload["execution"][name]
        for name in _SHORTLIST_FIELDS:
            shortlist[name] += payload["shortlist"][name]
        for name in _PREDICATE_FIELDS:
            predicates[name] += payload["predicates"][name]
    return GatherOutcome(
        results=_merge_ranked(spec, payloads),
        trace=_merge_traces(payloads),
        predicate_matches=matches,
        execution=execution,
        shortlist=shortlist,
        predicates=predicates,
    )


# ----------------------------------------------------------------------
# Parent-process pool
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    worker_id: int
    owned: Tuple[int, ...]
    process: Any
    connection: Any
    images: int = 0
    restarts: int = 0
    requests: int = 0
    queue_depth: int = 0
    cache: Optional[CacheStatistics] = None
    #: Live sender threads bound to :attr:`connection`; joined before the
    #: connection may be closed (see :meth:`ShardWorkerPool._restart`).
    senders: List[Any] = dataclass_field(default_factory=list)


class ShardWorkerPool:
    """N forked workers over disjoint CRC-32 shard slices, scatter-gathered.

    The pool is created eagerly (cheap: a fork and a pipe per worker) but
    each worker builds its slice engine lazily on its first query.  All
    scatter/gather traffic is serialized by an internal mutex — concurrent
    service threads queue at the pool while each query runs parallel across
    every worker underneath.
    """

    def __init__(
        self,
        worker_count: int,
        database: ImageDatabase,
        *,
        shard_count: Optional[int] = None,
        shard_source: Optional[Path] = None,
        execution: Optional[ExecutionOptions] = None,
        bitmap_width: int = 128,
        minimum_overlap_ratio: float = 0.0,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
    ) -> None:
        """Fork ``worker_count`` workers over ``database``'s shard space.

        ``shard_source`` (a sharded-directory path) switches warm starts to
        the O(shard-slice) disk path; an unreadable source silently falls
        back to fork inheritance.  ``shard_count`` defaults to the source
        manifest's count, else :data:`~repro.index.backends.DEFAULT_SHARD_COUNT`.

        Raises:
            ValueError: if ``worker_count`` is not positive.
        """
        if worker_count < 1:
            raise ValueError(f"worker_count must be >= 1, got {worker_count}")
        self._database = database
        self._execution = sanitized_execution(execution)
        self._bitmap_width = bitmap_width
        self._minimum_overlap_ratio = minimum_overlap_ratio
        self._max_restarts = max_restarts
        self._shard_source: Optional[str] = None
        if shard_source is not None:
            try:
                manifest = ShardedBackend._read_manifest(Path(shard_source))
                shard_count = int(manifest["shard_count"])
                self._shard_source = str(shard_source)
            except (StorageError, FileNotFoundError, OSError):
                self._shard_source = None
        if shard_count is None:
            shard_count = DEFAULT_SHARD_COUNT
        self.shard_count = max(int(shard_count), 1)
        self.worker_count = worker_count
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._lock = threading.Lock()
        #: Guards the scalar scatter counters only, so :meth:`stats` never
        #: has to queue behind an in-flight scatter on :attr:`_lock`.
        self._stats_lock = threading.Lock()
        self._closed = False
        self._scatters = 0
        self._latency_total = 0.0
        self._latency_last = 0.0
        self._max_queue_depth = 0
        image_counts = [0] * worker_count
        for record in database:
            shard = shard_index_for(record.image_id, self.shard_count)
            image_counts[self._owner_of(shard)] += 1
        self._workers: List[_Worker] = []
        for worker_id in range(worker_count):
            owned = tuple(
                shard
                for shard in range(self.shard_count)
                if self._owner_of(shard) == worker_id
            )
            process, connection = self._spawn(worker_id, owned)
            self._workers.append(
                _Worker(
                    worker_id=worker_id,
                    owned=owned,
                    process=process,
                    connection=connection,
                    images=image_counts[worker_id],
                )
            )

    def _owner_of(self, shard: int) -> int:
        """The worker owning ``shard`` (contiguous, balanced slices)."""
        return shard * self.worker_count // self.shard_count

    def _spawn(self, worker_id: int, owned: Tuple[int, ...]):
        """Fork one worker process; returns ``(process, parent connection)``."""
        parent_connection, child_connection = self._context.Pipe()
        config = _WorkerConfig(
            worker_id=worker_id,
            shard_count=self.shard_count,
            owned=owned,
            shard_source=self._shard_source,
            database=self._database,
            execution=self._execution,
            bitmap_width=self._bitmap_width,
            minimum_overlap_ratio=self._minimum_overlap_ratio,
        )
        process = self._context.Process(
            target=_worker_main,
            args=(config, child_connection),
            daemon=True,
            name=f"repro-shard-worker-{worker_id}",
        )
        process.start()
        # The parent must not hold the child's pipe end, or a worker crash
        # would never surface as EOF on the gather side.
        child_connection.close()
        return process, parent_connection

    def _restart(self, worker: _Worker) -> None:
        """Replace a dead worker with a fresh fork of the same slice.

        The ordering is load-bearing.  The process is terminated *first*,
        which breaks the pipe and releases any sender thread still inside a
        ``send`` with ``EPIPE``; only once those threads have exited is the
        parent connection closed.  Closing earlier would free the file
        descriptor while a sender may still be about to write through it —
        the freed number can be reused by the replacement pipe (or any other
        worker's), delivering a stale request of the aborted batch into a
        fresh worker's inbox.
        """
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        for thread in worker.senders:
            thread.join(timeout=5)
        worker.senders = [t for t in worker.senders if t.is_alive()]
        if not worker.senders:
            try:
                worker.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        # else: abandon the connection unclosed — leaking one descriptor is
        # safer than letting a wedged sender write into a reused one.
        worker.process, worker.connection = self._spawn(worker.worker_id, worker.owned)
        worker.restarts += 1

    # ------------------------------------------------------------------
    # Scatter-gather
    # ------------------------------------------------------------------
    def execute_spec(self, spec: QuerySpec) -> GatherOutcome:
        """Scatter one spec to every worker and merge the gathered rankings."""
        return self.execute_many([spec])[0]

    def execute_many(self, specs: Sequence[QuerySpec]) -> List[GatherOutcome]:
        """Pipeline many specs through every worker, preserving input order.

        Specs stream to the workers while responses are drained, so worker
        queues stay full (the per-worker queue depth the ``/stats`` block
        reports peaks at ``len(specs)``).  A scatter that fails permanently
        restarts every worker before the :class:`ShardWorkerError`
        propagates: the pool is always in a clean protocol state for the
        next query, never holding another batch's queued requests or
        buffered responses.
        """
        if self._closed:
            raise ShardWorkerError("the shard worker pool is closed")
        prepared = [spec_for_worker(spec) for spec in specs]
        if not prepared:
            return []
        with self._lock:
            started = time.perf_counter()
            try:
                responses = self._scatter_gather(prepared)
            except BaseException:
                self._recover_after_failure()
                raise
            elapsed = time.perf_counter() - started
            with self._stats_lock:
                self._scatters += 1
                self._latency_total += elapsed
                self._latency_last = elapsed
                self._max_queue_depth = max(self._max_queue_depth, len(prepared))
        return [
            merge_gather(
                specs[index],
                [responses[worker][index] for worker in range(len(self._workers))],
            )
            for index in range(len(prepared))
        ]

    def _scatter_gather(
        self, prepared: List[QuerySpec]
    ) -> List[List[Dict[str, Any]]]:
        """Stream every spec to every worker while draining their responses.

        Sends run on one thread per worker (:meth:`_start_sender`) while
        this loop waits on *all* worker pipes at once
        (:func:`multiprocessing.connection.wait`).  The parent is therefore
        always ready to ``recv``, so a worker blocked writing a large
        response is drained even while its inbound pipe is still filling —
        the bounded OS pipe buffer (~64KiB each way) can never wedge both
        directions into a deadlock, no matter how large the batch or the
        ``QueryTrace`` payloads grow.

        A crashed worker (EOF/broken pipe) is restarted — budgeted by
        ``max_restarts`` — and its still-pending requests are replayed to
        the fresh process on a fresh pipe.
        """
        total = len(prepared)
        items = list(enumerate(prepared))
        responses: List[List[Optional[Dict[str, Any]]]] = [
            [None] * total for _ in self._workers
        ]
        pending = [set(range(total)) for _ in self._workers]
        restarts = [0] * len(self._workers)
        for worker in self._workers:
            worker.queue_depth = total
            worker.requests += total
            self._start_sender(worker, items)
        while True:
            waitable = {
                worker.connection: index
                for index, worker in enumerate(self._workers)
                if pending[index]
            }
            if not waitable:
                break
            for connection in connection_wait(list(waitable)):
                index = waitable[connection]
                worker = self._workers[index]
                try:
                    kind, request_id, payload = connection.recv()
                except (EOFError, OSError):
                    restarts[index] += 1
                    if restarts[index] > self._max_restarts:
                        raise ShardWorkerError(
                            f"shard worker {worker.worker_id} kept crashing "
                            f"({restarts[index] - 1} restarts); giving up"
                        )
                    self._restart(worker)
                    self._start_sender(
                        worker,
                        [(request_id, prepared[request_id]) for request_id in sorted(pending[index])],
                    )
                    continue
                if kind == "error":
                    raise ShardWorkerError(
                        f"shard worker {worker.worker_id} failed: {payload}"
                    )
                if kind != "ok" or request_id not in pending[index]:
                    # Protocol guard: a malformed or duplicate response must
                    # never be attributed to another request id.
                    continue
                responses[index][request_id] = payload
                pending[index].discard(request_id)
                worker.queue_depth = len(pending[index])
                worker.images = payload["images"]
                worker.cache = payload["cache"]
        return responses  # type: ignore[return-value]

    def _start_sender(self, worker: _Worker, items: List[Tuple[int, QuerySpec]]) -> None:
        """Stream ``items`` to ``worker`` from a dedicated daemon thread.

        A broken pipe simply ends the thread: the gather loop observes the
        same break as EOF on its side and drives the restart (the fresh
        connection gets a fresh sender).  The thread is registered on the
        worker so :meth:`_restart` can join it before closing — never
        while it might still write through — the connection it holds.
        """
        connection = worker.connection

        def _run() -> None:
            try:
                for request_id, spec in items:
                    connection.send(("spec", request_id, spec))
            except (OSError, ValueError):
                pass

        thread = threading.Thread(
            target=_run, name="repro-shard-sender", daemon=True
        )
        worker.senders = [t for t in worker.senders if t.is_alive()]
        worker.senders.append(thread)
        thread.start()

    def _recover_after_failure(self) -> None:
        """Reset every worker to a clean protocol state after an aborted scatter.

        When a gather raises, requests are still queued in worker inboxes and
        completed responses sit buffered in the parent-side pipes; left
        alone, the next scatter would consume responses whose request ids
        index a *different* spec list — silently wrong results.  Restarting
        every worker discards both pipe directions wholesale; the fresh
        processes rebuild their slice engines lazily (O(shard slice)) on the
        next query.
        """
        for worker in self._workers:
            try:
                self._restart(worker)
            except Exception:  # noqa: BLE001 - recovery must not mask the cause
                pass
            worker.queue_depth = 0

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` ``workers`` block: per-worker and scatter counters.

        Deliberately does **not** take the scatter mutex: a long in-flight
        batch must not stall the service ``/stats`` endpoint.  The scalar
        counters are read under their own lock; the per-worker fields are a
        best-effort point-in-time snapshot (each read is atomic under the
        GIL, so values are individually consistent, merely racy against an
        in-flight scatter).
        """
        with self._stats_lock:
            scatters = self._scatters
            latency_total = self._latency_total
            latency_last = self._latency_last
            max_queue_depth = self._max_queue_depth
        workers = [
            {
                "worker": worker.worker_id,
                "shards": len(worker.owned),
                "images": worker.images,
                "alive": worker.process.is_alive(),
                "restarts": worker.restarts,
                "requests": worker.requests,
                "queue_depth": worker.queue_depth,
            }
            for worker in self._workers
        ]
        caches = [worker.cache for worker in self._workers if worker.cache]
        mean_ms = latency_total / scatters * 1000.0 if scatters else 0.0
        return {
            "count": self.worker_count,
            "shard_count": self.shard_count,
            "warm_start": "shards" if self._shard_source else "fork",
            "scatters": scatters,
            "max_queue_depth": max_queue_depth,
            "scatter_latency_ms": {
                "last": round(latency_last * 1000.0, 3),
                "mean": round(mean_ms, 3),
            },
            "restarts": sum(worker.restarts for worker in self._workers),
            "workers": workers,
            "cache": {
                "hits": sum(cache.hits for cache in caches),
                "misses": sum(cache.misses for cache in caches),
                "size": sum(cache.size for cache in caches),
            },
        }

    def close(self) -> None:
        """Stop every worker: polite ``stop`` message, then terminate.

        Connections are closed only after the processes are down and the
        sender threads joined — the same fd-reuse discipline as
        :meth:`_restart`.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.connection.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
        # Dead workers have broken every pipe, so any sender still blocked
        # in a send has been released with EPIPE by now.
        for worker in self._workers:
            for thread in worker.senders:
                thread.join(timeout=2)
            worker.senders = [t for t in worker.senders if t.is_alive()]
            if not worker.senders:
                try:
                    worker.connection.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:  # noqa: BLE001 - never raise from a finalizer
            pass
