"""Batch query execution: many similarity queries evaluated as one workload.

The paper's evaluation process is quadratic per (query, image) pair, so a
production deployment of the model cannot afford to treat a stream of queries
as independent one-at-a-time scans.  :class:`BatchQueryEngine` accepts many
:class:`~repro.index.query.Query` objects at once and exploits the structure
of the workload:

* **Deduplication** -- queries whose pictures encode to the same 2D BE-string
  under the same policy/transformations/filter knobs form one *evaluation
  group*; the query is encoded once, the inverted-index + signature shortlist
  is computed once, and every candidate is scored once for the whole group.
* **Memoisation** -- per-(query-content, image) similarity results are kept in
  an LRU :class:`~repro.index.cache.ScoreCache`, so scores survive across
  batches and across queries that merely overlap (the cache is invalidated by
  the engine whenever the database changes).
* **Parallel evaluation** -- the remaining cache misses are chunked and
  scheduled on a ``concurrent.futures`` thread or process pool with a
  configurable worker count.

Ranking still happens per original query (each query keeps its own ``limit``
and ``minimum_score``), and results are guaranteed identical -- including
tie-break ordering -- to running :meth:`QueryEngine.execute` serially per
query; ``tests/index/test_batch.py`` locks this equivalence down.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.bestring import BEString2D
from repro.core.construct import encode_picture
from repro.core.similarity import (
    SimilarityPolicy,
    SimilarityResult,
    invariant_similarity,
    similarity,
)
from repro.core.transforms import Transformation
from repro.index.cache import CacheKey, QueryKey, ScoreCache, query_score_key
from repro.index.ranking import RankedResult, rank_results

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.index.query import Query, QueryEngine

#: Hard floor/ceiling for automatically chosen chunk sizes.
_MIN_CHUNK = 1
_MAX_CHUNK = 64


@dataclass(frozen=True)
class BatchOptions:
    """Knobs of the batch scheduler.

    ``executor`` selects how cache-miss scoring work runs: ``"thread"`` (a
    ``ThreadPoolExecutor``; the default), ``"process"`` (a
    ``ProcessPoolExecutor``; higher fixed cost, true CPU parallelism),
    ``"serial"`` (inline, no pool -- still deduplicates and caches),
    ``"auto"`` (serial for small workloads, threads otherwise), or
    ``"shard_process"`` (the whole batch is pipelined through the
    process-parallel shard workers of :mod:`repro.index.workers`; the batch
    engine itself never sees those queries).  ``workers``
    bounds the pool size; ``chunk_size`` overrides the automatic chunking of
    (query, image) scoring tasks; ``use_cache=False`` bypasses the score cache
    entirely (every candidate is re-scored).
    """

    workers: int = 4
    executor: str = "thread"
    chunk_size: Optional[int] = None
    use_cache: bool = True

    #: Below this many scoring tasks, "auto" stays serial: pool start-up would
    #: dominate the dynamic programs being scheduled.
    auto_serial_threshold: int = 32

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.executor not in ("thread", "process", "serial", "auto", "shard_process"):
            raise ValueError(
                f"unknown executor {self.executor!r} "
                "(expected 'thread', 'process', 'serial', 'auto' or 'shard_process')"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")


@dataclass
class BatchReport:
    """What one :meth:`BatchQueryEngine.run` call actually did."""

    total_queries: int = 0
    unique_evaluations: int = 0
    candidates_considered: int = 0
    scored: int = 0
    cache_hits: int = 0
    chunks: int = 0
    executor: str = "serial"
    workers: int = 1
    #: Candidates rejected by the stage-1 bitmap bound across all groups.
    shortlist_bitmap_pruned: int = 0
    #: Candidates rejected by the stage-2 relation-pair bound across all groups.
    shortlist_relation_pruned: int = 0

    @property
    def deduplicated_queries(self) -> int:
        """Queries answered entirely by another query's evaluation group."""
        return self.total_queries - self.unique_evaluations

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of candidate scores served from the cache."""
        total = self.candidates_considered
        return self.cache_hits / total if total else 0.0

    @property
    def shortlist_pruned(self) -> int:
        """Total candidates the two-stage signature shortlist rejected."""
        return self.shortlist_bitmap_pruned + self.shortlist_relation_pruned

    def describe(self) -> str:
        """One-line summary used by the CLI and the benchmark report."""
        pruned = ""
        if self.shortlist_pruned:
            pruned = (
                f", {self.shortlist_bitmap_pruned} bitmap-pruned + "
                f"{self.shortlist_relation_pruned} relation-pruned"
            )
        return (
            f"{self.total_queries} queries -> {self.unique_evaluations} unique evaluations, "
            f"{self.candidates_considered} candidate scores "
            f"({self.cache_hits} cached, {self.scored} computed{pruned}) "
            f"via {self.executor} x{self.workers}"
        )


@dataclass
class _EvaluationGroup:
    """One deduplicated unit of work: a query content + filter configuration."""

    query_key: QueryKey
    query_bestring: BEString2D
    policy: SimilarityPolicy
    transformations: Tuple[Transformation, ...]
    #: The queries' own cache toggle (:attr:`Query.use_cache`); combined with
    #: the batch-level ``BatchOptions.use_cache`` knob, both must be on.
    use_cache: bool = True
    candidate_ids: List[str] = field(default_factory=list)
    #: Positions in the original query sequence answered by this group.
    query_positions: List[int] = field(default_factory=list)


def _score_chunk(
    query_bestring: BEString2D,
    policy: SimilarityPolicy,
    transformations: Tuple[Transformation, ...],
    candidates: Sequence[Tuple[str, BEString2D]],
) -> List[Tuple[str, SimilarityResult]]:
    """Score one query against a chunk of candidate BE-strings.

    Module-level so it pickles for the process-pool executor.  The scoring
    calls are exactly the ones :meth:`QueryEngine.execute` makes, which is
    what keeps batch results bit-identical to serial results.
    """
    scored: List[Tuple[str, SimilarityResult]] = []
    for image_id, candidate in candidates:
        if len(transformations) == 1:
            result = similarity(query_bestring, candidate, policy, transformations[0])
        else:
            result = invariant_similarity(query_bestring, candidate, policy, transformations)
        scored.append((image_id, result))
    return scored


@dataclass
class BatchQueryEngine:
    """Evaluates many queries against one :class:`QueryEngine` efficiently.

    The batch engine is a scheduler only: all scoring goes through the same
    similarity functions the serial path uses, and all ranking goes through
    :func:`~repro.index.ranking.rank_results`, so for any input batch
    ``run(queries)[i] == engine.execute(queries[i])`` element for element.
    """

    engine: "QueryEngine"
    options: BatchOptions = field(default_factory=BatchOptions)
    #: Report of the most recent :meth:`run` call.
    last_report: Optional[BatchReport] = field(default=None, init=False)

    @property
    def cache(self) -> ScoreCache:
        """The score cache (shared with, and invalidated by, the engine)."""
        return self.engine.score_cache

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, queries: Sequence["Query"], options: Optional[BatchOptions] = None
    ) -> List[List[RankedResult]]:
        """Execute a batch; returns one ranked result list per input query."""
        results, report = self.run_detailed(queries, options)
        self.last_report = report
        return results

    def run_detailed(
        self, queries: Sequence["Query"], options: Optional[BatchOptions] = None
    ) -> Tuple[List[List[RankedResult]], BatchReport]:
        """Like :meth:`run` but also returns the :class:`BatchReport`."""
        opts = options or self.options
        queries = list(queries)
        report = BatchReport(total_queries=len(queries), workers=opts.workers)
        if not queries:
            report.executor = "serial"
            return [], report

        groups = self._group_queries(queries, report)
        report.unique_evaluations = len(groups)

        # Shortlist candidates once per group and split them into cache hits
        # (available immediately) and misses (to be scored).
        run_results: Dict[CacheKey, SimilarityResult] = {}
        tasks: List[Tuple[_EvaluationGroup, List[str]]] = []
        for group in groups:
            report.candidates_considered += len(group.candidate_ids)
            group_cached = opts.use_cache and group.use_cache
            misses: List[str] = []
            for image_id in group.candidate_ids:
                cached = (
                    self.cache.get(group.query_key, image_id) if group_cached else None
                )
                if cached is not None:
                    run_results[(group.query_key, image_id)] = cached
                    report.cache_hits += 1
                else:
                    misses.append(image_id)
            if misses:
                tasks.append((group, misses))

        report.scored = sum(len(misses) for _, misses in tasks)
        report.executor = self._resolve_executor(opts, report.scored)
        self._execute_tasks(tasks, opts, report, run_results)

        # Rank per original query with its own limit / minimum_score.
        results: List[List[RankedResult]] = [[] for _ in queries]
        for group in groups:
            scored = [
                (image_id, run_results[(group.query_key, image_id)])
                for image_id in group.candidate_ids
            ]
            for position in group.query_positions:
                query = queries[position]
                results[position] = rank_results(
                    scored, limit=query.limit, minimum_score=query.minimum_score
                )
        return results, report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _group_queries(
        self, queries: Sequence["Query"], report: BatchReport
    ) -> List[_EvaluationGroup]:
        """Deduplicate queries into evaluation groups with shared shortlists.

        Each unique group runs the engine's two-stage signature shortlist
        once; per-stage pruning counts are accumulated into ``report``.
        Queries sharing content but differing in ``minimum_score`` fall into
        distinct groups, since the shortlist's score bound depends on it.
        """
        groups: Dict[Tuple[QueryKey, bool, int, bool, float], _EvaluationGroup] = {}
        for position, query in enumerate(queries):
            bestring = encode_picture(query.picture)
            query_key = query_score_key(bestring, query.policy, query.transformations)
            group_key = (
                query_key,
                query.use_filters,
                query.minimum_shared_labels,
                query.use_cache,
                query.minimum_score,
            )
            group = groups.get(group_key)
            if group is None:
                outcome = self.engine.shortlist(query, bestring)
                report.shortlist_bitmap_pruned += outcome.bitmap_rejected
                report.shortlist_relation_pruned += outcome.relation_rejected
                group = _EvaluationGroup(
                    query_key=query_key,
                    query_bestring=bestring,
                    policy=query.policy,
                    transformations=tuple(query.transformations),
                    use_cache=query.use_cache,
                    candidate_ids=outcome.candidates,
                )
                groups[group_key] = group
            group.query_positions.append(position)
        return list(groups.values())

    def _resolve_executor(self, opts: BatchOptions, pending: int) -> str:
        if opts.executor == "auto":
            if opts.workers <= 1 or pending < opts.auto_serial_threshold:
                return "serial"
            return "thread"
        if opts.workers <= 1:
            return "serial"
        return opts.executor

    def _chunk_size(self, opts: BatchOptions, pending: int) -> int:
        if opts.chunk_size is not None:
            return opts.chunk_size
        # Aim for a few chunks per worker so stragglers even out.
        target = max(_MIN_CHUNK, pending // (opts.workers * 4))
        return min(target, _MAX_CHUNK)

    def _execute_tasks(
        self,
        tasks: List[Tuple[_EvaluationGroup, List[str]]],
        opts: BatchOptions,
        report: BatchReport,
        run_results: Dict[CacheKey, SimilarityResult],
    ) -> None:
        if not tasks:
            return
        database = self.engine.database
        pending = report.scored
        chunk_size = self._chunk_size(opts, pending)

        chunks: List[Tuple[_EvaluationGroup, List[Tuple[str, BEString2D]]]] = []
        for group, misses in tasks:
            for start in range(0, len(misses), chunk_size):
                window = misses[start : start + chunk_size]
                chunks.append(
                    (group, [(image_id, database.get(image_id).bestring) for image_id in window])
                )
        report.chunks = len(chunks)

        def _store(group: _EvaluationGroup, scored: List[Tuple[str, SimilarityResult]]) -> None:
            for image_id, result in scored:
                run_results[(group.query_key, image_id)] = result
                if opts.use_cache and group.use_cache:
                    self.cache.put(group.query_key, image_id, result)

        if report.executor == "serial":
            for group, candidates in chunks:
                _store(
                    group,
                    _score_chunk(
                        group.query_bestring, group.policy, group.transformations, candidates
                    ),
                )
            return

        pool: Executor
        workers = min(opts.workers, len(chunks))
        if report.executor == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-batch")
        try:
            futures = [
                (
                    group,
                    pool.submit(
                        _score_chunk,
                        group.query_bestring,
                        group.policy,
                        group.transformations,
                        candidates,
                    ),
                )
                for group, candidates in chunks
            ]
            for group, future in futures:
                _store(group, future.result())
        finally:
            pool.shutdown(wait=True)
