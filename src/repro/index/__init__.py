"""Image database and index layer.

The title of the paper promises *image indexing*; this subpackage is the
database a downstream user would actually store BE-strings in:

* :class:`~repro.index.database.ImageDatabase` -- holds symbolic pictures and
  their pre-computed 2D BE-strings, supports add/remove of whole images and
  dynamic add/remove of single objects inside a stored image.
* :class:`~repro.index.inverted.InvertedSymbolIndex` -- symbol -> image ids,
  used to shortlist candidates that share at least one query icon.
* :class:`~repro.index.signature.SignatureFilter` -- label-multiset signatures
  for cheap candidate pruning before the LCS evaluation.
* :mod:`~repro.index.shortlist` -- the two-stage signature shortlist: hashed
  label bitmaps (stage 1) and relation-pair signatures (stage 2) upper-bound
  the achievable LCS score so only candidates that can clear the query's
  ``min_score`` are ever scored (see ``docs/shortlist.md``).
* :class:`~repro.index.query.QueryEngine` -- the unified query pipeline:
  executes similarity queries (optionally transformation-invariant) and
  declarative :class:`~repro.index.spec.QuerySpec` plans (similarity +
  relation predicates) over the database, always consulting the score cache,
  and returns ranked results with execution traces.
* :mod:`~repro.index.spec` -- the declarative :class:`~repro.index.spec.QuerySpec`
  every entry point compiles to, plus the trace types behind ``explain()``.
* :class:`~repro.index.batch.BatchQueryEngine` -- evaluates many queries at
  once: deduplicates shared encoding/shortlist work, memoises per-(query,
  image) scores in a :class:`~repro.index.cache.ScoreCache`, and schedules
  cache misses on a thread/process pool.
* :mod:`~repro.index.storage` -- the v1 JSON persistence of pictures,
  BE-strings and whole databases.
* :mod:`~repro.index.backends` -- pluggable storage backends on top of it:
  JSON v1, SQLite (lazy loading, incremental row upserts) and sharded binary
  files (incremental dirty-shard rewrites), with format inference from paths.
"""

from repro.index.backends import (
    BACKENDS,
    DurableShardedBackend,
    DurableShardedStore,
    JsonBackend,
    LazySqliteImageDatabase,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
    describe_database,
    get_backend,
    infer_backend,
    load_database_from,
    save_database_to,
)
from repro.index.batch import BatchOptions, BatchQueryEngine, BatchReport
from repro.index.cache import CacheStatistics, ScoreCache, query_score_key
from repro.index.database import ImageDatabase, ImageRecord
from repro.index.inverted import InvertedSymbolIndex
from repro.index.query import Query, QueryEngine
from repro.index.ranking import RankedResult, rank_results
from repro.index.shortlist import (
    DEFAULT_BITMAP_WIDTH,
    ImageSignature,
    QuerySignature,
    ShortlistCounters,
    ShortlistOutcome,
    ShortlistStatistics,
    ensure_signatures,
    label_bitmap,
    signature_for,
)
from repro.index.signature import SignatureFilter, label_signature
from repro.index.spatial import QUADRANTS, LocatedIcon, RegionIndex
from repro.index.spec import (
    CandidateTrace,
    QuerySpec,
    QuerySpecError,
    QueryTrace,
    SpecOutcome,
)
from repro.index.storage import (
    StorageError,
    database_from_json,
    database_to_json,
    load_database,
    save_database,
)

from repro.index.wal import WalRecord, WriteAheadLog, read_wal

__all__ = [
    "BACKENDS",
    "DurableShardedBackend",
    "DurableShardedStore",
    "WalRecord",
    "WriteAheadLog",
    "read_wal",
    "JsonBackend",
    "LazySqliteImageDatabase",
    "ShardedBackend",
    "SqliteBackend",
    "StorageBackend",
    "StorageError",
    "describe_database",
    "get_backend",
    "infer_backend",
    "load_database_from",
    "save_database_to",
    "BatchOptions",
    "BatchQueryEngine",
    "BatchReport",
    "CacheStatistics",
    "ScoreCache",
    "query_score_key",
    "ImageDatabase",
    "ImageRecord",
    "InvertedSymbolIndex",
    "Query",
    "QueryEngine",
    "CandidateTrace",
    "QuerySpec",
    "QuerySpecError",
    "QueryTrace",
    "SpecOutcome",
    "RankedResult",
    "rank_results",
    "SignatureFilter",
    "label_signature",
    "DEFAULT_BITMAP_WIDTH",
    "ImageSignature",
    "QuerySignature",
    "ShortlistCounters",
    "ShortlistOutcome",
    "ShortlistStatistics",
    "ensure_signatures",
    "label_bitmap",
    "signature_for",
    "QUADRANTS",
    "LocatedIcon",
    "RegionIndex",
    "database_from_json",
    "database_to_json",
    "load_database",
    "save_database",
]
