"""JSON persistence for pictures, BE-strings and whole databases.

The paper stores the 2D BE-strings of every image in the database; this module
provides the serialisation a real deployment needs: a stable, human-readable
JSON schema with a version field, plus save/load helpers for whole databases.
Round-tripping is exact (validated by tests): the BE-strings are re-encoded
from the stored pictures and compared against the stored strings on load, so a
corrupted file is detected rather than silently accepted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.bestring import BEString2D
from repro.core.construct import encode_picture
from repro.iconic.picture import SymbolicPicture
from repro.index.database import ImageDatabase

#: Schema version written into every database file.
SCHEMA_VERSION = 1


class StorageError(ValueError):
    """Raised when a database file is malformed or inconsistent."""


def database_to_json(database: ImageDatabase) -> Dict[str, Any]:
    """Serialise a database to a JSON-compatible dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": database.name,
        "images": [
            {
                "image_id": record.image_id,
                "picture": record.picture.to_dict(),
                "bestring": record.bestring.to_dict(),
            }
            for record in database
        ],
    }


def database_from_json(payload: Dict[str, Any]) -> ImageDatabase:
    """Rebuild a database from :func:`database_to_json` output.

    The stored BE-string of every image is checked against a re-encoding of
    the stored picture; a mismatch raises :class:`StorageError`.
    """
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise StorageError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    database = ImageDatabase(name=payload.get("name", "image-database"))
    for entry in payload.get("images", []):
        try:
            picture = SymbolicPicture.from_dict(entry["picture"])
            stored_bestring = BEString2D.from_dict(entry["bestring"])
            image_id = entry["image_id"]
        except (KeyError, TypeError, ValueError) as error:
            raise StorageError(f"malformed image entry: {error}") from error
        record = database.add_picture(picture, image_id)
        if record.bestring != stored_bestring:
            raise StorageError(
                f"stored BE-string of image {image_id!r} does not match its picture"
            )
    return database


def save_database(database: ImageDatabase, path: Union[str, Path]) -> Path:
    """Write a database to a JSON file; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(database_to_json(database), handle, indent=2, sort_keys=True)
    return target


def load_database(path: Union[str, Path]) -> ImageDatabase:
    """Read a database from a JSON file written by :func:`save_database`."""
    source = Path(path)
    try:
        with source.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as error:
        raise StorageError(f"{source} is not valid JSON: {error}") from error
    return database_from_json(payload)


def picture_to_json_text(picture: SymbolicPicture) -> str:
    """Serialise a single picture to a JSON string."""
    return json.dumps(picture.to_dict(), indent=2, sort_keys=True)


def picture_from_json_text(text: str) -> SymbolicPicture:
    """Parse a single picture from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise StorageError(f"invalid picture JSON: {error}") from error
    return SymbolicPicture.from_dict(payload)


def bestring_for_file(picture: SymbolicPicture) -> Dict[str, Any]:
    """Encode a picture and return the JSON form of its BE-string."""
    return encode_picture(picture).to_dict()
