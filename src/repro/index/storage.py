"""JSON persistence for pictures, BE-strings and whole databases.

The paper stores the 2D BE-strings of every image in the database; this module
provides the serialisation a real deployment needs: a stable, human-readable
JSON schema with a version field, plus save/load helpers for whole databases.
Round-tripping is exact (validated by tests): the BE-strings are re-encoded
from the stored pictures and compared against the stored strings on load, so a
corrupted file is detected rather than silently accepted.

This module is the **v1 JSON format**; the pluggable backend layer on top of
it (SQLite, sharded binary, format inference, incremental saves) lives in
:mod:`repro.index.backends`.  The functions here stay byte-compatible with
databases written before the backend layer existed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.bestring import BEString2D
from repro.core.construct import encode_picture
from repro.iconic.picture import SymbolicPicture
from repro.index.database import ImageDatabase, ImageRecord
from repro.index.shortlist import ImageSignature, signature_for

#: Schema version written into every database file.
SCHEMA_VERSION = 1


class StorageError(ValueError):
    """Raised when a database file is malformed or inconsistent."""


def database_to_json(
    database: ImageDatabase, include_signatures: bool = True
) -> Dict[str, Any]:
    """Serialise a database to a JSON-compatible dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": database.name,
        "images": [
            image_record_to_json(record, include_signature=include_signatures)
            for record in database
        ],
    }


def image_record_to_json(
    record: ImageRecord, include_signature: bool = True
) -> Dict[str, Any]:
    """Serialise one stored image to its JSON-compatible entry dictionary.

    Returns:
        A dictionary with ``image_id``, ``picture`` and ``bestring`` keys —
        the per-image unit shared by every storage backend — plus the
        shortlist ``signature`` (computed on demand; see
        :mod:`repro.index.shortlist`) unless ``include_signature`` is off.
    """
    entry = {
        "image_id": record.image_id,
        "picture": record.picture.to_dict(),
        "bestring": record.bestring.to_dict(),
    }
    if include_signature:
        # Keep a cached signature at whatever bitmap width it was built with
        # (``repro convert --bitmap-width`` tunes it); compute at the default
        # width only when no signature exists yet.
        signature = record.signature
        if signature is None:
            signature = signature_for(record)
        entry["signature"] = signature.to_dict()
    return entry


def image_entry_to_record(database: ImageDatabase, entry: Dict[str, Any]) -> ImageRecord:
    """Validate one image entry and add it to ``database``.

    The stored BE-string is checked against a re-encoding of the stored
    picture, so a corrupted entry is detected rather than silently accepted.
    A persisted shortlist ``signature`` is attached to the record when its
    version and cheap consistency checks pass (warm starts then skip the
    recomputation); otherwise it is silently dropped and rebuilt lazily.

    Returns:
        The stored :class:`~repro.index.database.ImageRecord`.

    Raises:
        StorageError: if the entry is malformed or its BE-string does not
            match its picture.
    """
    try:
        picture = SymbolicPicture.from_dict(entry["picture"])
        stored_bestring = BEString2D.from_dict(entry["bestring"])
        image_id = entry["image_id"]
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(f"malformed image entry: {error}") from error
    record = database.add_picture(picture, image_id)
    if record.bestring != stored_bestring:
        raise StorageError(
            f"stored BE-string of image {image_id!r} does not match its picture"
        )
    payload = entry.get("signature")
    if isinstance(payload, dict):
        try:
            signature = ImageSignature.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            signature = None
        if signature is not None and signature.matches_bestring(record.bestring):
            record.signature = signature
    return record


def check_schema_version(version: Any) -> None:
    """Raise :class:`StorageError` unless ``version`` is the supported one.

    Raises:
        StorageError: if ``version`` differs from :data:`SCHEMA_VERSION`.
    """
    if version != SCHEMA_VERSION:
        raise StorageError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )


def database_from_json(payload: Dict[str, Any]) -> ImageDatabase:
    """Rebuild a database from :func:`database_to_json` output.

    The stored BE-string of every image is checked against a re-encoding of
    the stored picture; a mismatch raises :class:`StorageError`.

    Returns:
        The reconstructed :class:`~repro.index.database.ImageDatabase` with a
        clean dirty set.

    Raises:
        StorageError: on an unsupported schema version or a malformed or
            inconsistent image entry.
    """
    check_schema_version(payload.get("schema_version"))
    database = ImageDatabase(name=payload.get("name", "image-database"))
    for entry in payload.get("images", []):
        image_entry_to_record(database, entry)
    database.clear_dirty()
    return database


def save_database(
    database: ImageDatabase,
    path: Union[str, Path],
    include_signatures: bool = True,
) -> Path:
    """Write a database to a v1 JSON file.

    Returns:
        The path written (parents are created as needed).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(
            database_to_json(database, include_signatures=include_signatures),
            handle,
            indent=2,
            sort_keys=True,
        )
    return target


def load_database(path: Union[str, Path]) -> ImageDatabase:
    """Read a database from a JSON file written by :func:`save_database`.

    Returns:
        The reconstructed :class:`~repro.index.database.ImageDatabase`.

    Raises:
        StorageError: if the file is truncated, not valid JSON/UTF-8, or
            fails the schema and BE-string consistency checks; the message
            names the offending path.
        FileNotFoundError: if ``path`` does not exist.
    """
    source = Path(path)
    try:
        with source.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as error:
        raise StorageError(f"{source} is not valid JSON: {error}") from error
    except UnicodeDecodeError as error:
        raise StorageError(f"{source} is not valid UTF-8 text: {error}") from error
    try:
        return database_from_json(payload)
    except StorageError as error:
        raise StorageError(f"{source}: {error}") from error


def picture_to_json_text(picture: SymbolicPicture) -> str:
    """Serialise a single picture to a JSON string."""
    return json.dumps(picture.to_dict(), indent=2, sort_keys=True)


def picture_from_json_text(text: str) -> SymbolicPicture:
    """Parse a single picture from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise StorageError(f"invalid picture JSON: {error}") from error
    return SymbolicPicture.from_dict(payload)


def bestring_for_file(picture: SymbolicPicture) -> Dict[str, Any]:
    """Encode a picture and return the JSON form of its BE-string."""
    return encode_picture(picture).to_dict()
