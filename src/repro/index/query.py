"""The query engine: similarity retrieval over an image database.

The engine ties the pieces together the way the paper's demonstration system
does: the query picture is encoded once, candidate images are shortlisted by
the inverted index and the signature filter, each surviving candidate is
scored with the modified-LCS similarity evaluation (optionally over all
rotations/reflections of the query), and the results are returned ranked.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.bestring import BEString2D
from repro.core.construct import encode_picture
from repro.core.similarity import (
    DEFAULT_POLICY,
    SimilarityPolicy,
    SimilarityResult,
    invariant_similarity,
    similarity,
)
from repro.core.transforms import Transformation
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.index.cache import ScoreCache
from repro.index.database import ImageDatabase, ImageRecord
from repro.index.inverted import InvertedSymbolIndex
from repro.index.ranking import RankedResult, rank_results
from repro.index.signature import SignatureFilter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.index.batch import BatchOptions, BatchReport


@dataclass(frozen=True)
class Query:
    """A similarity query.

    ``transformations`` selects the transformation-invariant mode: with more
    than one entry the best-scoring variant of the query is used per image.
    ``use_filters`` disables the candidate pruning (used by the ablation
    benchmark); ``minimum_shared_labels`` and ``minimum_score`` tune the
    shortlist and the final cut-off.
    """

    picture: SymbolicPicture
    policy: SimilarityPolicy = DEFAULT_POLICY
    transformations: Tuple[Transformation, ...] = (Transformation.IDENTITY,)
    limit: Optional[int] = None
    minimum_score: float = 0.0
    minimum_shared_labels: int = 1
    use_filters: bool = True

    @classmethod
    def exact(cls, picture: SymbolicPicture, **kwargs) -> "Query":
        """Query for the picture as-is (no transformation invariance)."""
        return cls(picture=picture, **kwargs)

    @classmethod
    def invariant(cls, picture: SymbolicPicture, **kwargs) -> "Query":
        """Query over all rotations and reflections of the picture."""
        return cls(picture=picture, transformations=tuple(Transformation), **kwargs)


@dataclass
class QueryEngine:
    """Executes :class:`Query` objects against an :class:`ImageDatabase`."""

    database: ImageDatabase
    signature_filter: SignatureFilter = field(default_factory=SignatureFilter)
    inverted_index: InvertedSymbolIndex = field(default_factory=InvertedSymbolIndex)
    #: Memoised per-(query, image) similarity results, shared with the batch
    #: subsystem (:mod:`repro.index.batch`) and invalidated on every mutation.
    score_cache: ScoreCache = field(default_factory=ScoreCache)
    #: Scheduler report of the most recent :meth:`run_batch` call.
    last_batch_report: Optional["BatchReport"] = field(default=None, init=False)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, database: ImageDatabase, minimum_overlap_ratio: float = 0.0) -> "QueryEngine":
        """Build the auxiliary indexes for every image already in the database."""
        engine = cls(
            database=database,
            signature_filter=SignatureFilter(minimum_overlap_ratio=minimum_overlap_ratio),
        )
        for record in database:
            engine.signature_filter.add_picture(record.image_id, record.picture)
            engine.inverted_index.add_picture(record.image_id, record.picture)
        return engine

    def add_picture(self, picture: SymbolicPicture, image_id: Optional[str] = None) -> str:
        """Add a picture to the database and all auxiliary indexes.

        Returns:
            The stored image id.

        Raises:
            repro.index.database.DatabaseError: if the id is missing or
                already stored.
        """
        record = self.database.add_picture(picture, image_id)
        self.signature_filter.add_picture(record.image_id, record.picture)
        self.inverted_index.add_picture(record.image_id, record.picture)
        self.score_cache.invalidate_image(record.image_id)
        return record.image_id

    def remove_picture(self, image_id: str) -> None:
        """Remove a picture from the database and all auxiliary indexes.

        Raises:
            repro.index.database.DatabaseError: if no image with
                ``image_id`` is stored.
        """
        self.database.remove_picture(image_id)
        self.signature_filter.remove_picture(image_id)
        self.inverted_index.remove_picture(image_id)
        self.score_cache.invalidate_image(image_id)

    def add_object(self, image_id: str, label: str, mbr: Rectangle) -> ImageRecord:
        """Dynamically add one icon to a stored image, refreshing all indexes."""
        record = self.database.add_object(image_id, label, mbr)
        self.signature_filter.update_picture(image_id, record.picture)
        self.inverted_index.update_picture(image_id, record.picture)
        self.score_cache.invalidate_image(image_id)
        return record

    def remove_object(self, image_id: str, identifier: str) -> ImageRecord:
        """Dynamically remove one icon from a stored image, refreshing all indexes."""
        record = self.database.remove_object(image_id, identifier)
        self.signature_filter.update_picture(image_id, record.picture)
        self.inverted_index.update_picture(image_id, record.picture)
        self.score_cache.invalidate_image(image_id)
        return record

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def candidate_ids(self, query: Query) -> List[str]:
        """Shortlist the images worth scoring for ``query``.

        The inverted index admits images sharing at least
        ``query.minimum_shared_labels`` icon labels with the query, then the
        signature filter prunes by label-multiset overlap.  With
        ``query.use_filters`` off (or a label-less query) every stored image
        is a candidate.

        Returns:
            Candidate image ids, in the deterministic order they will be
            scored.
        """
        if not query.use_filters:
            return self.database.image_ids
        labels = set(query.picture.labels)
        if not labels:
            return self.database.image_ids
        candidates = self.inverted_index.candidates(
            labels, minimum_shared=query.minimum_shared_labels
        )
        admitted = self.signature_filter.filter(query.picture, sorted(candidates))
        return admitted

    def _score(self, query_bestring: BEString2D, candidate: BEString2D, query: Query) -> SimilarityResult:
        if len(query.transformations) == 1:
            return similarity(
                query_bestring, candidate, query.policy, query.transformations[0]
            )
        return invariant_similarity(
            query_bestring, candidate, query.policy, query.transformations
        )

    def execute(self, query: Query) -> List[RankedResult]:
        """Run a query and return ranked results.

        Returns:
            :class:`~repro.index.ranking.RankedResult` entries sorted by
            descending score (ties broken by image id), already cut to the
            query's limit and minimum score.
        """
        query_bestring = encode_picture(query.picture)
        scored: List[Tuple[str, SimilarityResult]] = []
        for image_id in self.candidate_ids(query):
            record = self.database.get(image_id)
            result = self._score(query_bestring, record.bestring, query)
            scored.append((image_id, result))
        return rank_results(scored, limit=query.limit, minimum_score=query.minimum_score)

    def run_batch(
        self,
        queries: Sequence[Query],
        options: Optional["BatchOptions"] = None,
        **overrides,
    ) -> List[List[RankedResult]]:
        """Run many queries as one batch (see :mod:`repro.index.batch`).

        Shared encoding/shortlist work is deduplicated, per-(query, image)
        scores are memoised in :attr:`score_cache`, and cache misses are
        evaluated on a worker pool.  Results are identical -- including
        tie-break ordering -- to calling :meth:`execute` per query.  Keyword
        overrides (``workers=8``, ``executor="process"``, ...) are applied on
        top of ``options``.
        """
        from repro.index.batch import BatchOptions, BatchQueryEngine

        base = options or BatchOptions()
        if overrides:
            base = replace(base, **overrides)
        batch = BatchQueryEngine(engine=self, options=base)
        results = batch.run(queries)
        self.last_batch_report = batch.last_report
        return results

    def search(
        self,
        picture: SymbolicPicture,
        limit: Optional[int] = 10,
        policy: SimilarityPolicy = DEFAULT_POLICY,
        invariant: bool = False,
    ) -> List[RankedResult]:
        """Convenience wrapper around :meth:`execute` for the common case."""
        transformations = tuple(Transformation) if invariant else (Transformation.IDENTITY,)
        query = Query(
            picture=picture,
            policy=policy,
            transformations=transformations,
            limit=limit,
        )
        return self.execute(query)
