"""The query engine: the unified retrieval pipeline over an image database.

The engine ties the pieces together the way the paper's demonstration system
does: the query picture is encoded once, candidate images are shortlisted by
the inverted index and the two-stage signature shortlist
(:mod:`repro.index.shortlist` — hashed label bitmaps, then relation-pair
score bounds against the query's ``minimum_score``), each surviving candidate
is scored with the modified-LCS similarity evaluation (optionally over all
rotations/reflections of the query), and the results are returned ranked.

Since the query-API redesign every entry point converges here:

* :meth:`QueryEngine.execute` (the serial path) and the batch scheduler
  (:mod:`repro.index.batch`) both consult the shared
  :class:`~repro.index.cache.ScoreCache`, so an identical repeated query --
  serial or batched -- never pays the LCS dynamic program twice.
* :meth:`QueryEngine.execute_spec` runs a full declarative
  :class:`~repro.index.spec.QuerySpec` -- similarity, relation predicates, or
  both -- recording a :class:`~repro.index.spec.QueryTrace` of shortlist
  admissions and cache hits for ``explain`` output.  Predicate clauses are
  pruned through the inverted index instead of scanning every stored record.
"""

from __future__ import annotations

import threading
from bisect import insort
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.bestring import BEString2D
from repro.core.construct import encode_picture
from repro.core.lcskernel import be_lcs_length_bitparallel
from repro.core.similarity import (
    DEFAULT_POLICY,
    SimilarityPolicy,
    SimilarityResult,
    invariant_similarity,
    invariant_similarity_score,
    similarity,
    similarity_score,
)
from repro.core.transforms import Transformation, canonical_transformations
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.index.cache import QueryKey, ScoreCache, query_score_key
from repro.index.database import ImageDatabase, ImageRecord
from repro.index.execution import (
    EXECUTOR_SHARD_PROCESS,
    KERNEL_BITPARALLEL,
    KERNEL_REFERENCE,
    STRATEGY_ANYTIME,
    STRATEGY_EXHAUSTIVE,
    ExecutionCounters,
    ExecutionOptions,
    PredicateCounters,
)
from repro.index.inverted import InvertedSymbolIndex
from repro.index.ranking import RankedResult, rank_results
from repro.index.shortlist import (
    DEFAULT_BITMAP_WIDTH,
    REJECTION_SAMPLE_LIMIT,
    QuerySignature,
    ShortlistCounters,
    ShortlistOutcome,
    signature_for,
)
from repro.index.signature import SignatureFilter
from repro.index.spec import (
    STAGE_BITMAP_PRUNED,
    STAGE_BOUND_SKIPPED,
    STAGE_FULL_SCAN,
    STAGE_PREDICATE_EVALUATED,
    STAGE_PREDICATE_PRUNED,
    STAGE_RELATION_PRUNED,
    STAGE_SHORTLIST,
    CandidateTrace,
    QuerySpec,
    QueryTrace,
    SpecOutcome,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.index.batch import BatchOptions, BatchReport
    from repro.index.workers import GatherOutcome, ShardWorkerPool
    from repro.retrieval.predicates import GradedMatch, PredicateMatch


class NullRWLock:
    """The no-op stand-in for a readers-writer lock (single-threaded use).

    :class:`QueryEngine` brackets every read path in ``read_locked()`` and
    every mutation in ``write_locked()``.  By default those grants cost one
    no-op context manager each, keeping the library path lock-free; the
    retrieval service installs a real
    :class:`repro.service.rwlock.ReadWriteLock` (via
    :meth:`repro.retrieval.system.RetrievalSystem.enable_concurrent_access`)
    to make the same code paths safe under concurrent readers and writers.
    """

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Shared grant: a no-op."""
        yield

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Exclusive grant: a no-op."""
        yield


@dataclass(frozen=True)
class Query:
    """A similarity query.

    ``transformations`` selects the transformation-invariant mode: with more
    than one entry the best-scoring variant of the query is used per image.
    ``use_filters`` disables the candidate pruning (used by the ablation
    benchmark); ``minimum_shared_labels`` and ``minimum_score`` tune the
    shortlist and the final cut-off.  ``use_cache=False`` bypasses the score
    cache for this query only (every candidate is re-scored and nothing is
    memoised).

    ``transformations`` is canonicalised on construction (deduplicated,
    ordered by enum definition with ``IDENTITY`` first): the evaluated *set*
    is what matters, tie-breaks always resolve to the earliest canonical
    transformation, and the score cache sees one key per set regardless of
    how the caller ordered it.
    """

    picture: SymbolicPicture
    policy: SimilarityPolicy = DEFAULT_POLICY
    transformations: Tuple[Transformation, ...] = (Transformation.IDENTITY,)
    limit: Optional[int] = None
    minimum_score: float = 0.0
    minimum_shared_labels: int = 1
    use_filters: bool = True
    use_cache: bool = True
    #: Execution overrides (kernel, strategy, ...); ``None`` fields inherit
    #: the engine's defaults.  ``execution.shortlist`` / ``execution.cache``
    #: take precedence over the legacy ``use_filters`` / ``use_cache`` fields
    #: (which they overwrite on construction, keeping every legacy reader —
    #: including the batch scheduler's dedup key — consistent).
    execution: Optional[ExecutionOptions] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "transformations", canonical_transformations(self.transformations)
        )
        if self.execution is not None:
            if self.execution.shortlist is not None:
                object.__setattr__(self, "use_filters", self.execution.shortlist)
            if self.execution.cache is not None:
                object.__setattr__(self, "use_cache", self.execution.cache)

    @classmethod
    def exact(cls, picture: SymbolicPicture, **kwargs) -> "Query":
        """Query for the picture as-is (no transformation invariance)."""
        return cls(picture=picture, **kwargs)

    @classmethod
    def invariant(cls, picture: SymbolicPicture, **kwargs) -> "Query":
        """Query over all rotations and reflections of the picture."""
        return cls(picture=picture, transformations=tuple(Transformation), **kwargs)


@dataclass
class QueryEngine:
    """Executes :class:`Query` objects against an :class:`ImageDatabase`."""

    database: ImageDatabase
    #: Legacy label-multiset filter.  The hot query path reads only its
    #: ``minimum_overlap_ratio`` (the threshold itself is enforced through
    #: the two-stage shortlist's bitmap/exact overlap); the per-image
    #: registry is still maintained for the standalone/ablation API
    #: (``filter()``/``scored()``) and existing callers.
    signature_filter: SignatureFilter = field(default_factory=SignatureFilter)
    inverted_index: InvertedSymbolIndex = field(default_factory=InvertedSymbolIndex)
    #: Memoised per-(query, image) similarity results, shared with the batch
    #: subsystem (:mod:`repro.index.batch`) and invalidated on every mutation.
    score_cache: ScoreCache = field(default_factory=ScoreCache)
    #: Width (bits) of the hashed label bitmaps in the two-stage shortlist
    #: (see :mod:`repro.index.shortlist`); tunable via ``repro convert``.
    bitmap_width: int = DEFAULT_BITMAP_WIDTH
    #: Cumulative two-stage shortlist counters (surfaced by the service
    #: ``/stats`` endpoint).
    shortlist_counters: ShortlistCounters = field(default_factory=ShortlistCounters)
    #: Engine-wide execution defaults; per-query
    #: :attr:`Query.execution` overrides overlay these, and unset fields fall
    #: back to :data:`repro.index.execution.DEFAULT_EXECUTION`.
    execution: ExecutionOptions = field(default_factory=ExecutionOptions)
    #: Cumulative branch-and-bound counters (surfaced by the service
    #: ``/stats`` endpoint alongside :attr:`shortlist_counters`).
    execution_counters: ExecutionCounters = field(default_factory=ExecutionCounters)
    #: Cumulative predicate-stage counters (evaluated vs label-pruned images;
    #: surfaced by the service ``/stats`` ``predicates`` block).
    predicate_counters: PredicateCounters = field(default_factory=PredicateCounters)
    #: Readers-writer lock bracketing every query (shared grant) and mutation
    #: (exclusive grant).  A no-op by default; the retrieval service swaps in
    #: a real :class:`repro.service.rwlock.ReadWriteLock` so concurrent
    #: queries see a consistent snapshot and mutations (database + auxiliary
    #: indexes + cache invalidation) are atomic.
    lock: NullRWLock = field(default_factory=NullRWLock)
    #: Scheduler report of the most recent :meth:`run_batch` call.
    last_batch_report: Optional["BatchReport"] = field(default=None, init=False)
    #: Sharded-directory path the shard workers may lazy-load their slices
    #: from (O(shard-slice) warm starts); set by loaders that know the
    #: database's on-disk layout.  Cleared internally after the first
    #: mutation, since disk may then lag the in-memory state.
    shard_source: Optional[Path] = field(default=None, repr=False)
    #: The live :class:`~repro.index.workers.ShardWorkerPool` (created
    #: lazily by the first ``executor="shard_process"`` query, torn down on
    #: every mutation so workers never serve a stale slice).
    _shard_pool: Optional["ShardWorkerPool"] = field(default=None, init=False, repr=False)
    _shard_pool_guard: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False
    )
    #: Whether :attr:`shard_source` still matches the in-memory database
    #: (no mutations since the load that set it).
    _shard_source_clean: bool = field(default=True, init=False, repr=False)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: ImageDatabase,
        minimum_overlap_ratio: float = 0.0,
        bitmap_width: Optional[int] = None,
        execution: Optional[ExecutionOptions] = None,
    ) -> "QueryEngine":
        """Build the auxiliary indexes for every image already in the database.

        Shortlist signatures are materialised up front, so the first query
        pays no index-construction latency.  ``bitmap_width=None`` adopts the
        width of the database's persisted signatures (so a database tuned
        with ``repro convert --bitmap-width`` warm-starts without any
        recomputation), falling back to :data:`DEFAULT_BITMAP_WIDTH` when no
        signature is stored.  ``execution`` sets the engine-wide execution
        defaults (kernel, strategy, ...) every query inherits.
        """
        if bitmap_width is None:
            bitmap_width = next(
                (
                    record.signature.width
                    for record in database
                    if record.signature is not None
                ),
                DEFAULT_BITMAP_WIDTH,
            )
        engine = cls(
            database=database,
            signature_filter=SignatureFilter(minimum_overlap_ratio=minimum_overlap_ratio),
            bitmap_width=bitmap_width,
            execution=execution if execution is not None else ExecutionOptions(),
        )
        for record in database:
            engine.signature_filter.add_picture(record.image_id, record.picture)
            engine.inverted_index.add_picture(record.image_id, record.picture)
            signature_for(record, bitmap_width)
        return engine

    def add_picture(self, picture: SymbolicPicture, image_id: Optional[str] = None) -> str:
        """Add a picture to the database and all auxiliary indexes.

        Returns:
            The stored image id.

        Raises:
            repro.index.database.DatabaseError: if the id is missing or
                already stored.
        """
        with self.lock.write_locked():
            record = self.database.add_picture(picture, image_id)
            self.signature_filter.add_picture(record.image_id, record.picture)
            self.inverted_index.add_picture(record.image_id, record.picture)
            # Materialise at this engine's width so an immediate save (the
            # service persists on every mutation) never writes a signature at
            # a width different from the rest of the database.
            signature_for(record, self.bitmap_width)
            self.score_cache.invalidate_image(record.image_id)
            self._invalidate_shard_pool()
            return record.image_id

    def remove_picture(self, image_id: str) -> None:
        """Remove a picture from the database and all auxiliary indexes.

        Raises:
            repro.index.database.DatabaseError: if no image with
                ``image_id`` is stored.
        """
        with self.lock.write_locked():
            self.database.remove_picture(image_id)
            self.signature_filter.remove_picture(image_id)
            self.inverted_index.remove_picture(image_id)
            self.score_cache.invalidate_image(image_id)
            self._invalidate_shard_pool()

    def add_object(self, image_id: str, label: str, mbr: Rectangle) -> ImageRecord:
        """Dynamically add one icon to a stored image, refreshing all indexes.

        The record rewrite, both auxiliary-index refreshes and the score-cache
        invalidation happen under one exclusive grant, so a concurrent query
        can never rank against the new record through stale cached scores or
        stale postings.
        """
        with self.lock.write_locked():
            record = self.database.add_object(image_id, label, mbr)
            self.signature_filter.update_picture(image_id, record.picture)
            self.inverted_index.update_picture(image_id, record.picture)
            signature_for(record, self.bitmap_width)
            self.score_cache.invalidate_image(image_id)
            self._invalidate_shard_pool()
            return record

    def remove_object(self, image_id: str, identifier: str) -> ImageRecord:
        """Dynamically remove one icon from a stored image, refreshing all indexes.

        Atomic under the write lock exactly like :meth:`add_object`.
        """
        with self.lock.write_locked():
            record = self.database.remove_object(image_id, identifier)
            self.signature_filter.update_picture(image_id, record.picture)
            self.inverted_index.update_picture(image_id, record.picture)
            signature_for(record, self.bitmap_width)
            self.score_cache.invalidate_image(image_id)
            self._invalidate_shard_pool()
            return record

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def candidate_ids(self, query: Query) -> List[str]:
        """Shortlist the images worth scoring for ``query``.

        Convenience wrapper over :meth:`shortlist` returning only the ids.

        Returns:
            Candidate image ids, in the deterministic order they will be
            scored.
        """
        return self.shortlist(query).candidates

    def shortlist(
        self, query: Query, query_bestring: Optional[BEString2D] = None
    ) -> ShortlistOutcome:
        """Run the two-stage shortlist for ``query`` under a shared grant.

        ``query_bestring`` lets callers that already encoded the query (the
        batch scheduler builds it for the cache key) avoid a second
        ``encode_picture`` pass.

        The inverted index admits images sharing at least
        ``query.minimum_shared_labels`` icon labels with the query; the
        two-stage signature shortlist (:mod:`repro.index.shortlist`) then
        rejects candidates whose score upper bound cannot clear
        ``query.minimum_score`` — stage 1 from the hashed label bitmaps,
        stage 2 from the relation-pair signatures.  With ``query.use_filters``
        off (or a label-less query) every stored image is a candidate.

        Returns:
            The full :class:`~repro.index.shortlist.ShortlistOutcome`,
            including per-stage rejection counts and a sampled rejection map
            for ``explain`` output.
        """
        with self.lock.read_locked():
            return self._shortlist(query, query_bestring)

    def _shortlist(
        self,
        query: Query,
        query_bestring: Optional[BEString2D] = None,
        collect_bounds: bool = False,
    ) -> ShortlistOutcome:
        """Shortlist implementation (callers hold the shared grant).

        ``collect_bounds`` additionally records the stage-2 score upper bound
        of every *admitted* candidate in :attr:`ShortlistOutcome.bounds` (the
        anytime strategy orders candidates and terminates on them).  The
        admitted set is identical either way; full-scan passes (filters off or
        a label-less query) have no signatures to bound with and leave
        ``bounds`` as ``None``.
        """
        if not query.use_filters:
            return ShortlistOutcome(self.database.image_ids, STAGE_FULL_SCAN)
        labels = set(query.picture.labels)
        if not labels:
            return ShortlistOutcome(self.database.image_ids, STAGE_FULL_SCAN)
        candidates = self.inverted_index.candidates(
            labels, minimum_shared=query.minimum_shared_labels
        )
        ordered = sorted(candidates)
        threshold = self.signature_filter.minimum_overlap_ratio
        minimum_score = query.minimum_score
        if threshold <= 0.0 and minimum_score <= 0.0 and not collect_bounds:
            # Nothing to bound against: every label-sharer is worth scoring.
            outcome = ShortlistOutcome(ordered, STAGE_SHORTLIST, len(candidates))
            self.shortlist_counters.record(outcome)
            return outcome
        if query_bestring is None:
            query_bestring = encode_picture(query.picture)
        query_signature = QuerySignature(
            query_bestring,
            query.picture.labels,
            # The per-transformation variants feed only the score bounds; on
            # a threshold-only pass (minimum_score == 0) skip building them —
            # unless the caller wants per-candidate bounds, which must
            # dominate the best score over *every* transformation.
            query.transformations
            if minimum_score > 0.0 or collect_bounds
            else (Transformation.IDENTITY,),
            self.bitmap_width,
        )
        total = query_signature.total_labels
        outcome = ShortlistOutcome([], STAGE_SHORTLIST, len(candidates))
        if collect_bounds:
            outcome.bounds = {}

        def reject(image_id: str, stage: str, bound: float) -> None:
            if stage == STAGE_BITMAP_PRUNED:
                outcome.bitmap_rejected += 1
            else:
                outcome.relation_rejected += 1
            if len(outcome.rejections) < REJECTION_SAMPLE_LIMIT:
                outcome.rejections[image_id] = stage
                outcome.rejection_bounds[image_id] = bound

        for image_id in ordered:
            candidate = signature_for(self.database.get(image_id), self.bitmap_width)
            # Stage 1 is the label-overlap stage: the bitmap bound settles
            # most candidates, the exact multiset overlap settles the rest.
            # Both threshold rejections are attributed here (the recorded
            # bound is the failing overlap ratio); only the relation-pair
            # score bound below counts as a stage-2 rejection.
            overlap_bound = query_signature.overlap_upper_bound(candidate)
            if threshold > 0.0 and total and overlap_bound / total < threshold:
                reject(image_id, STAGE_BITMAP_PRUNED, overlap_bound / total)
                continue
            if minimum_score > 0.0:
                coarse = query_signature.score_upper_bound(
                    candidate, overlap_bound, query.policy
                )
                if coarse < minimum_score:
                    reject(image_id, STAGE_BITMAP_PRUNED, coarse)
                    continue
            overlap = query_signature.exact_overlap(candidate)
            if threshold > 0.0 and total and overlap / total < threshold:
                reject(image_id, STAGE_BITMAP_PRUNED, overlap / total)
                continue
            # Stage 2: the relation-pair conflict bound on the exact overlap.
            if minimum_score > 0.0 or collect_bounds:
                bound = query_signature.score_upper_bound(
                    candidate, overlap, query.policy, with_conflicts=True
                )
                if minimum_score > 0.0 and bound < minimum_score:
                    reject(image_id, STAGE_RELATION_PRUNED, bound)
                    continue
                if outcome.bounds is not None:
                    outcome.bounds[image_id] = bound
            outcome.candidates.append(image_id)
        self.shortlist_counters.record(outcome)
        return outcome

    def _score(self, query_bestring: BEString2D, candidate: BEString2D, query: Query) -> SimilarityResult:
        if len(query.transformations) == 1:
            return similarity(
                query_bestring, candidate, query.policy, query.transformations[0]
            )
        return invariant_similarity(
            query_bestring, candidate, query.policy, query.transformations
        )

    def resolve_execution(self, query: Query) -> ExecutionOptions:
        """The fully-resolved execution options governing ``query``.

        The engine's defaults, overlaid with the query's per-query overrides,
        with any remaining unset field filled from
        :data:`repro.index.execution.DEFAULT_EXECUTION`.
        """
        return self.execution.overlaid(query.execution).resolved()

    @staticmethod
    def _kernel_for(execution: ExecutionOptions, policy: SimilarityPolicy) -> str:
        """The kernel that will actually run.

        Boundary-counting policies need the LCS string itself, which the
        length-only bit-parallel kernel cannot produce — they silently fall
        back to the reference evaluation (and the trace reports that).
        """
        if execution.kernel == KERNEL_BITPARALLEL and not policy.count_boundaries_only:
            return KERNEL_BITPARALLEL
        return KERNEL_REFERENCE

    def _kernel_score(
        self, query_bestring: BEString2D, candidate: BEString2D, query: Query
    ) -> float:
        """Length-only score via the bit-parallel kernel.

        Bit-identical to ``self._score(...).score`` — both run the same
        normalise/combine arithmetic on the same LCS lengths.
        """
        if len(query.transformations) == 1:
            return similarity_score(
                query_bestring,
                candidate,
                query.policy,
                query.transformations[0],
                be_lcs_length_bitparallel,
            )
        score, _ = invariant_similarity_score(
            query_bestring,
            candidate,
            query.policy,
            query.transformations,
            be_lcs_length_bitparallel,
        )
        return score

    def _score_candidates(
        self,
        query: Query,
        trace: QueryTrace,
        allowed: Optional[Set[str]] = None,
        prepared: Optional[Tuple[BEString2D, ShortlistOutcome]] = None,
    ) -> List[Tuple[str, SimilarityResult]]:
        """Score the shortlisted candidates, consulting the score cache.

        This is the single scoring entry point both :meth:`execute` and
        :meth:`execute_spec` share.  The query's resolved
        :class:`~repro.index.execution.ExecutionOptions` pick the scan
        (exhaustive or anytime branch-and-bound) and the LCS kernel; every
        combination returns pairs that rank byte-identically to the
        historical exhaustive/reference loop.  Hits and misses are recorded
        in ``trace``; computed full results are written back to the cache
        (unless ``query.use_cache`` is off).

        ``allowed`` (combined mode) restricts scoring to a pre-filtered id
        set; ``prepared`` passes an already-computed ``(query BE-string,
        shortlist outcome)`` pair so combined mode does not shortlist twice.
        """
        execution = self.resolve_execution(query)
        kernel = self._kernel_for(execution, query.policy)
        if prepared is None:
            query_bestring = encode_picture(query.picture)
            outcome = self._shortlist(
                query,
                query_bestring,
                collect_bounds=execution.strategy == STRATEGY_ANYTIME,
            )
        else:
            query_bestring, outcome = prepared
        cache_key = query_score_key(query_bestring, query.policy, query.transformations)
        candidates, stage = outcome.candidates, outcome.stage
        if allowed is not None:
            candidates = [image_id for image_id in candidates if image_id in allowed]
        trace.database_size = len(self.database)
        trace.inverted_candidates = outcome.inverted_candidates
        trace.shortlisted = len(candidates)
        trace.bitmap_pruned = outcome.bitmap_rejected
        trace.relation_pruned = outcome.relation_rejected
        trace.kernel = kernel
        for image_id, rejecting_stage in outcome.rejections.items():
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=rejecting_stage,
                score_bound=outcome.rejection_bounds.get(image_id),
            )
        # A full-scan pass has no signatures, hence no bounds to order by:
        # the anytime strategy degrades to the exhaustive scan (and the trace
        # reports what actually ran).
        anytime = execution.strategy == STRATEGY_ANYTIME and outcome.bounds is not None
        trace.strategy = STRATEGY_ANYTIME if anytime else STRATEGY_EXHAUSTIVE
        if anytime:
            scored = self._score_anytime(
                query, trace, query_bestring, cache_key, candidates, stage,
                outcome.bounds, kernel,
            )
        elif kernel == KERNEL_BITPARALLEL:
            scored = self._score_exhaustive_kernel(
                query, trace, query_bestring, cache_key, candidates, stage
            )
        else:
            scored = self._score_exhaustive(
                query, trace, query_bestring, cache_key, candidates, stage
            )
        self.execution_counters.record(
            admitted=len(candidates),
            examined=trace.candidates_examined,
            anytime=anytime,
        )
        return scored

    def _score_exhaustive(
        self,
        query: Query,
        trace: QueryTrace,
        query_bestring: BEString2D,
        cache_key: QueryKey,
        candidates: List[str],
        stage: str,
    ) -> List[Tuple[str, SimilarityResult]]:
        """The historical scoring loop: full evaluation of every candidate."""
        scored: List[Tuple[str, SimilarityResult]] = []
        for image_id in candidates:
            cached = self.score_cache.get(cache_key, image_id) if query.use_cache else None
            if cached is not None:
                result = cached
                trace.cache_hits += 1
            else:
                record = self.database.get(image_id)
                result = self._score(query_bestring, record.bestring, query)
                trace.cache_misses += 1
                if query.use_cache:
                    self.score_cache.put(cache_key, image_id, result)
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=stage,
                cache_hit=(cached is not None) if query.use_cache else None,
            )
            scored.append((image_id, result))
        trace.candidates_examined = len(scored)
        return scored

    def _score_exhaustive_kernel(
        self,
        query: Query,
        trace: QueryTrace,
        query_bestring: BEString2D,
        cache_key: QueryKey,
        candidates: List[str],
        stage: str,
    ) -> List[Tuple[str, SimilarityResult]]:
        """Exhaustive scan scored with the length-only bit-parallel kernel.

        Every candidate's score is confirmed, but only the final survivors of
        the limit/minimum-score cut pay the reference DP that materialises a
        full :class:`SimilarityResult` (see :meth:`_materialize`).
        """
        confirmed: List[Tuple[str, float]] = []
        materialized: Dict[str, SimilarityResult] = {}
        for image_id in candidates:
            cached = self.score_cache.get(cache_key, image_id) if query.use_cache else None
            if cached is not None:
                materialized[image_id] = cached
                score = cached.score
                trace.cache_hits += 1
            else:
                record = self.database.get(image_id)
                score = self._kernel_score(query_bestring, record.bestring, query)
                trace.cache_misses += 1
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=stage,
                cache_hit=(cached is not None) if query.use_cache else None,
            )
            confirmed.append((image_id, score))
        trace.candidates_examined = len(confirmed)
        return self._materialize(query, query_bestring, cache_key, confirmed, materialized)

    def _score_anytime(
        self,
        query: Query,
        trace: QueryTrace,
        query_bestring: BEString2D,
        cache_key: QueryKey,
        candidates: List[str],
        stage: str,
        bounds: Dict[str, float],
        kernel: str,
    ) -> List[Tuple[str, SimilarityResult]]:
        """Branch-and-bound top-k: descending-bound order, early termination.

        Candidates are visited in ``(-bound, image_id)`` order and the final
        ranking sorts by ``(-score, image_id)``.  Since ``score <= bound``, a
        candidate's ranking key can never sort before its bound key — so the
        moment the k-th best *confirmed* ranking key sorts at-or-before the
        next candidate's bound key, no unvisited candidate can enter the
        top-k or change its internal order, and the scan stops.  Ties are
        safe because both keys carry the (distinct) image id.  Confirmed
        scores below ``minimum_score`` never occupy one of the k slots.
        """
        minimum_score = query.minimum_score
        limit = query.limit
        order = sorted(candidates, key=lambda image_id: (-bounds[image_id], image_id))
        confirmed_keys: List[Tuple[float, str]] = []
        confirmed: List[Tuple[str, float]] = []
        materialized: Dict[str, SimilarityResult] = {}
        examined = 0
        for position, image_id in enumerate(order):
            bound = bounds[image_id]
            if limit is not None and len(confirmed_keys) >= limit:
                if limit == 0 or (-bound, image_id) >= confirmed_keys[limit - 1]:
                    trace.bound_cutoff = bound
                    self._record_bound_skips(trace, order[position:], bounds)
                    break
            cached = self.score_cache.get(cache_key, image_id) if query.use_cache else None
            if cached is not None:
                materialized[image_id] = cached
                score = cached.score
                trace.cache_hits += 1
            else:
                record = self.database.get(image_id)
                if kernel == KERNEL_BITPARALLEL:
                    score = self._kernel_score(query_bestring, record.bestring, query)
                else:
                    result = self._score(query_bestring, record.bestring, query)
                    materialized[image_id] = result
                    if query.use_cache:
                        self.score_cache.put(cache_key, image_id, result)
                    score = result.score
                trace.cache_misses += 1
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=stage,
                cache_hit=(cached is not None) if query.use_cache else None,
            )
            examined += 1
            confirmed.append((image_id, score))
            if score >= minimum_score:
                insort(confirmed_keys, (-score, image_id))
        trace.candidates_examined = examined
        trace.bound_skipped = len(order) - examined
        return self._materialize(query, query_bestring, cache_key, confirmed, materialized)

    def _record_bound_skips(
        self, trace: QueryTrace, skipped: List[str], bounds: Dict[str, float]
    ) -> None:
        """Sample bound-skipped candidates into the trace for ``explain``."""
        for image_id in skipped[:REJECTION_SAMPLE_LIMIT]:
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=STAGE_BOUND_SKIPPED,
                score_bound=bounds[image_id],
            )

    def _materialize(
        self,
        query: Query,
        query_bestring: BEString2D,
        cache_key: QueryKey,
        confirmed: List[Tuple[str, float]],
        materialized: Dict[str, SimilarityResult],
    ) -> List[Tuple[str, SimilarityResult]]:
        """Full :class:`SimilarityResult` pairs for the ranking's survivors.

        ``confirmed`` holds length-only ``(image_id, score)`` pairs.  Only
        the survivors of the query's minimum-score/limit cut are materialised
        with the reference evaluation — the kernel's floats are bit-identical
        to ``SimilarityResult.score``, so selecting survivors here yields the
        same set and order :func:`~repro.index.ranking.rank_results` would
        pick from full results.  Freshly materialised results are written to
        the score cache exactly like exhaustively-computed ones.
        """
        survivors = [
            (image_id, score)
            for image_id, score in confirmed
            if score >= query.minimum_score
        ]
        survivors.sort(key=lambda pair: (-pair[1], pair[0]))
        if query.limit is not None:
            survivors = survivors[: query.limit]
        scored: List[Tuple[str, SimilarityResult]] = []
        for image_id, _ in survivors:
            result = materialized.get(image_id)
            if result is None:
                record = self.database.get(image_id)
                result = self._score(query_bestring, record.bestring, query)
                if query.use_cache:
                    self.score_cache.put(cache_key, image_id, result)
            scored.append((image_id, result))
        return scored

    def execute(self, query: Query) -> List[RankedResult]:
        """Run a query and return ranked results.

        The serial path shares the batch subsystem's score cache: repeated
        identical queries (same picture content, policy and transformation
        set) are answered from memoised similarity results instead of
        re-running the LCS evaluation, with rankings guaranteed identical.

        Returns:
            :class:`~repro.index.ranking.RankedResult` entries sorted by
            descending score (ties broken by image id), already cut to the
            query's limit and minimum score.
        """
        return self.execute_traced(query)[0]

    def execute_traced(self, query: Query) -> Tuple[List[RankedResult], QueryTrace]:
        """Like :meth:`execute` but also returns the execution trace."""
        trace = QueryTrace(mode="similarity")
        with self.lock.read_locked():
            scored = self._score_candidates(query, trace)
        ranked = rank_results(scored, limit=query.limit, minimum_score=query.minimum_score)
        return ranked, trace

    # ------------------------------------------------------------------
    # Declarative spec execution (the unified pipeline)
    # ------------------------------------------------------------------
    def execute_spec(self, spec: QuerySpec) -> SpecOutcome:
        """Run a declarative :class:`~repro.index.spec.QuerySpec`.

        Dispatches on the clauses present: similarity-only specs run the
        cache-aware scoring loop, predicate-only specs are pruned through the
        inverted index (images that cannot satisfy any predicate are
        synthesised as zero matches without evaluation), and combined specs
        keep only similarity results whose image satisfies **every**
        predicate.

        Returns:
            A :class:`~repro.index.spec.SpecOutcome` holding the final
            ranking, the execution trace, and (in combined mode) the
            per-image predicate evaluations.

        Raises:
            repro.index.spec.QuerySpecError: on a malformed spec.
        """
        spec.validate()
        execution = self.execution.overlaid(spec.execution).resolved()
        if execution.executor == EXECUTOR_SHARD_PROCESS:
            # Scatter-gather: the read grant freezes the snapshot the
            # workers' slices were built from (mutations invalidate the
            # pool under the write lock, so a pool obtained here is
            # guaranteed to mirror the current in-memory database).
            with self.lock.read_locked():
                return self._execute_sharded(spec, execution)
        # One shared grant spans the whole spec (similarity scoring plus any
        # predicate evaluation): concurrent mutations cannot interleave
        # between the clauses, so the outcome always reflects one snapshot.
        with self.lock.read_locked():
            if not spec.has_similarity_clause:
                return self._execute_predicate_spec(spec)
            if not spec.has_predicate_clause:
                ranked, trace = self.execute_traced(spec.to_query())
                return SpecOutcome(spec=spec, results=ranked, trace=trace)
            if spec.has_graded_predicates:
                return self._execute_graded_combined_spec(spec)
            return self._execute_combined_spec(spec)

    def _evaluate_predicates(
        self,
        spec: QuerySpec,
        trace: QueryTrace,
        restrict_to: Optional[List[str]] = None,
    ) -> Dict[str, "PredicateMatch"]:
        """Evaluate the predicate clause over the database, with label pruning.

        An image can only satisfy a predicate when it contains both the
        subject and the target label, so the inverted index narrows the
        expensive boundary-rank evaluation to images where at least one
        predicate has both labels present.  Every other stored image is known
        to satisfy nothing and gets a synthesised zero match -- identical to
        what full evaluation would return, at postings-lookup cost.

        ``restrict_to`` (combined mode) limits evaluation to the similarity
        candidates instead of the whole database.
        """
        from repro.retrieval.predicates import PredicateMatch, evaluate_predicates

        predicates = list(spec.predicates)
        evaluable: set = set()
        for predicate in predicates:
            subjects = self.inverted_index.images_with_label(predicate.subject)
            if not subjects:
                continue
            targets = self.inverted_index.images_with_label(predicate.target)
            evaluable.update(subjects & targets)
        trace.database_size = len(self.database)
        universe = self.database.image_ids if restrict_to is None else restrict_to
        matches: Dict[str, PredicateMatch] = {}
        for image_id in universe:
            if image_id in evaluable:
                record = self.database.get(image_id)
                matches[image_id] = evaluate_predicates(
                    record.bestring, predicates, image_id=image_id
                )
                trace.predicate_evaluated += 1
                stage = STAGE_PREDICATE_EVALUATED
            else:
                matches[image_id] = PredicateMatch(
                    image_id=image_id, satisfied=(), unsatisfied=tuple(predicates)
                )
                trace.predicate_pruned += 1
                stage = STAGE_PREDICATE_PRUNED
            existing = trace.candidates.get(image_id)
            if existing is None:
                trace.candidates[image_id] = CandidateTrace(image_id=image_id, stage=stage)
        self.predicate_counters.record(
            evaluated=trace.predicate_evaluated,
            pruned=trace.predicate_pruned,
            graded=False,
        )
        return matches

    def _evaluate_tree(
        self,
        spec: QuerySpec,
        trace: QueryTrace,
        restrict_to: Optional[List[str]] = None,
    ) -> Dict[str, "GradedMatch"]:
        """Evaluate the graded predicate tree, pruning by the label bound.

        The tree counterpart of :meth:`_evaluate_predicates`: for each image
        the sound degree upper bound derived from the inverted index's label
        postings (:func:`repro.index.shortlist.tree_degree_bound`) is checked
        first.  A bound of 0 proves every leaf degree is exactly 0 (crisp
        leaves over absent labels, no fail-open ``not``/``fuzzy`` on the
        path), so the image is settled with a synthesised zero match at
        postings-lookup cost — byte-identical to full evaluation.
        """
        from repro.index.shortlist import tree_degree_bound
        from repro.retrieval.predicates import evaluate_tree, zero_graded_match

        tree = spec.predicate_tree
        postings: Dict[str, Set[str]] = {}
        for leaf in tree.leaves():
            for label in (leaf.predicate.subject, leaf.predicate.target):
                if label not in postings:
                    postings[label] = self.inverted_index.images_with_label(label)
        trace.database_size = len(self.database)
        universe = self.database.image_ids if restrict_to is None else restrict_to
        matches: Dict[str, GradedMatch] = {}
        evaluated = pruned = 0
        for image_id in universe:
            bound = tree_degree_bound(
                tree, lambda label, _id=image_id: _id in postings[label]
            )
            if bound <= 0.0:
                matches[image_id] = zero_graded_match(tree, image_id)
                pruned += 1
                stage = STAGE_PREDICATE_PRUNED
            else:
                record = self.database.get(image_id)
                matches[image_id] = evaluate_tree(
                    record.bestring, tree, image_id=image_id
                )
                evaluated += 1
                stage = STAGE_PREDICATE_EVALUATED
            if image_id not in trace.candidates:
                trace.candidates[image_id] = CandidateTrace(image_id=image_id, stage=stage)
        trace.predicate_evaluated += evaluated
        trace.predicate_pruned += pruned
        self.predicate_counters.record(evaluated=evaluated, pruned=pruned, graded=True)
        return matches

    def _execute_predicate_spec(self, spec: QuerySpec) -> SpecOutcome:
        """Predicate-only execution: rank by satisfaction (fraction or degree).

        Crisp specs rank by the historical fraction-of-predicates-satisfied
        score; graded trees rank by the tree's satisfaction degree.  Both use
        the same ``(-score, image_id)`` order and minimum-score/limit cut.
        """
        trace = QueryTrace(mode="predicate")
        if spec.has_graded_predicates:
            matches = self._evaluate_tree(spec, trace)
        else:
            matches = self._evaluate_predicates(spec, trace)
        ranked = [
            match for match in matches.values() if match.score >= spec.minimum_score
        ]
        ranked.sort(key=lambda match: (-match.score, match.image_id))
        if spec.limit is not None:
            ranked = ranked[: spec.limit]
        return SpecOutcome(spec=spec, results=ranked, trace=trace, predicate_matches=matches)

    def _execute_combined_spec(self, spec: QuerySpec) -> SpecOutcome:
        """Similarity ranking post-filtered to full predicate matches."""
        trace = QueryTrace(mode="combined")
        query = spec.to_query()
        execution = self.resolve_execution(query)
        if execution.is_default_scoring:
            # The historical order — score everything, then filter — kept
            # verbatim for the default execution.
            scored = self._score_candidates(query, trace)
            matches = self._evaluate_predicates(
                spec, trace, restrict_to=[image_id for image_id, _ in scored]
            )
            surviving = [
                (image_id, result)
                for image_id, result in scored
                if matches[image_id].is_full_match
            ]
            ranked = rank_results(
                surviving, limit=spec.limit, minimum_score=spec.minimum_score
            )
            return SpecOutcome(
                spec=spec, results=ranked, trace=trace, predicate_matches=matches
            )
        # Non-default execution: evaluate the predicates over the shortlist
        # *first*, so the anytime bound cut-off (and the kernel's deferred
        # materialisation) see only images that can appear in the ranking.
        # Same candidate universe, same full-match filter, same final cut —
        # the ranking is identical to the historical order.
        query_bestring = encode_picture(query.picture)
        outcome = self._shortlist(
            query,
            query_bestring,
            collect_bounds=execution.strategy == STRATEGY_ANYTIME,
        )
        matches = self._evaluate_predicates(spec, trace, restrict_to=outcome.candidates)
        allowed = {
            image_id for image_id, match in matches.items() if match.is_full_match
        }
        scored = self._score_candidates(
            query, trace, allowed=allowed, prepared=(query_bestring, outcome)
        )
        ranked = rank_results(scored, limit=spec.limit, minimum_score=spec.minimum_score)
        return SpecOutcome(spec=spec, results=ranked, trace=trace, predicate_matches=matches)

    # ------------------------------------------------------------------
    # Graded predicate composition with the similarity score
    # ------------------------------------------------------------------
    @staticmethod
    def _compose(spec: QuerySpec, similarity_score: float, degree: float) -> float:
        """The spec's composition of a similarity score and a tree degree."""
        if spec.predicate_composition == "sum":
            blend = spec.predicate_blend
            return blend * similarity_score + (1.0 - blend) * degree
        return similarity_score * degree

    def _execute_graded_combined_spec(self, spec: QuerySpec) -> SpecOutcome:
        """Similarity composed with the graded predicate degree.

        The composed score — ``similarity * degree`` (product) or
        ``blend * similarity + (1 - blend) * degree`` (sum) — decides the
        minimum-score and limit cuts, so the similarity side runs uncut: the
        shortlist must not reject on the raw similarity bound (the ``sum``
        composition can rank a low-similarity image above a high-similarity
        one) and the ranking cut is applied to composed scores at the end.
        Every shortlist survivor's tree degree is evaluated *before* scoring
        (tree degrees cost boundary-rank lookups, the LCS evaluation costs a
        dynamic program), which also lets the anytime strategy order and
        terminate on composed bounds: ``compose`` is monotone in the
        similarity for a fixed degree, so ``compose(sim_bound, degree)``
        soundly bounds the composed score.
        """
        trace = QueryTrace(mode="combined")
        query = replace(spec.to_query(), minimum_score=0.0, limit=None)
        execution = self.resolve_execution(query)
        kernel = self._kernel_for(execution, query.policy)
        query_bestring = encode_picture(query.picture)
        outcome = self._shortlist(
            query,
            query_bestring,
            collect_bounds=execution.strategy == STRATEGY_ANYTIME,
        )
        matches = self._evaluate_tree(spec, trace, restrict_to=outcome.candidates)
        cache_key = query_score_key(query_bestring, query.policy, query.transformations)
        candidates, stage = outcome.candidates, outcome.stage
        trace.inverted_candidates = outcome.inverted_candidates
        trace.shortlisted = len(candidates)
        trace.bitmap_pruned = outcome.bitmap_rejected
        trace.relation_pruned = outcome.relation_rejected
        trace.kernel = kernel
        for image_id, rejecting_stage in outcome.rejections.items():
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=rejecting_stage,
                score_bound=outcome.rejection_bounds.get(image_id),
            )
        anytime = execution.strategy == STRATEGY_ANYTIME and outcome.bounds is not None
        trace.strategy = STRATEGY_ANYTIME if anytime else STRATEGY_EXHAUSTIVE
        if anytime:
            entries, materialized = self._score_graded_anytime(
                spec, query, trace, query_bestring, cache_key, candidates, stage,
                outcome.bounds, matches, kernel,
            )
        else:
            entries, materialized = self._score_graded_exhaustive(
                spec, query, trace, query_bestring, cache_key, candidates, stage,
                matches, kernel,
            )
        self.execution_counters.record(
            admitted=len(candidates),
            examined=trace.candidates_examined,
            anytime=anytime,
        )
        results = self._rank_graded(
            spec, query, query_bestring, cache_key, entries, materialized
        )
        return SpecOutcome(spec=spec, results=results, trace=trace, predicate_matches=matches)

    def _score_graded_exhaustive(
        self,
        spec: QuerySpec,
        query: Query,
        trace: QueryTrace,
        query_bestring: BEString2D,
        cache_key: QueryKey,
        candidates: List[str],
        stage: str,
        matches: Dict[str, "GradedMatch"],
        kernel: str,
    ) -> Tuple[List[Tuple[str, float]], Dict[str, SimilarityResult]]:
        """Confirm every candidate's composed score (both kernels).

        Returns ``(image_id, composed_score)`` pairs plus the full
        :class:`SimilarityResult` objects materialised along the way (all of
        them for the reference kernel; with the bit-parallel kernel only the
        final survivors are materialised later by :meth:`_rank_graded`).
        """
        entries: List[Tuple[str, float]] = []
        materialized: Dict[str, SimilarityResult] = {}
        for image_id in candidates:
            cached = self.score_cache.get(cache_key, image_id) if query.use_cache else None
            if cached is not None:
                materialized[image_id] = cached
                score = cached.score
                trace.cache_hits += 1
            else:
                record = self.database.get(image_id)
                if kernel == KERNEL_BITPARALLEL:
                    score = self._kernel_score(query_bestring, record.bestring, query)
                else:
                    result = self._score(query_bestring, record.bestring, query)
                    materialized[image_id] = result
                    if query.use_cache:
                        self.score_cache.put(cache_key, image_id, result)
                    score = result.score
                trace.cache_misses += 1
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=stage,
                cache_hit=(cached is not None) if query.use_cache else None,
            )
            entries.append((image_id, self._compose(spec, score, matches[image_id].degree)))
        trace.candidates_examined = len(entries)
        return entries, materialized

    def _score_graded_anytime(
        self,
        spec: QuerySpec,
        query: Query,
        trace: QueryTrace,
        query_bestring: BEString2D,
        cache_key: QueryKey,
        candidates: List[str],
        stage: str,
        bounds: Dict[str, float],
        matches: Dict[str, "GradedMatch"],
        kernel: str,
    ) -> Tuple[List[Tuple[str, float]], Dict[str, SimilarityResult]]:
        """Branch-and-bound over *composed* bounds (the graded analogue of
        :meth:`_score_anytime`).

        Each candidate's exact tree degree is already known, so
        ``compose(similarity_bound, degree)`` dominates its composed score
        (``compose`` is monotone in the similarity argument for both
        compositions).  The visit order, termination test and tie-break
        safety argument are exactly those of :meth:`_score_anytime`, with
        composed scores and composed bounds in place of raw similarity.
        """
        minimum_score = spec.minimum_score
        limit = spec.limit
        composed_bounds = {
            image_id: self._compose(spec, bounds[image_id], matches[image_id].degree)
            for image_id in candidates
        }
        order = sorted(candidates, key=lambda image_id: (-composed_bounds[image_id], image_id))
        confirmed_keys: List[Tuple[float, str]] = []
        entries: List[Tuple[str, float]] = []
        materialized: Dict[str, SimilarityResult] = {}
        examined = 0
        for position, image_id in enumerate(order):
            bound = composed_bounds[image_id]
            if limit is not None and len(confirmed_keys) >= limit:
                if limit == 0 or (-bound, image_id) >= confirmed_keys[limit - 1]:
                    trace.bound_cutoff = bound
                    self._record_bound_skips(trace, order[position:], composed_bounds)
                    break
            cached = self.score_cache.get(cache_key, image_id) if query.use_cache else None
            if cached is not None:
                materialized[image_id] = cached
                score = cached.score
                trace.cache_hits += 1
            else:
                record = self.database.get(image_id)
                if kernel == KERNEL_BITPARALLEL:
                    score = self._kernel_score(query_bestring, record.bestring, query)
                else:
                    result = self._score(query_bestring, record.bestring, query)
                    materialized[image_id] = result
                    if query.use_cache:
                        self.score_cache.put(cache_key, image_id, result)
                    score = result.score
                trace.cache_misses += 1
            trace.candidates[image_id] = CandidateTrace(
                image_id=image_id,
                stage=stage,
                cache_hit=(cached is not None) if query.use_cache else None,
            )
            examined += 1
            composed = self._compose(spec, score, matches[image_id].degree)
            entries.append((image_id, composed))
            if composed >= minimum_score:
                insort(confirmed_keys, (-composed, image_id))
        trace.candidates_examined = examined
        trace.bound_skipped = len(order) - examined
        return entries, materialized

    def _rank_graded(
        self,
        spec: QuerySpec,
        query: Query,
        query_bestring: BEString2D,
        cache_key: QueryKey,
        entries: List[Tuple[str, float]],
        materialized: Dict[str, SimilarityResult],
    ) -> List[RankedResult]:
        """Final composed ranking; materialise survivors lacking a full result.

        ``RankedResult.score`` carries the *composed* score (the ranking and
        merge key everywhere downstream, including the shard-worker gather);
        ``RankedResult.similarity`` keeps the full LCS evaluation for
        ``explain`` output.
        """
        survivors = [
            (image_id, composed)
            for image_id, composed in entries
            if composed >= spec.minimum_score
        ]
        survivors.sort(key=lambda pair: (-pair[1], pair[0]))
        if spec.limit is not None:
            survivors = survivors[: spec.limit]
        results: List[RankedResult] = []
        for rank, (image_id, composed) in enumerate(survivors, start=1):
            result = materialized.get(image_id)
            if result is None:
                record = self.database.get(image_id)
                result = self._score(query_bestring, record.bestring, query)
                if query.use_cache:
                    self.score_cache.put(cache_key, image_id, result)
            results.append(
                RankedResult(
                    rank=rank, image_id=image_id, score=composed, similarity=result
                )
            )
        return results

    # ------------------------------------------------------------------
    # Scatter-gather execution over the shard-worker pool
    # ------------------------------------------------------------------
    def _execute_sharded(self, spec: QuerySpec, execution: ExecutionOptions) -> SpecOutcome:
        """Scatter ``spec`` across the shard workers and fold the gather.

        Callers hold a read grant: the pool (invalidated under the write
        lock on every mutation) is therefore guaranteed to mirror the
        snapshot this grant observes.
        """
        pool = self._shard_pool_for(execution)
        return self._fold_gather(spec, pool.execute_spec(spec))

    def _fold_gather(self, spec: QuerySpec, gathered: "GatherOutcome") -> SpecOutcome:
        """Turn one merged gather into a :class:`SpecOutcome`, folding the
        workers' execution/shortlist deltas into this engine's counters so
        ``explain()`` and the service ``/stats`` stay truthful under
        ``executor="shard_process"``."""
        if gathered.execution["queries"]:
            self.execution_counters.record(
                admitted=gathered.execution["admitted"],
                examined=gathered.execution["examined"],
                anytime=bool(gathered.execution["anytime_queries"]),
            )
        if gathered.shortlist["queries"]:
            self.shortlist_counters.absorb(
                admitted=gathered.shortlist["admitted"],
                bitmap_rejected=gathered.shortlist["bitmap_rejected"],
                relation_rejected=gathered.shortlist["relation_rejected"],
            )
        if gathered.predicates["queries"]:
            # One user-visible query regardless of fan-out: worker-side
            # per-image work is summed, the query count is not.
            self.predicate_counters.absorb(
                queries=1,
                graded_queries=1 if gathered.predicates["graded_queries"] else 0,
                evaluated=gathered.predicates["evaluated"],
                pruned=gathered.predicates["pruned"],
            )
        return SpecOutcome(
            spec=spec,
            results=gathered.results,
            trace=gathered.trace,
            predicate_matches=gathered.predicate_matches,
        )

    def _shard_pool_for(self, execution: ExecutionOptions) -> "ShardWorkerPool":
        """The live shard-worker pool, (re)built lazily for ``execution``.

        The pool is reused across queries while the requested worker count
        is stable; asking for a different count tears the old pool down and
        forks a fresh one.  Disk warm starts (:attr:`shard_source`) are only
        offered while no mutation has run, since the on-disk shards may
        otherwise lag the in-memory database.
        """
        from repro.index.workers import ShardWorkerPool, sanitized_execution

        workers = execution.workers or 1
        stale: Optional["ShardWorkerPool"] = None
        with self._shard_pool_guard:
            pool = self._shard_pool
            if pool is not None and pool.worker_count != workers:
                stale, pool = pool, None
                self._shard_pool = None
            if pool is None:
                pool = ShardWorkerPool(
                    workers,
                    self.database,
                    shard_source=self.shard_source if self._shard_source_clean else None,
                    execution=sanitized_execution(self.execution),
                    bitmap_width=self.bitmap_width,
                    minimum_overlap_ratio=self.signature_filter.minimum_overlap_ratio,
                )
                self._shard_pool = pool
        if stale is not None:
            self._close_pool_async(stale)
        return pool

    @staticmethod
    def _close_pool_async(pool: "ShardWorkerPool") -> None:
        """Close a stale, already-unregistered pool on a background thread.

        A close joins every worker (seconds in the worst case); callers hold
        the engine write lock or sit on a query path, and neither should
        stall on worker teardown.  The pool is unregistered before this runs,
        so no query can reach it while it winds down.
        """
        threading.Thread(
            target=pool.close, name="repro-shard-pool-close", daemon=True
        ).start()

    def _invalidate_shard_pool(self) -> None:
        """Tear down the pool after a mutation (workers hold a stale slice).

        The teardown itself runs asynchronously: this is called under the
        engine write lock, and joining worker processes there would stall
        every mutation (and every reader queued behind it) on process exit.
        """
        with self._shard_pool_guard:
            stale, self._shard_pool = self._shard_pool, None
            self._shard_source_clean = False
        if stale is not None:
            self._close_pool_async(stale)

    def close_shard_pool(self) -> None:
        """Terminate the shard workers (idempotent; service shutdown path)."""
        with self._shard_pool_guard:
            pool, self._shard_pool = self._shard_pool, None
        if pool is not None:
            pool.close()

    def shard_pool_stats(self) -> Optional[Dict[str, object]]:
        """The live pool's stats block, or ``None`` when no pool is up."""
        with self._shard_pool_guard:
            pool = self._shard_pool
        return pool.stats() if pool is not None else None

    def run_batch(
        self,
        queries: Sequence[Query],
        options: Optional["BatchOptions"] = None,
        **overrides,
    ) -> List[List[RankedResult]]:
        """Run many queries as one batch (see :mod:`repro.index.batch`).

        Shared encoding/shortlist work is deduplicated, per-(query, image)
        scores are memoised in :attr:`score_cache`, and cache misses are
        evaluated on a worker pool.  Results are identical -- including
        tie-break ordering -- to calling :meth:`execute` per query.  Keyword
        overrides (``workers=8``, ``executor="process"``, ...) are applied on
        top of ``options``.
        """
        from repro.index.batch import BatchOptions, BatchQueryEngine

        base = options or BatchOptions()
        if overrides:
            base = replace(base, **overrides)
        if base.executor == EXECUTOR_SHARD_PROCESS:
            return self._run_batch_sharded(queries, base)
        batch = BatchQueryEngine(engine=self, options=base)
        # The scheduling thread holds one shared grant for the whole batch;
        # worker threads only touch BE-strings prefetched under it (plus the
        # internally-locked score cache), so the batch ranks one snapshot.
        with self.lock.read_locked():
            results = batch.run(queries)
        self.last_batch_report = batch.last_report
        return results

    def _run_batch_sharded(
        self, queries: Sequence[Query], options: "BatchOptions"
    ) -> List[List[RankedResult]]:
        """Pipeline a whole batch through the shard-worker pool.

        Identical queries are deduplicated before the scatter (mirroring the
        thread-pool batch engine), every unique spec rides one pipelined
        scatter-gather, and a :class:`~repro.index.batch.BatchReport` is
        synthesised from the merged traces so ``last_batch_report`` keeps
        its contract.
        """
        from repro.index.batch import BatchReport

        specs = [
            QuerySpec(
                picture=query.picture,
                transformations=query.transformations,
                limit=query.limit,
                minimum_score=query.minimum_score,
                minimum_shared_labels=query.minimum_shared_labels,
                use_filters=query.use_filters,
                use_cache=query.use_cache,
                policy=query.policy,
                execution=query.execution,
            )
            for query in queries
        ]
        # Dedup identical queries so each unique spec is scattered once.
        # Falls back to no dedup if a picture ever turns unhashable.
        positions: List[int] = []
        unique_specs: List[QuerySpec] = []
        try:
            seen: Dict[Query, int] = {}
            for query, spec in zip(queries, specs):
                index = seen.get(query)
                if index is None:
                    index = seen[query] = len(unique_specs)
                    unique_specs.append(spec)
                positions.append(index)
        except TypeError:
            positions = list(range(len(specs)))
            unique_specs = specs
        execution = self.execution.overlaid(
            ExecutionOptions(executor=options.executor, workers=options.workers)
        ).resolved()
        with self.lock.read_locked():
            pool = self._shard_pool_for(execution)
            gathered = pool.execute_many(unique_specs) if unique_specs else []
        for spec, outcome in zip(unique_specs, gathered):
            self._fold_gather(spec, outcome)
        traces = [outcome.trace for outcome in gathered]
        self.last_batch_report = BatchReport(
            total_queries=len(queries),
            unique_evaluations=len(unique_specs),
            candidates_considered=sum(trace.shortlisted for trace in traces),
            scored=sum(trace.candidates_examined for trace in traces),
            cache_hits=sum(trace.cache_hits for trace in traces),
            chunks=1 if unique_specs else 0,
            executor=EXECUTOR_SHARD_PROCESS,
            workers=pool.worker_count if unique_specs else (execution.workers or 1),
            shortlist_bitmap_pruned=sum(trace.bitmap_pruned for trace in traces),
            shortlist_relation_pruned=sum(trace.relation_pruned for trace in traces),
        )
        return [gathered[index].results for index in positions]

    def search(
        self,
        picture: SymbolicPicture,
        limit: Optional[int] = 10,
        policy: SimilarityPolicy = DEFAULT_POLICY,
        invariant: bool = False,
    ) -> List[RankedResult]:
        """Convenience wrapper around :meth:`execute` for the common case."""
        transformations = tuple(Transformation) if invariant else (Transformation.IDENTITY,)
        query = Query(
            picture=picture,
            policy=policy,
            transformations=transformations,
            limit=limit,
        )
        return self.execute(query)
