"""An LRU cache for per-(query, image) similarity scores.

Batch retrieval (see :mod:`repro.index.batch`) repeatedly evaluates the same
modified-LCS similarity: popular queries recur within and across batches, and
every recurrence would otherwise pay the full O(mn) dynamic program per
candidate image.  :class:`ScoreCache` memoises finished
:class:`~repro.core.similarity.SimilarityResult` objects under a key derived
from the *content* of the query (its axis strings, the similarity policy and
the transformation set) plus the candidate image id.

Correctness over staleness: the cache never outlives a database mutation.
:class:`~repro.index.query.QueryEngine` calls :meth:`ScoreCache.invalidate_image`
whenever an image is added, removed, or edited object-by-object, which drops
every cached score involving that image id.  Keys are pure values (strings,
enums, frozen dataclasses), so they are hashable and safe to share across
worker threads; all cache operations take an internal lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.core.bestring import BEString2D
from repro.core.similarity import SimilarityPolicy, SimilarityResult
from repro.core.transforms import Transformation, canonical_transformations

#: Content key identifying one query evaluation configuration.
QueryKey = Tuple[str, str, SimilarityPolicy, Tuple[Transformation, ...]]

#: Full cache key: query content plus the candidate image id.
CacheKey = Tuple[QueryKey, str]


def query_score_key(
    bestring: BEString2D,
    policy: SimilarityPolicy,
    transformations: Iterable[Transformation],
) -> QueryKey:
    """Content key of a query evaluation.

    Two queries whose pictures encode to the same axis strings share scores
    regardless of picture name, so the key uses the token text of both axes
    rather than the (name-carrying) :class:`BEString2D` itself.  The
    transformation set is canonicalised (deduplicated, enum order): the same
    set supplied in a different order used to miss the cache and re-run the
    full dynamic program, even though the evaluation is order-independent
    once tie-breaks are canonical (see
    :func:`~repro.core.transforms.canonical_transformations`).
    """
    return (
        bestring.x.to_text(),
        bestring.y.to_text(),
        policy,
        canonical_transformations(transformations),
    )


@dataclass(frozen=True)
class CacheStatistics:
    """Counters describing cache effectiveness since the last reset."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class ScoreCache:
    """Thread-safe LRU cache of similarity results keyed by (query, image)."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, SimilarityResult]" = OrderedDict()
        self._image_keys: Dict[str, Set[CacheKey]] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, query_key: Hashable, image_id: str) -> Optional[SimilarityResult]:
        """The cached result for ``(query_key, image_id)``, or ``None``."""
        key = (query_key, image_id)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, query_key: Hashable, image_id: str, result: SimilarityResult) -> None:
        """Store one result, evicting the least recently used entry if full."""
        key = (query_key, image_id)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = result
                return
            while len(self._entries) >= self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._discard_image_key(evicted_key)
                self._evictions += 1
            self._entries[key] = result
            self._image_keys.setdefault(image_id, set()).add(key)

    def invalidate_image(self, image_id: str) -> int:
        """Drop every cached score involving ``image_id``; returns the count.

        Called by the query engine whenever an image is added, removed, or
        edited, so cached scores can never disagree with the database.
        """
        with self._lock:
            keys = self._image_keys.pop(image_id, None)
            if not keys:
                return 0
            for key in keys:
                self._entries.pop(key, None)
            self._invalidations += len(keys)
            return len(keys)

    def clear(self) -> None:
        """Drop all entries (statistics counters are kept)."""
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._image_keys.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def statistics(self) -> CacheStatistics:
        """A snapshot of the cache counters."""
        with self._lock:
            return CacheStatistics(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def reset_statistics(self) -> None:
        """Zero the hit/miss/eviction/invalidation counters."""
        with self._lock:
            self._hits = self._misses = self._evictions = self._invalidations = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _discard_image_key(self, key: CacheKey) -> None:
        image_id = key[1]
        keys = self._image_keys.get(image_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._image_keys[image_id]
