"""One coherent execution-configuration surface for the query engine.

Historically each execution knob lived wherever it was invented: shortlist
toggles as ``use_filters`` kwargs, caching as ``use_cache``, thread-pool
choices inside :class:`repro.index.batch.BatchOptions`.  This module gathers
them — together with the new kernel and search-strategy switches — into one
:class:`ExecutionOptions` value that travels from engine construction
(``QueryEngine.build(execution=...)``) through :class:`~repro.index.spec.QuerySpec`,
the fluent builder, the CLI flags, and the service ``/search`` payload.

Every field is optional: ``None`` means "inherit" — from the per-query
options to the engine default to the documented defaults
(:data:`DEFAULT_EXECUTION`).  Resolution is a simple two-step overlay::

    effective = engine.execution.overlaid(query.execution).resolved()

``docs/query-api.md`` carries the migration table from the deprecated
scattered knobs; ``docs/kernels.md`` documents what the ``kernel`` and
``strategy`` values actually run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional

#: Length-only bit-parallel LCS kernel (``repro.core.lcskernel``).
KERNEL_BITPARALLEL = "bitparallel"
#: The reference dynamic program (``repro.core.lcs``).
KERNEL_REFERENCE = "reference"
KERNELS = (KERNEL_BITPARALLEL, KERNEL_REFERENCE)

#: Branch-and-bound top-k: score in descending-bound order, stop early.
STRATEGY_ANYTIME = "anytime"
#: Score every shortlist survivor (the historical behaviour).
STRATEGY_EXHAUSTIVE = "exhaustive"
STRATEGIES = (STRATEGY_ANYTIME, STRATEGY_EXHAUSTIVE)

#: Scatter-gather over the process-parallel shard workers
#: (:mod:`repro.index.workers`): each worker owns a disjoint slice of the
#: CRC-32 shard space and scores locally; merged rankings are byte-identical
#: to the serial engine.
EXECUTOR_SHARD_PROCESS = "shard_process"
#: Batch pool flavours (mirrors :class:`repro.index.batch.BatchOptions`)
#: plus the shard-worker scatter-gather executor.
EXECUTORS = ("thread", "process", "serial", "auto", EXECUTOR_SHARD_PROCESS)


@dataclass(frozen=True)
class ExecutionOptions:
    """How a query (or every query of an engine) should be executed.

    ``None`` fields inherit from the next layer down; see the module
    docstring for the overlay order.  Instances are immutable — derive
    variants with :meth:`overlaid` or :func:`dataclasses.replace`.
    """

    #: LCS implementation for scoring: ``bitparallel`` or ``reference``.
    kernel: Optional[str] = None
    #: Candidate-processing strategy: ``anytime`` or ``exhaustive``.
    strategy: Optional[str] = None
    #: Run the signature shortlist before scoring (``Query.use_filters``).
    shortlist: Optional[bool] = None
    #: Consult and populate the engine's score cache (``Query.use_cache``).
    cache: Optional[bool] = None
    #: Concurrency flavour: ``thread``/``process``/``serial``/``auto`` pick
    #: the batch pool; ``shard_process`` scatter-gathers every query across
    #: the process-parallel shard workers (:mod:`repro.index.workers`).
    executor: Optional[str] = None
    #: Batch pool size.
    workers: Optional[int] = None
    #: Queries per batch task (``None`` lets the batch engine choose).
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        """Reject values outside the documented vocabulary."""
        if self.kernel is not None and self.kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {self.kernel!r}")
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.executor is not None and self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")

    def overlaid(self, overrides: Optional["ExecutionOptions"]) -> "ExecutionOptions":
        """These options with every non-``None`` field of ``overrides`` applied."""
        if overrides is None:
            return self
        changed = {
            field.name: value
            for field in fields(overrides)
            if (value := getattr(overrides, field.name)) is not None
        }
        return replace(self, **changed) if changed else self

    def resolved(self) -> "ExecutionOptions":
        """Fill the remaining ``None`` fields with the documented defaults."""
        return DEFAULT_EXECUTION.overlaid(self)

    @property
    def is_default_scoring(self) -> bool:
        """True when kernel/strategy match the historical implicit behaviour."""
        return self.kernel in (None, KERNEL_REFERENCE) and self.strategy in (
            None,
            STRATEGY_EXHAUSTIVE,
        )

    def describe(self) -> str:
        """Compact ``key=value`` summary of the explicitly set fields."""
        parts = [
            f"{field.name}={value}"
            for field in fields(self)
            if (value := getattr(self, field.name)) is not None
        ]
        return " ".join(parts) if parts else "inherit-all"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly mapping of the explicitly set fields."""
        return {
            field.name: value
            for field in fields(self)
            if (value := getattr(self, field.name)) is not None
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionOptions":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {field.name for field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown execution option(s): {sorted(unknown)}")
        return cls(**dict(payload))


#: The documented defaults: the exact behaviour queries had before
#: ExecutionOptions existed.
DEFAULT_EXECUTION = ExecutionOptions(
    kernel=KERNEL_REFERENCE,
    strategy=STRATEGY_EXHAUSTIVE,
    shortlist=True,
    cache=True,
    executor="thread",
    workers=4,
    chunk_size=None,
)


@dataclass(frozen=True)
class ExecutionStatistics:
    """Cumulative branch-and-bound counters (surfaced by the service ``/stats``)."""

    queries: int
    anytime_queries: int
    admitted: int
    examined: int
    skipped: int

    @property
    def examined_fraction(self) -> float:
        """Fraction of admitted candidates that actually reached a scoring DP."""
        if not self.admitted:
            return 0.0
        return self.examined / self.admitted


class ExecutionCounters:
    """Thread-safe cumulative counters across every scored query."""

    def __init__(self) -> None:
        """Start all counters at zero."""
        self._lock = threading.Lock()
        self._queries = 0
        self._anytime_queries = 0
        self._admitted = 0
        self._examined = 0
        self._skipped = 0

    def record(self, admitted: int, examined: int, anytime: bool) -> None:
        """Fold one scored query into the running totals."""
        with self._lock:
            self._queries += 1
            if anytime:
                self._anytime_queries += 1
            self._admitted += admitted
            self._examined += examined
            self._skipped += admitted - examined

    @property
    def statistics(self) -> ExecutionStatistics:
        """A consistent snapshot of the counters."""
        with self._lock:
            return ExecutionStatistics(
                queries=self._queries,
                anytime_queries=self._anytime_queries,
                admitted=self._admitted,
                examined=self._examined,
                skipped=self._skipped,
            )

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks)."""
        with self._lock:
            self._queries = 0
            self._anytime_queries = 0
            self._admitted = 0
            self._examined = 0
            self._skipped = 0


@dataclass(frozen=True)
class PredicateStatistics:
    """Cumulative predicate-stage counters (surfaced by the service ``/stats``).

    ``evaluated`` counts images whose predicate clause was actually walked;
    ``pruned`` counts images admitted to the universe but settled at degree
    0 (or an all-unsatisfied crisp match) by the label-absence bound without
    any evaluation.
    """

    queries: int
    graded_queries: int
    evaluated: int
    pruned: int

    @property
    def pruned_fraction(self) -> float:
        """Fraction of considered images the label bound settled for free."""
        considered = self.evaluated + self.pruned
        if not considered:
            return 0.0
        return self.pruned / considered


class PredicateCounters:
    """Thread-safe cumulative counters across every predicate-bearing query."""

    def __init__(self) -> None:
        """Start all counters at zero."""
        self._lock = threading.Lock()
        self._queries = 0
        self._graded_queries = 0
        self._evaluated = 0
        self._pruned = 0

    def record(self, evaluated: int, pruned: int, graded: bool) -> None:
        """Fold one predicate-bearing query into the running totals."""
        self.absorb(1, 1 if graded else 0, evaluated, pruned)

    def absorb(self, queries: int, graded_queries: int, evaluated: int, pruned: int) -> None:
        """Fold pre-aggregated deltas (e.g. gathered from shard workers)."""
        with self._lock:
            self._queries += queries
            self._graded_queries += graded_queries
            self._evaluated += evaluated
            self._pruned += pruned

    @property
    def statistics(self) -> PredicateStatistics:
        """A consistent snapshot of the counters."""
        with self._lock:
            return PredicateStatistics(
                queries=self._queries,
                graded_queries=self._graded_queries,
                evaluated=self._evaluated,
                pruned=self._pruned,
            )

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks)."""
        with self._lock:
            self._queries = 0
            self._graded_queries = 0
            self._evaluated = 0
            self._pruned = 0
