"""The two-stage signature shortlist: bitmap and relation-pair score bounds.

At 50k images the inverted symbol index still admits thousands of candidates
on realistic label distributions, and every admitted candidate used to pay a
``Counter`` intersection followed by the O(mn) LCS dynamic program.  This
module makes the shortlist *precise* by attaching a compact
:class:`ImageSignature` to every stored record and rejecting candidates whose
best achievable score provably cannot clear the query's ``min_score``:

* **Stage 1 — label bitmaps.**  Every label hashes (stable CRC-32) to one bit
  of a fixed-width bitmap.  A single integer AND plus a popcount-style walk of
  the query's set bits yields an upper bound on the label-multiset overlap —
  no per-candidate ``Counter`` intersection — which upper-bounds both the
  legacy overlap-ratio threshold and (coarsely) the LCS score.
* **Stage 2 — relation pairs.**  For every pair of objects on each axis the
  signature records the relative order of their four boundary symbols (an
  axis-relation code).  A pair whose code differs between query and candidate
  cannot contribute all four symbols to a common subsequence, so a greedy
  matching over conflicting pairs tightens the boundary-symbol bound.  The
  resulting score bound is evaluated per query transformation and the best
  variant is compared against ``min_score``.

Both stages are *conservative*: a candidate is rejected only when its score
upper bound is strictly below the query's ``minimum_score`` (or its exact
overlap ratio is below the configured threshold — the legacy
:class:`~repro.index.signature.SignatureFilter` semantics).  Rankings are
therefore byte-identical to a filter-disabled scan cut at the same
``minimum_score``; ``benchmarks/bench_signature.py`` (E14) asserts this at
10k+ images together with the ≥5x serial speedup.  See ``docs/shortlist.md``
for the guarantees and tuning knobs.
"""

from __future__ import annotations

import threading
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.bestring import AxisBEString, BEString2D
from repro.core.similarity import SimilarityPolicy, combined_value, normalized_value
from repro.core.transforms import Transformation, transform

#: Version stamp written into persisted signature payloads; a payload with a
#: different version is ignored on load and the signature is recomputed.
SIGNATURE_VERSION = 1

#: Default width (in bits) of the hashed label bitmap.
DEFAULT_BITMAP_WIDTH = 128

#: How many pruned candidates a single query records into its trace (the
#: full rejection counts are always tracked; only the per-candidate sample
#: shown by ``explain`` is capped, so a 50k-image prune cannot bloat traces).
REJECTION_SAMPLE_LIMIT = 32


def label_bit(label: str, width: int = DEFAULT_BITMAP_WIDTH) -> int:
    """The bitmap bit a label hashes to (stable CRC-32, like the shard hash)."""
    return zlib.crc32(label.encode("utf-8")) % width


def label_bitmap(labels: Iterable[str], width: int = DEFAULT_BITMAP_WIDTH) -> int:
    """The bit-packed bitmap of a label collection."""
    bitmap = 0
    for label in labels:
        bitmap |= 1 << label_bit(label, width)
    return bitmap


def axis_pair_codes(axis: AxisBEString) -> Dict[Tuple[str, str], int]:
    """Relation codes for every object pair on one axis.

    The code of a pair ``(a, b)`` (``a < b`` lexicographically) packs the four
    cross comparisons between the boundary positions of ``a`` and ``b`` into
    one integer; together with the fixed within-object order (begin before
    end) it determines the relative order of all four boundary symbols.  Two
    equal codes mean the four symbols interleave identically; two different
    codes mean they cannot all appear in a common subsequence.

    Returns:
        Mapping from the identifier pair to its axis-relation code.
    """
    begins: Dict[str, int] = {}
    ends: Dict[str, int] = {}
    for position, symbol in enumerate(axis.symbols):
        if symbol.is_boundary:
            assert symbol.identifier is not None
            if symbol.is_begin:
                begins[symbol.identifier] = position
            else:
                ends[symbol.identifier] = position
    identifiers = sorted(identifier for identifier in begins if identifier in ends)
    codes: Dict[Tuple[str, str], int] = {}
    for index, a in enumerate(identifiers):
        a_begin, a_end = begins[a], ends[a]
        for b in identifiers[index + 1 :]:
            b_begin, b_end = begins[b], ends[b]
            codes[(a, b)] = (
                (a_begin < b_begin)
                | (a_begin < b_end) << 1
                | (a_end < b_begin) << 2
                | (a_end < b_end) << 3
            )
    return codes


@dataclass(frozen=True)
class AxisSignature:
    """Shortlist-relevant facts about one axis BE-string."""

    #: Total symbol count of the axis string.
    length: int
    #: Number of boundary symbols (``2 * objects`` for a valid string).
    boundaries: int
    #: Number of dummy objects ``E``.
    dummies: int
    #: Axis-relation code per object pair (see :func:`axis_pair_codes`).
    pairs: Dict[Tuple[str, str], int]

    @classmethod
    def from_axis(cls, axis: AxisBEString) -> "AxisSignature":
        """Extract the signature of one axis string."""
        return cls(
            length=len(axis),
            boundaries=axis.boundary_count,
            dummies=axis.dummy_count,
            pairs=axis_pair_codes(axis),
        )


@dataclass
class ImageSignature:
    """The persisted shortlist signature of one stored image.

    Carries the hashed label bitmap (stage 1) and the per-axis relation-pair
    facts (stage 2).  Signatures are derived data: they are recomputed lazily
    whenever missing or built at a different bitmap width, and persisted by
    every storage backend so warm starts skip the recomputation.
    """

    width: int
    bitmap: int
    label_counts: Dict[str, int]
    x: AxisSignature
    y: AxisSignature

    @classmethod
    def from_bestring(
        cls,
        bestring: BEString2D,
        labels: Iterable[str],
        width: int = DEFAULT_BITMAP_WIDTH,
    ) -> "ImageSignature":
        """Build the signature of an image from its BE-string and labels."""
        counts: Dict[str, int] = dict(Counter(labels))
        return cls(
            width=width,
            bitmap=label_bitmap(counts, width),
            label_counts=counts,
            x=AxisSignature.from_axis(bestring.x),
            y=AxisSignature.from_axis(bestring.y),
        )

    def matches_bestring(self, bestring: BEString2D) -> bool:
        """Cheap consistency check against the BE-string it claims to describe."""
        return (
            self.x.length == len(bestring.x)
            and self.y.length == len(bestring.y)
            and self.x.boundaries == bestring.x.boundary_count
            and self.y.boundaries == bestring.y.boundary_count
        )

    # ------------------------------------------------------------------
    # Serialisation (deterministic: sorted pairs, sorted keys)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly payload persisted by the storage backends."""

        def axis_payload(axis: AxisSignature) -> Dict[str, Any]:
            return {
                "length": axis.length,
                "boundaries": axis.boundaries,
                "dummies": axis.dummies,
                "pairs": [
                    [a, b, code] for (a, b), code in sorted(axis.pairs.items())
                ],
            }

        return {
            "version": SIGNATURE_VERSION,
            "width": self.width,
            "bitmap": format(self.bitmap, "x"),
            "labels": dict(sorted(self.label_counts.items())),
            "x": axis_payload(self.x),
            "y": axis_payload(self.y),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ImageSignature":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: on an unsupported version or malformed payload.
        """
        if payload.get("version") != SIGNATURE_VERSION:
            raise ValueError(
                f"unsupported signature version {payload.get('version')!r}"
            )

        def axis_from(entry: Dict[str, Any]) -> AxisSignature:
            return AxisSignature(
                length=int(entry["length"]),
                boundaries=int(entry["boundaries"]),
                dummies=int(entry["dummies"]),
                pairs={(a, b): int(code) for a, b, code in entry["pairs"]},
            )

        return cls(
            width=int(payload["width"]),
            bitmap=int(payload["bitmap"], 16),
            label_counts={
                str(label): int(count) for label, count in payload["labels"].items()
            },
            x=axis_from(payload["x"]),
            y=axis_from(payload["y"]),
        )


def signature_for(record: Any, width: int = DEFAULT_BITMAP_WIDTH) -> ImageSignature:
    """The cached signature of an :class:`~repro.index.database.ImageRecord`.

    Computes and caches the signature on the record when missing or built at
    a different bitmap width.  The assignment is idempotent, so the benign
    race of two concurrent readers computing the same signature is harmless.

    Returns:
        The record's :class:`ImageSignature` at the requested width.
    """
    signature = record.signature
    if signature is None or signature.width != width:
        signature = ImageSignature.from_bestring(
            record.bestring, record.picture.labels, width
        )
        record.signature = signature
    return signature


def ensure_signatures(records: Iterable[Any], width: int = DEFAULT_BITMAP_WIDTH) -> int:
    """Materialise signatures for every record (``repro convert`` tuning path).

    Returns:
        How many signatures were computed (records whose cached signature
        already had the requested width are skipped).
    """
    computed = 0
    for record in records:
        if record.signature is None or record.signature.width != width:
            record.signature = None
            signature_for(record, width)
            computed += 1
    return computed


# ----------------------------------------------------------------------
# Score upper bounds
# ----------------------------------------------------------------------
def _axis_bounds(
    query: AxisSignature, candidate: AxisSignature, overlap: int, conflicts: int
) -> Tuple[int, int]:
    """``(lcs_length_bound, boundary_bound)`` for one axis.

    Every common object contributes at most its begin and end boundary to the
    axis LCS (``2 * overlap``); each conflicting pair of the greedy matching
    excludes at least one further symbol; dummies in the LCS are capped by
    both strings' dummy counts and — because the modified LCS suppresses
    consecutive dummies — by ``boundary_bound + 1``.
    """
    boundary = min(2 * overlap, query.boundaries, candidate.boundaries) - conflicts
    if boundary < 0:
        boundary = 0
    dummies = min(query.dummies, candidate.dummies, boundary + 1)
    return min(query.length, candidate.length, boundary + dummies), boundary


def axis_score_bound(
    query: AxisSignature,
    candidate: AxisSignature,
    overlap: int,
    conflicts: int,
    policy: SimilarityPolicy,
) -> float:
    """Policy-normalised upper bound on one axis similarity value."""
    length_bound, boundary_bound = _axis_bounds(query, candidate, overlap, conflicts)
    if policy.count_boundaries_only:
        raw = float(boundary_bound)
        query_side, candidate_side = float(query.boundaries), float(candidate.boundaries)
    else:
        raw = float(length_bound)
        query_side, candidate_side = float(query.length), float(candidate.length)
    # The exact arithmetic the scoring side uses (shared helper), so the
    # bound can never drift from what it must dominate.
    return normalized_value(raw, query_side, candidate_side, policy.normalization)


def pair_conflicts(
    query_pairs: Dict[Tuple[str, str], int],
    candidate_pairs: Dict[Tuple[str, str], int],
) -> int:
    """Size of a greedy matching over pairs whose axis-relation codes differ.

    Every edge of the matching names two objects that cannot both contribute
    all their boundary symbols to the axis LCS; because matched edges share
    no object, each excludes at least one distinct symbol, so the matching
    size is a sound deduction from the boundary-symbol bound (a matching
    lower-bounds the conflict graph's vertex cover).
    """
    if not query_pairs or not candidate_pairs:
        return 0
    used: set = set()
    conflicts = 0
    for (a, b), code in query_pairs.items():
        if a in used or b in used:
            continue
        candidate_code = candidate_pairs.get((a, b))
        if candidate_code is not None and candidate_code != code:
            conflicts += 1
            used.add(a)
            used.add(b)
    return conflicts


@dataclass(frozen=True)
class _QueryVariant:
    """Per-transformation view of the query's axis signatures."""

    transformation: Transformation
    x: AxisSignature
    y: AxisSignature


class QuerySignature:
    """Per-query precomputation consumed by both shortlist stages.

    Built once per query execution: the hashed bitmap with per-bit label
    counts (stage 1) and, for every transformation in the query's set, the
    axis signatures of the *transformed* query string (stage 2) — so the
    bound is evaluated exactly against what :func:`~repro.core.similarity.
    invariant_similarity` would score, and the maximum over variants is a
    sound bound for transformation-invariant retrieval.
    """

    def __init__(
        self,
        bestring: BEString2D,
        labels: Iterable[str],
        transformations: Iterable[Transformation] = (Transformation.IDENTITY,),
        width: int = DEFAULT_BITMAP_WIDTH,
    ) -> None:
        """Precompute the query-side signature state."""
        self.width = width
        self.label_counts: Dict[str, int] = dict(Counter(labels))
        self.total_labels = sum(self.label_counts.values())
        self.bit_counts: Dict[int, int] = {}
        for label, count in self.label_counts.items():
            bit = label_bit(label, width)
            self.bit_counts[bit] = self.bit_counts.get(bit, 0) + count
        self.bitmap = 0
        for bit in self.bit_counts:
            self.bitmap |= 1 << bit
        self.variants: List[_QueryVariant] = []
        for transformation in dict.fromkeys(transformations):
            transformed = transform(bestring, transformation)
            self.variants.append(
                _QueryVariant(
                    transformation=transformation,
                    x=AxisSignature.from_axis(transformed.x),
                    y=AxisSignature.from_axis(transformed.y),
                )
            )

    def overlap_upper_bound(self, candidate: ImageSignature) -> int:
        """Stage-1 bound on the label-multiset overlap from the bitmaps alone.

        Walks the query's set bits and sums the query-side label counts of
        bits also present in the candidate bitmap; a shared label always sets
        a shared bit, so this never undercounts the true multiset overlap.
        """
        if candidate.width != self.width:
            return self.total_labels
        bitmap = candidate.bitmap
        if not (self.bitmap & bitmap):
            # One integer AND settles the common case of zero shared labels.
            return 0
        return sum(
            count for bit, count in self.bit_counts.items() if (bitmap >> bit) & 1
        )

    def exact_overlap(self, candidate: ImageSignature) -> int:
        """The exact label-multiset overlap (stage 2)."""
        counts = candidate.label_counts
        return sum(
            min(count, counts.get(label, 0))
            for label, count in self.label_counts.items()
        )

    def score_upper_bound(
        self,
        candidate: ImageSignature,
        overlap: int,
        policy: SimilarityPolicy,
        with_conflicts: bool = False,
    ) -> float:
        """Upper bound on the similarity score over all query transformations.

        ``overlap`` is the (bound on the) label-multiset overlap to charge;
        ``with_conflicts=True`` additionally deducts the relation-pair
        conflict matching per axis (stage 2).
        """
        best = 0.0
        for variant in self.variants:
            x_conflicts = (
                pair_conflicts(variant.x.pairs, candidate.x.pairs)
                if with_conflicts
                else 0
            )
            y_conflicts = (
                pair_conflicts(variant.y.pairs, candidate.y.pairs)
                if with_conflicts
                else 0
            )
            score = combined_value(
                axis_score_bound(variant.x, candidate.x, overlap, x_conflicts, policy),
                axis_score_bound(variant.y, candidate.y, overlap, y_conflicts, policy),
                policy.combination,
            )
            if score > best:
                best = score
        return best


# ----------------------------------------------------------------------
# Shortlist outcome and service counters
# ----------------------------------------------------------------------
@dataclass
class ShortlistOutcome:
    """What one shortlist pass decided (consumed by traces and reports)."""

    candidates: List[str]
    stage: str
    inverted_candidates: Optional[int] = None
    bitmap_rejected: int = 0
    relation_rejected: int = 0
    #: Sampled rejections (image id -> rejecting stage constant), capped at
    #: :data:`REJECTION_SAMPLE_LIMIT` entries for ``explain`` output.
    rejections: Dict[str, str] = field(default_factory=dict)
    #: Score bound of each sampled rejection (image id -> bound).
    rejection_bounds: Dict[str, float] = field(default_factory=dict)
    #: Sound score upper bound of every *admitted* candidate (image id ->
    #: bound), populated only when the caller asks for bounds (the anytime
    #: strategy orders and terminates on them); ``None`` otherwise.
    bounds: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class ShortlistStatistics:
    """Cumulative shortlist counters (surfaced by the service ``/stats``)."""

    queries: int
    candidates: int
    bitmap_rejected: int
    relation_rejected: int
    admitted: int

    @property
    def pruned_fraction(self) -> float:
        """Fraction of shortlist candidates rejected before scoring."""
        if not self.candidates:
            return 0.0
        return (self.bitmap_rejected + self.relation_rejected) / self.candidates


class ShortlistCounters:
    """Thread-safe cumulative counters across every shortlist pass."""

    def __init__(self) -> None:
        """Start all counters at zero."""
        self._lock = threading.Lock()
        self._queries = 0
        self._candidates = 0
        self._bitmap_rejected = 0
        self._relation_rejected = 0
        self._admitted = 0

    def record(self, outcome: ShortlistOutcome) -> None:
        """Fold one :class:`ShortlistOutcome` into the running totals."""
        with self._lock:
            self._queries += 1
            self._candidates += (
                len(outcome.candidates)
                + outcome.bitmap_rejected
                + outcome.relation_rejected
            )
            self._bitmap_rejected += outcome.bitmap_rejected
            self._relation_rejected += outcome.relation_rejected
            self._admitted += len(outcome.candidates)

    def absorb(
        self, admitted: int, bitmap_rejected: int, relation_rejected: int
    ) -> None:
        """Fold one externally-aggregated shortlist pass into the totals.

        The scatter-gather path (:mod:`repro.index.workers`) runs the
        shortlist inside worker processes whose counters the parent cannot
        see; the gather response carries the summed per-worker deltas and the
        parent folds them here as **one** logical query, keeping the service
        ``/stats`` shortlist block truthful under ``executor="shard_process"``.
        """
        with self._lock:
            self._queries += 1
            self._candidates += admitted + bitmap_rejected + relation_rejected
            self._bitmap_rejected += bitmap_rejected
            self._relation_rejected += relation_rejected
            self._admitted += admitted

    @property
    def statistics(self) -> ShortlistStatistics:
        """A consistent snapshot of the counters."""
        with self._lock:
            return ShortlistStatistics(
                queries=self._queries,
                candidates=self._candidates,
                bitmap_rejected=self._bitmap_rejected,
                relation_rejected=self._relation_rejected,
                admitted=self._admitted,
            )

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks)."""
        with self._lock:
            self._queries = 0
            self._candidates = 0
            self._bitmap_rejected = 0
            self._relation_rejected = 0
            self._admitted = 0


# ----------------------------------------------------------------------
# Graded predicate-tree degree bound
# ----------------------------------------------------------------------
def tree_degree_bound(tree: Any, has_label) -> float:
    """A sound upper bound on a predicate tree's degree for one image.

    ``has_label(label) -> bool`` is any label-presence oracle that never
    returns ``False`` for a label the image actually contains — both the
    exact inverted-index postings and the stage-1 hashed CRC-32 label
    bitmaps satisfy this (a clear bitmap bit proves absence; a set bit may
    be a hash collision, which only *weakens* the bound, never unsounds it).

    Proof sketch (structural induction over the AST):

    * **Crisp leaf** — its degree is 1 only if some subject/target instance
      pair satisfies the relation, which requires both labels to be present;
      if either is reported absent the true degree is exactly 0, so 0 is a
      (tight) upper bound.  Present (or colliding) labels bound at 1, the
      trivial top.
    * **Fuzzy leaf** — the boundary-distance degree can be arbitrarily close
      to 1 for *any* present pair, and the oracle cannot see geometry, so
      fuzzy leaves fail open at 1 (per the spec in ``docs/predicates.md``).
    * **``not``** — the child bound upper-bounds the child's degree, but
      ``1 - child`` needs a *lower* bound on the child to stay sound; the
      oracle only proves absences, so negation admits all (bound 1).
    * **``or``** — degree is ``max`` over children; ``max`` of sound child
      bounds upper-bounds the ``max`` of true degrees (monotone).
    * **``and``** — degree is the weighted mean of the children; the
      weighted mean is monotone in every argument, so the mean of sound
      child bounds upper-bounds the mean of true degrees.

    Corollary used by the engine: a total bound of 0 is only reachable when
    every leaf in the tree is crisp with an absent label (``not`` bounds at
    1 and fuzzy leaves at 1, so neither can appear on a 0-bound path), hence
    the true degree — and every true leaf degree — is exactly 0 and a
    synthesized zero match is byte-exact, never lossy.
    """
    from repro.retrieval.predicates import And, Leaf, Not, Or

    if isinstance(tree, Leaf):
        if tree.fuzzy:
            return 1.0
        predicate = tree.predicate
        if has_label(predicate.subject) and has_label(predicate.target):
            return 1.0
        return 0.0
    if isinstance(tree, Not):
        return 1.0
    if isinstance(tree, Or):
        return max(tree_degree_bound(child, has_label) for child in tree.children)
    if isinstance(tree, And):
        total = 0.0
        bounded = 0.0
        for child in tree.children:
            weight = child.weight if isinstance(child, Leaf) else 1.0
            total += weight
            bounded += weight * tree_degree_bound(child, has_label)
        return bounded / total if total else 1.0
    raise TypeError(f"not a predicate tree node: {type(tree).__name__}")
