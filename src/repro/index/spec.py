"""The declarative query specification behind the unified retrieval pipeline.

Every retrieval the system can run -- exact similarity, partial-icon queries,
transformation-invariant matching, relation-predicate filtering, and any
conjunction of them -- compiles down to one :class:`QuerySpec` value.  The
spec is what the fluent builder (:mod:`repro.retrieval.querybuilder`)
produces, what :meth:`repro.index.query.QueryEngine.execute_spec` consumes,
and what the batch scheduler deduplicates on, so every entry point shares a
single evaluation plan in the spirit of composing small operators into one
pipeline.

The module also defines the execution *traces* the pipeline records while it
runs -- which shortlist stage admitted each candidate, whether its score came
from the :class:`~repro.index.cache.ScoreCache`, how the predicate pruning
behaved -- which is what ``ResultSet.explain()`` renders for users.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.core.similarity import DEFAULT_POLICY, SimilarityPolicy
from repro.core.transforms import Transformation
from repro.iconic.picture import SymbolicPicture
from repro.index.execution import ExecutionOptions

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from repro.index.query import Query
    from repro.index.ranking import RankedResult
    from repro.retrieval.predicates import (
        GradedMatch,
        PredicateMatch,
        PredicateNode,
        RelationPredicate,
    )


class QuerySpecError(ValueError):
    """Raised when a :class:`QuerySpec` is malformed or unsupported."""


#: Shortlist stages a candidate can be admitted by (recorded in traces).
STAGE_FULL_SCAN = "full-scan"
STAGE_SHORTLIST = "inverted-index+signature"
STAGE_PREDICATE_PRUNED = "label-pruned"
STAGE_PREDICATE_EVALUATED = "predicate-evaluated"
#: Shortlist stages a candidate can be *rejected* by (see
#: :mod:`repro.index.shortlist`): the hashed label-bitmap bound (stage 1)
#: and the relation-pair score bound (stage 2).
STAGE_BITMAP_PRUNED = "bitmap-bound-pruned"
STAGE_RELATION_PRUNED = "relation-bound-pruned"
#: Anytime strategy: admitted by the shortlist but never scored because the
#: k-th confirmed score already met or beat this candidate's upper bound.
STAGE_BOUND_SKIPPED = "anytime-bound-skipped"


@dataclass(frozen=True)
class QuerySpec:
    """One declarative retrieval request.

    A spec combines up to two clauses:

    * a *similarity* clause -- ``picture`` (optionally restricted to
      ``identifiers`` for partial queries and expanded over
      ``transformations`` for invariant ones), scored with the modified-LCS
      evaluation under ``policy``;
    * a *predicate* clause -- either ``predicates`` (a crisp conjunction of
      relation predicates, the historical fast path) or ``predicate_tree``
      (a graded boolean AST with ``not``/``or`` and per-leaf weight/fuzzy
      annotations) evaluated against stored BE-strings.

    With a crisp conjunction and a picture the predicates act as a
    post-filter: only images satisfying **every** predicate survive, ranked
    by similarity.  With a graded ``predicate_tree`` the tree's satisfaction
    degree *composes* with the similarity score instead —
    ``predicate_composition`` picks the operator (``"product"``:
    ``similarity * degree``; ``"sum"``: ``blend * similarity + (1 - blend) *
    degree`` with ``blend = predicate_blend``).  ``limit`` /
    ``minimum_score`` cut the final ranking; ``use_filters`` toggles the
    inverted-index + signature shortlist; ``use_cache`` toggles the score
    cache for this query only.
    """

    picture: Optional[SymbolicPicture] = None
    identifiers: Optional[Tuple[str, ...]] = None
    transformations: Tuple[Transformation, ...] = (Transformation.IDENTITY,)
    predicates: Tuple["RelationPredicate", ...] = ()
    #: Graded predicate AST (``None`` for crisp conjunctions, which stay on
    #: the historical ``predicates`` tuple and its byte-identical fast path).
    predicate_tree: Optional["PredicateNode"] = None
    #: How a graded predicate degree composes with the similarity score.
    predicate_composition: str = "product"
    #: Similarity share of the ``"sum"`` composition (ignored for product).
    predicate_blend: float = 0.5
    limit: Optional[int] = 10
    minimum_score: float = 0.0
    minimum_shared_labels: int = 1
    use_filters: bool = True
    use_cache: bool = True
    policy: Optional[SimilarityPolicy] = None
    #: Per-query execution overrides (kernel, strategy, ...); ``None`` fields
    #: inherit the engine's defaults.  See :mod:`repro.index.execution`.
    execution: Optional[ExecutionOptions] = None

    # ------------------------------------------------------------------
    # Validation and derived views
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the spec describes a runnable query.

        Raises:
            QuerySpecError: if neither clause is present, if ``identifiers``
                are given without a picture, or if numeric knobs are out of
                range.
        """
        if self.picture is None and not self.has_predicate_clause:
            raise QuerySpecError(
                "a query needs at least one clause: similar_to(picture) or where(predicate)"
            )
        if self.predicates and self.predicate_tree is not None:
            raise QuerySpecError(
                "a spec carries either flat crisp predicates or a predicate tree, not both"
            )
        if self.predicate_composition not in ("product", "sum"):
            raise QuerySpecError(
                f"predicate_composition must be 'product' or 'sum', "
                f"got {self.predicate_composition!r}"
            )
        if not (0.0 <= self.predicate_blend <= 1.0):
            raise QuerySpecError(
                f"predicate_blend must lie in [0, 1], got {self.predicate_blend!r}"
            )
        if self.identifiers is not None and self.picture is None:
            raise QuerySpecError("partial(identifiers) requires similar_to(picture)")
        if not self.transformations:
            raise QuerySpecError("at least one transformation is required")
        if self.limit is not None and self.limit < 0:
            raise QuerySpecError("limit must be non-negative (or None for unlimited)")
        if self.minimum_shared_labels < 1:
            raise QuerySpecError("minimum_shared_labels must be at least 1")

    @property
    def has_similarity_clause(self) -> bool:
        """True when the spec scores images against a query picture."""
        return self.picture is not None

    @property
    def has_predicate_clause(self) -> bool:
        """True when the spec constrains images by relation predicates."""
        return bool(self.predicates) or self.predicate_tree is not None

    @property
    def has_graded_predicates(self) -> bool:
        """True when the predicate clause is a graded tree (not a crisp list)."""
        return self.predicate_tree is not None

    def effective_picture(self) -> SymbolicPicture:
        """The query picture with the partial-icon subset applied.

        Raises:
            QuerySpecError: if the spec has no similarity clause.
            KeyError: if ``identifiers`` name icons the picture lacks.
        """
        if self.picture is None:
            raise QuerySpecError("this spec has no similarity clause")
        if self.identifiers is None:
            return self.picture
        return self.picture.subset(self.identifiers)

    def effective_policy(self) -> SimilarityPolicy:
        """The similarity policy, falling back to the library default."""
        return self.policy if self.policy is not None else DEFAULT_POLICY

    def to_query(self) -> "Query":
        """Compile the similarity clause to an engine-level :class:`Query`.

        Returns:
            The :class:`~repro.index.query.Query` the unified pipeline (and
            the batch scheduler) executes for this spec.

        Raises:
            QuerySpecError: if the spec has no similarity clause.
        """
        from repro.index.query import Query

        return Query(
            picture=self.effective_picture(),
            policy=self.effective_policy(),
            transformations=tuple(self.transformations),
            limit=self.limit,
            minimum_score=self.minimum_score,
            minimum_shared_labels=self.minimum_shared_labels,
            use_filters=self.use_filters,
            use_cache=self.use_cache,
            execution=self.execution,
        )

    def with_overrides(self, **changes) -> "QuerySpec":
        """A copy of the spec with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary of the compiled plan."""
        clauses: List[str] = []
        if self.picture is not None:
            name = self.picture.name or "<picture>"
            if self.identifiers is not None:
                name += f"[{', '.join(self.identifiers)}]"
            clauses.append(f"similar_to({name})")
            if len(self.transformations) > 1:
                clauses.append("invariant")
        for predicate in self.predicates:
            clauses.append(f"where({predicate.to_text()})")
        if self.predicate_tree is not None:
            clauses.append(f"where({self.predicate_tree.to_text()})")
        knobs = [f"limit={self.limit}"]
        if self.predicate_tree is not None and self.picture is not None:
            composition = self.predicate_composition
            if composition == "sum":
                composition += f" blend={self.predicate_blend:g}"
            knobs.append(f"compose={composition}")
        if self.minimum_score:
            knobs.append(f"min_score={self.minimum_score:g}")
        if not self.use_filters:
            knobs.append("no_filters")
        if not self.use_cache:
            knobs.append("no_cache")
        if self.execution is not None:
            knobs.append(f"execution({self.execution.describe()})")
        return " . ".join(clauses) + " [" + ", ".join(knobs) + "]"


# ----------------------------------------------------------------------
# Execution traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateTrace:
    """What the pipeline did with one candidate image."""

    image_id: str
    #: Which shortlist stage admitted — or rejected — the candidate
    #: (``STAGE_*`` constant).
    stage: str
    #: Whether the similarity score came from the cache (``None`` for
    #: predicate-only evaluation or when the cache was bypassed).
    cache_hit: Optional[bool] = None
    #: For candidates rejected by a signature bound: the value that failed —
    #: the score upper bound against the query's ``minimum_score``, or (for
    #: overlap-threshold rejections) the failing overlap ratio.
    score_bound: Optional[float] = None


@dataclass
class QueryTrace:
    """Everything one :meth:`QueryEngine.execute_spec` run recorded.

    ``candidates`` maps image id to its :class:`CandidateTrace`; the counters
    summarise the shortlist funnel (database -> inverted index -> signature
    filter) and cache effectiveness for the whole query.
    """

    mode: str = "similarity"
    database_size: int = 0
    #: How many images the inverted index admitted (``None`` when the
    #: shortlist was skipped entirely, e.g. ``use_filters=False``).
    inverted_candidates: Optional[int] = None
    #: How many candidates survived the signature filter and were scored.
    shortlisted: int = 0
    #: Candidates rejected by the stage-1 hashed-bitmap score/overlap bound.
    bitmap_pruned: int = 0
    #: Candidates rejected by the stage-2 relation-pair score bound.
    relation_pruned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Predicate clause: how many images were actually evaluated vs pruned
    #: to a known-zero match by the label postings.
    predicate_evaluated: int = 0
    predicate_pruned: int = 0
    #: Which LCS kernel scored the candidates (``bitparallel``/``reference``).
    kernel: str = "reference"
    #: Which candidate-processing strategy ran (``anytime``/``exhaustive``).
    strategy: str = "exhaustive"
    #: Admitted candidates whose score was actually confirmed (anytime mode
    #: stops early; exhaustive mode examines every admitted candidate).
    candidates_examined: int = 0
    #: Admitted candidates skipped by the anytime bound cut-off.
    bound_skipped: int = 0
    #: The upper bound of the first skipped candidate (``None`` when the
    #: strategy ran to exhaustion).
    bound_cutoff: Optional[float] = None
    candidates: Dict[str, CandidateTrace] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line funnel summary used by ``explain`` output."""
        parts = [f"{self.database_size} stored"]
        if self.inverted_candidates is not None:
            parts.append(f"{self.inverted_candidates} shared a label")
        if self.bitmap_pruned or self.relation_pruned:
            parts.append(
                f"{self.bitmap_pruned} bitmap-pruned, "
                f"{self.relation_pruned} relation-pruned"
            )
        if self.mode in ("similarity", "combined"):
            parts.append(
                f"{self.shortlisted} scored "
                f"({self.cache_hits} cached, {self.cache_misses} computed)"
            )
            if self.bound_skipped:
                cutoff = (
                    f" at bound {self.bound_cutoff:.3f}"
                    if self.bound_cutoff is not None
                    else ""
                )
                parts.append(
                    f"{self.candidates_examined} examined, "
                    f"{self.bound_skipped} bound-skipped{cutoff}"
                )
        if self.mode in ("predicate", "combined"):
            parts.append(
                f"{self.predicate_evaluated} predicate-evaluated, "
                f"{self.predicate_pruned} label-pruned"
            )
        return " -> ".join(parts)


@dataclass
class SpecOutcome:
    """The full result of running one :class:`QuerySpec`.

    ``results`` is the final ranking: :class:`~repro.index.ranking.RankedResult`
    entries when the spec has a similarity clause, otherwise
    :class:`~repro.retrieval.predicates.PredicateMatch` (crisp) or
    :class:`~repro.retrieval.predicates.GradedMatch` (graded tree) entries.
    In combined mode ``predicate_matches`` additionally carries the
    per-image predicate evaluation used for filtering or composition (keyed
    by image id).
    """

    spec: QuerySpec
    results: List[Union["RankedResult", "PredicateMatch", "GradedMatch"]]
    trace: QueryTrace
    predicate_matches: Optional[Dict[str, Union["PredicateMatch", "GradedMatch"]]] = None
