"""Pluggable storage backends: JSON v1, SQLite, and sharded binary files.

:mod:`repro.index.storage` defines the original whole-file JSON format; this
module generalises persistence behind a :class:`StorageBackend` interface so a
database can outgrow a single JSON blob without the rest of the system
noticing.  Three backends ship:

* :class:`JsonBackend` — the versioned v1 JSON file, byte-compatible with
  databases written before this module existed.  Always a full rewrite.
* :class:`SqliteBackend` — one row per image in a SQLite file.  Supports
  incremental saves (only mutated rows are upserted/deleted) and lazy loading
  (:meth:`SqliteBackend.open_lazy` materialises records on first access).
* :class:`ShardedBackend` — a directory of binary shard files plus a JSON
  manifest; image ids are hashed (CRC-32) across a fixed number of shards and
  an incremental save rewrites only the shards containing dirty images.

Every backend produces the exact same logical content: the per-image entry
dictionaries of the v1 schema (``image_id`` / ``picture`` / ``bestring``),
validated on load by re-encoding each picture and comparing BE-strings.
Round-trip equivalence across backends — identical BE-strings *and* identical
search rankings — is enforced by ``tests/index/test_backends.py``.

Incremental saves are driven by the dirty-id set that
:class:`~repro.index.database.ImageDatabase` accumulates on every mutation
(see :meth:`~repro.index.database.ImageDatabase.dirty_ids`); a successful
save or load clears it.  ``benchmarks/bench_storage_backends.py`` (E11)
measures the payoff: at 10k images with 1% dirty, an incremental sharded save
beats the full JSON rewrite by well over an order of magnitude.

Backend selection is by explicit name (``"json"`` / ``"sqlite"`` /
``"sharded"``), by instance, or inferred from the path — existing files are
sniffed by content (SQLite magic header, shard-manifest directory, otherwise
JSON) and new save targets by suffix (``.sqlite``/``.sqlite3``/``.db`` →
SQLite, ``.shards`` or an existing directory → sharded, anything else → JSON).
See ``docs/storage-formats.md`` for the on-disk format specifications.

The sharded backend additionally supports **crash-safe durability**: a
manifest may carry a ``wal`` block naming an append-only write-ahead log
(:mod:`repro.index.wal`) and the log sequence number (LSN) its shard
snapshot covers.  Loading such a directory replays only the log records past
that LSN, so recovery cost scales with the write delta since the last
compaction.  :class:`DurableShardedBackend` writes those directories, and
:class:`DurableShardedStore` is the live handle a long-running service uses:
fsync'd per-mutation log appends plus threshold-triggered compaction that
rewrites the dirty shards and truncates the log behind an atomic manifest
swap.  See ``docs/durability.md`` for the crash-ordering argument.
"""

from __future__ import annotations

import abc
import copy
import json
import os
import sqlite3
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Union

from repro.index.database import ImageDatabase, ImageRecord
from repro.index.storage import (
    SCHEMA_VERSION,
    StorageError,
    check_schema_version,
    image_entry_to_record,
    image_record_to_json,
    load_database as _load_json_database,
    save_database as _save_json_database,
)
from repro.index.wal import WAL_NAME, WalRecord, WriteAheadLog, read_wal

PathLike = Union[str, Path]

#: Magic header of a binary shard file ("Repro BE-String").
SHARD_MAGIC = b"RBES"
#: Binary shard container version.
SHARD_FORMAT_VERSION = 1
#: File name of the shard-directory manifest.
MANIFEST_NAME = "manifest.json"
#: ``format`` field value a shard manifest must carry.
MANIFEST_FORMAT = "sharded-bestring-v1"
#: Default number of shard files for a sharded database.
DEFAULT_SHARD_COUNT = 16
#: First bytes of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"
#: Suffixes inferred as SQLite when saving to a fresh path.
_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}
#: Suffix inferred as a sharded directory when saving to a fresh path.
_SHARDED_SUFFIX = ".shards"


def shard_index_for(image_id: str, shard_count: int) -> int:
    """Map an image id to its shard index (stable CRC-32 hash).

    Returns:
        The shard index in ``[0, shard_count)``; the mapping is stable across
        processes and Python versions (unlike the built-in ``hash``).
    """
    return zlib.crc32(image_id.encode("utf-8")) % shard_count


class StorageBackend(abc.ABC):
    """Persistence strategy for an :class:`~repro.index.database.ImageDatabase`.

    Implementations must write the logical v1 content (schema version,
    database name, per-image entries) and validate BE-strings on load.  A
    successful :meth:`save` or :meth:`load` clears the database's dirty set.
    """

    #: Registry name of the backend (``"json"``, ``"sqlite"``, ``"sharded"``).
    name: str = "abstract"

    #: Whether saves persist the per-image shortlist signatures
    #: (:mod:`repro.index.shortlist`) alongside pictures and BE-strings, so
    #: warm starts skip the signature recomputation.  ``repro convert
    #: --no-signatures`` turns this off to write lean databases; loading a
    #: database without signatures simply rebuilds them lazily.
    persist_signatures: bool = True

    @abc.abstractmethod
    def save(
        self, database: ImageDatabase, path: PathLike, *, incremental: bool = False
    ) -> Path:
        """Persist ``database`` to ``path``.

        With ``incremental=True`` a backend that supports it rewrites only the
        storage units (rows, shards) containing images in
        :attr:`~repro.index.database.ImageDatabase.dirty_ids`, falling back to
        a full rewrite when the target is absent or inconsistent.

        Returns:
            The path written.

        Raises:
            StorageError: if the target exists but is not a valid database of
                this backend's format.
        """

    @abc.abstractmethod
    def load(self, path: PathLike) -> ImageDatabase:
        """Load a database from ``path``, validating every BE-string.

        Returns:
            The reconstructed database with a clean dirty set.

        Raises:
            StorageError: if the file/directory is missing pieces, corrupt, or
                fails validation; the message names the offending path.
        """

    @abc.abstractmethod
    def describe(self, path: PathLike) -> Dict[str, Any]:
        """Summarise a stored database without fully validating it.

        Returns:
            A dictionary with at least ``format``, ``schema_version``,
            ``name`` and ``images`` (count); backends add format-specific
            keys (``size_bytes``, ``shard_count``, ...).

        Raises:
            StorageError: if the target is not a database of this format.
        """


# ----------------------------------------------------------------------
# JSON (v1) backend
# ----------------------------------------------------------------------
class JsonBackend(StorageBackend):
    """The original whole-file JSON format (schema v1, byte-compatible)."""

    name = "json"

    def save(
        self, database: ImageDatabase, path: PathLike, *, incremental: bool = False
    ) -> Path:
        """Write the database as one v1 JSON file (always a full rewrite).

        ``incremental`` is accepted for interface symmetry but has no effect:
        a single JSON document cannot be partially rewritten.

        Returns:
            The path written.
        """
        target = Path(path)
        if target.is_dir():
            raise StorageError(f"{target} is a directory, not a JSON database file")
        _save_json_database(database, target, include_signatures=self.persist_signatures)
        database.clear_dirty()
        return target

    def load(self, path: PathLike) -> ImageDatabase:
        """Read a v1 JSON database file.

        Returns:
            The reconstructed database with a clean dirty set.

        Raises:
            StorageError: on invalid JSON/UTF-8 or failed validation.
            FileNotFoundError: if ``path`` does not exist.
        """
        database = _load_json_database(path)
        database.clear_dirty()
        return database

    def describe(self, path: PathLike) -> Dict[str, Any]:
        """Summarise a JSON database file (parses it, skips BE validation).

        Returns:
            Format, schema version, name, image count and file size.

        Raises:
            StorageError: if the file is not valid JSON.
        """
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise StorageError(f"{source} is not a valid JSON database: {error}") from error
        if not isinstance(payload, dict) or not isinstance(payload.get("images", []), list):
            raise StorageError(f"{source} is not a valid JSON database (bad structure)")
        images = payload.get("images", [])
        return {
            "format": self.name,
            "path": str(source),
            "schema_version": payload.get("schema_version"),
            "name": payload.get("name"),
            "images": len(images),
            "signatures": bool(images)
            and all(isinstance(entry, dict) and "signature" in entry for entry in images),
            "size_bytes": source.stat().st_size,
        }


# ----------------------------------------------------------------------
# SQLite backend
# ----------------------------------------------------------------------
class SqliteBackend(StorageBackend):
    """One row per image in a SQLite file, with incremental upserts.

    Table layout (see ``docs/storage-formats.md``)::

        meta   (key TEXT PRIMARY KEY, value TEXT)        -- schema_version, name
        images (image_id TEXT PRIMARY KEY,
                picture TEXT NOT NULL,                   -- JSON, v1 entry shape
                bestring TEXT NOT NULL,                  -- JSON, v1 entry shape
                signature TEXT)                          -- JSON shortlist signature

    The ``signature`` column is nullable and absent from pre-signature files;
    such files still load (signatures rebuild lazily) and an incremental save
    against them falls back to a full rewrite that upgrades the schema.
    """

    name = "sqlite"

    def save(
        self, database: ImageDatabase, path: PathLike, *, incremental: bool = False
    ) -> Path:
        """Persist to a SQLite file; ``incremental=True`` upserts dirty rows only.

        An incremental save against a missing or inconsistent target falls
        back to a full rewrite.

        Returns:
            The path written.
        """
        target = Path(path)
        if target.is_dir():
            raise StorageError(f"{target} is a directory, not a SQLite database file")
        target.parent.mkdir(parents=True, exist_ok=True)
        if incremental and target.exists() and self._can_update(target, database):
            self._save_incremental(database, target)
        else:
            self._save_full(database, target)
        database.clear_dirty()
        return target

    def load(self, path: PathLike) -> ImageDatabase:
        """Eagerly load and validate every stored image.

        Returns:
            The reconstructed database with a clean dirty set.

        Raises:
            StorageError: if the file is not a SQLite database, is truncated,
                has the wrong schema, or fails BE-string validation.
            FileNotFoundError: if ``path`` does not exist.
        """
        source = Path(path)
        if not source.exists():
            raise FileNotFoundError(f"no such database file: {source}")
        connection = self._connect(source)
        try:
            name = self._read_meta(connection, source)
            database = ImageDatabase(name=name)
            try:
                try:
                    rows = connection.execute(
                        "SELECT image_id, picture, bestring, signature "
                        "FROM images ORDER BY image_id"
                    ).fetchall()
                except sqlite3.OperationalError:
                    # Pre-signature schema: load without the column.
                    rows = [
                        (image_id, picture_json, bestring_json, None)
                        for image_id, picture_json, bestring_json in connection.execute(
                            "SELECT image_id, picture, bestring FROM images "
                            "ORDER BY image_id"
                        )
                    ]
            except sqlite3.DatabaseError as error:
                raise StorageError(f"{source} is not a valid SQLite database: {error}") from error
            for image_id, picture_json, bestring_json, signature_json in rows:
                entry = self._row_to_entry(
                    source, image_id, picture_json, bestring_json, signature_json
                )
                try:
                    image_entry_to_record(database, entry)
                except StorageError as error:
                    raise StorageError(f"{source}: {error}") from error
        finally:
            connection.close()
        database.clear_dirty()
        return database

    def open_lazy(self, path: PathLike) -> "LazySqliteImageDatabase":
        """Open a database without materialising any record.

        Rows are fetched, parsed and BE-validated on first access of each
        image (:meth:`~repro.index.database.ImageDatabase.get`), so opening a
        million-image file is O(number of ids), not O(total content).

        Returns:
            A :class:`LazySqliteImageDatabase` bound to an open connection
            (call its ``close()`` when done).

        Raises:
            StorageError: if the file is not a valid database of this format.
            FileNotFoundError: if ``path`` does not exist.
        """
        source = Path(path)
        if not source.exists():
            raise FileNotFoundError(f"no such database file: {source}")
        connection = self._connect(source)
        try:
            name = self._read_meta(connection, source)
            ids = [
                row[0]
                for row in connection.execute("SELECT image_id FROM images ORDER BY image_id")
            ]
        except sqlite3.DatabaseError as error:
            connection.close()
            raise StorageError(f"{source} is not a valid SQLite database: {error}") from error
        except StorageError:
            connection.close()
            raise
        return LazySqliteImageDatabase(connection, source, name, ids)

    def describe(self, path: PathLike) -> Dict[str, Any]:
        """Summarise a SQLite database file (row count, no BE validation).

        Returns:
            Format, schema version, name, image count and file size.

        Raises:
            StorageError: if the file is not a valid database of this format.
        """
        source = Path(path)
        connection = self._connect(source)
        try:
            name = self._read_meta(connection, source)
            count = connection.execute("SELECT COUNT(*) FROM images").fetchone()[0]
            columns = {
                row[1] for row in connection.execute("PRAGMA table_info(images)")
            }
            signatures = "signature" in columns
            if signatures and count:
                missing = connection.execute(
                    "SELECT COUNT(*) FROM images WHERE signature IS NULL"
                ).fetchone()[0]
                signatures = missing == 0
        except sqlite3.DatabaseError as error:
            raise StorageError(f"{source} is not a valid SQLite database: {error}") from error
        finally:
            connection.close()
        return {
            "format": self.name,
            "path": str(source),
            "schema_version": SCHEMA_VERSION,
            "name": name,
            "images": count,
            "signatures": signatures,
            "size_bytes": source.stat().st_size,
        }

    # -- internals ------------------------------------------------------
    @staticmethod
    def _connect(path: Path) -> sqlite3.Connection:
        try:
            connection = sqlite3.connect(str(path))
            connection.execute("PRAGMA foreign_keys = ON")
        except sqlite3.Error as error:
            raise StorageError(
                f"{path} cannot be opened as a SQLite database: {error}"
            ) from error
        return connection

    @staticmethod
    def _row_to_entry(
        source: Path,
        image_id: str,
        picture_json: str,
        bestring_json: str,
        signature_json: Optional[str] = None,
    ) -> Dict[str, Any]:
        try:
            entry = {
                "image_id": image_id,
                "picture": json.loads(picture_json),
                "bestring": json.loads(bestring_json),
            }
        except json.JSONDecodeError as error:
            raise StorageError(
                f"{source}: row for image {image_id!r} holds invalid JSON: {error}"
            ) from error
        if signature_json:
            try:
                entry["signature"] = json.loads(signature_json)
            except json.JSONDecodeError:
                # A derived signature never blocks a load; rebuild lazily.
                pass
        return entry

    def _read_meta(self, connection: sqlite3.Connection, source: Path) -> str:
        """Validate schema/version of an open connection; returns the db name."""
        try:
            rows = dict(connection.execute("SELECT key, value FROM meta"))
        except sqlite3.DatabaseError as error:
            raise StorageError(f"{source} is not a valid SQLite database: {error}") from error
        try:
            version = int(rows.get("schema_version", "-1"))
        except ValueError:
            version = None
        try:
            check_schema_version(version)
        except StorageError as error:
            raise StorageError(f"{source}: {error}") from error
        return rows.get("name", "image-database")

    def _can_update(self, target: Path, database: ImageDatabase) -> bool:
        """True when an incremental upsert against ``target`` is consistent.

        A pre-signature schema (no ``signature`` column) also answers False,
        so the incremental save falls back to a full rewrite that upgrades
        the file in place.
        """
        try:
            connection = self._connect(target)
            try:
                self._read_meta(connection, target)
                columns = {
                    row[1] for row in connection.execute("PRAGMA table_info(images)")
                }
                if "signature" not in columns:
                    return False
                stored = {
                    row[0] for row in connection.execute("SELECT image_id FROM images")
                }
            finally:
                connection.close()
        except (StorageError, sqlite3.DatabaseError):
            return False
        dirty = database.dirty_ids
        current = set(database.image_ids)
        # Outside the dirty set, the file must already hold exactly the
        # database's images; otherwise an incremental save would silently
        # diverge from a full one.
        return stored - dirty == current - dirty

    def _save_full(self, database: ImageDatabase, target: Path) -> None:
        if target.exists():
            target.unlink()
        connection = self._connect(target)
        try:
            with connection:
                connection.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
                connection.execute(
                    "CREATE TABLE images ("
                    "image_id TEXT PRIMARY KEY, "
                    "picture TEXT NOT NULL, "
                    "bestring TEXT NOT NULL, "
                    "signature TEXT)"
                )
                connection.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [("schema_version", str(SCHEMA_VERSION)), ("name", database.name)],
                )
                connection.executemany(
                    "INSERT INTO images (image_id, picture, bestring, signature) "
                    "VALUES (?, ?, ?, ?)",
                    (self._record_row(record) for record in database),
                )
        finally:
            connection.close()

    def _save_incremental(self, database: ImageDatabase, target: Path) -> None:
        connection = self._connect(target)
        try:
            with connection:
                connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('name', ?)",
                    (database.name,),
                )
                for image_id in sorted(database.dirty_ids):
                    if image_id in database:
                        connection.execute(
                            "INSERT OR REPLACE INTO images "
                            "(image_id, picture, bestring, signature) "
                            "VALUES (?, ?, ?, ?)",
                            self._record_row(database.get(image_id)),
                        )
                    else:
                        connection.execute(
                            "DELETE FROM images WHERE image_id = ?", (image_id,)
                        )
        finally:
            connection.close()

    def _record_row(self, record: ImageRecord) -> tuple:
        entry = image_record_to_json(record, include_signature=self.persist_signatures)
        return (
            record.image_id,
            json.dumps(entry["picture"], sort_keys=True),
            json.dumps(entry["bestring"], sort_keys=True),
            json.dumps(entry["signature"], sort_keys=True)
            if "signature" in entry
            else None,
        )


class LazySqliteImageDatabase(ImageDatabase):
    """An :class:`~repro.index.database.ImageDatabase` view over a SQLite file.

    Records materialise (parse + BE-string validation) on first access; the
    set of already-loaded ids is exposed as :attr:`loaded_ids` so tests and
    tools can verify laziness.  Whole-database operations (iteration,
    statistics) materialise everything first.  Close the underlying
    connection with :meth:`close` when done.
    """

    def __init__(
        self, connection: sqlite3.Connection, path: Path, name: str, image_ids: List[str]
    ) -> None:
        """Bind to an open connection; ``image_ids`` is the full id listing."""
        super().__init__(name=name)
        self._connection = connection
        self._path = path
        self._pending = set(image_ids)

    @property
    def loaded_ids(self) -> FrozenSet[str]:
        """Ids whose records have been materialised so far."""
        return frozenset(self._records)

    def close(self) -> None:
        """Close the underlying SQLite connection (loaded records stay usable)."""
        self._connection.close()

    def get(self, image_id: str) -> ImageRecord:
        """Fetch a record, materialising it from SQLite on first access.

        Raises:
            DatabaseError: if no image with ``image_id`` is stored.
            StorageError: if the stored row is corrupt or inconsistent.
        """
        if image_id in self._pending:
            self._materialize(image_id)
        return super().get(image_id)

    def remove_picture(self, image_id: str) -> ImageRecord:
        """Materialise then remove a stored image (returns its record)."""
        if image_id in self._pending:
            self._materialize(image_id)
        return super().remove_picture(image_id)

    def materialize_all(self) -> None:
        """Load every still-pending record (used before whole-db operations)."""
        for image_id in sorted(self._pending):
            self._materialize(image_id)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._pending or super().__contains__(image_id)

    def __len__(self) -> int:
        return len(self._pending) + len(self._records)

    def __iter__(self) -> Iterator[ImageRecord]:
        self.materialize_all()
        return super().__iter__()

    @property
    def image_ids(self) -> List[str]:
        """Ids of all stored images (pending and loaded), sorted."""
        return sorted(self._pending | set(self._records))

    def total_objects(self) -> int:
        """Total icon objects across all images (materialises everything)."""
        self.materialize_all()
        return super().total_objects()

    def total_storage_symbols(self) -> int:
        """Total stored BE-string symbols (materialises everything)."""
        self.materialize_all()
        return super().total_storage_symbols()

    def statistics(self) -> Dict[str, float]:
        """Database statistics (materialises everything first)."""
        self.materialize_all()
        return super().statistics()

    def _materialize(self, image_id: str) -> None:
        try:
            try:
                row = self._connection.execute(
                    "SELECT picture, bestring, signature FROM images WHERE image_id = ?",
                    (image_id,),
                ).fetchone()
            except sqlite3.OperationalError:
                # Pre-signature schema: materialise without the column.
                row = self._connection.execute(
                    "SELECT picture, bestring, NULL FROM images WHERE image_id = ?",
                    (image_id,),
                ).fetchone()
        except sqlite3.DatabaseError as error:
            raise StorageError(
                f"{self._path} is not a valid SQLite database: {error}"
            ) from error
        self._pending.discard(image_id)
        if row is None:
            return
        entry = SqliteBackend._row_to_entry(self._path, image_id, row[0], row[1], row[2])
        try:
            image_entry_to_record(self, entry)
        except StorageError as error:
            raise StorageError(f"{self._path}: {error}") from error
        # Materialisation is a read, not a mutation.
        self._dirty.discard(image_id)


# ----------------------------------------------------------------------
# Sharded binary backend
# ----------------------------------------------------------------------
class ShardedBackend(StorageBackend):
    """A directory of binary shard files with a JSON manifest.

    Image ids are hashed (CRC-32, stable across processes) into
    ``shard_count`` buckets; each bucket is one binary file of
    zlib-compressed, length-framed JSON image entries.  The manifest records
    the schema version, database name, shard count and the id list of every
    shard, so an incremental save can rewrite only the shards whose images
    are dirty.  See ``docs/storage-formats.md`` for the byte layout.
    """

    name = "sharded"

    #: The ``wal`` manifest block the next save should carry (``None`` writes
    #: a plain, non-durable manifest).  :class:`DurableShardedBackend` sets it
    #: around its snapshot saves; plain saves clear any previous block, which
    #: also retires a now-redundant log file (the snapshot covers everything).
    wal_block: Optional[Dict[str, Any]] = None

    def __init__(self, shard_count: int = DEFAULT_SHARD_COUNT) -> None:
        """Configure the number of shard files used on a full save.

        Raises:
            ValueError: if ``shard_count`` is not positive.
        """
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    # -- saving ---------------------------------------------------------
    def save(
        self, database: ImageDatabase, path: PathLike, *, incremental: bool = False
    ) -> Path:
        """Persist to a shard directory; ``incremental=True`` rewrites dirty shards only.

        A full save honours this backend's ``shard_count``; an incremental
        save keeps the shard count of the existing directory.  Incremental
        saves against a missing or inconsistent target fall back to a full
        rewrite.

        Returns:
            The directory written.
        """
        target = Path(path)
        if target.exists() and not target.is_dir():
            raise StorageError(f"{target} is a file, not a shard directory")
        manifest = self._try_manifest(target) if incremental else None
        if manifest is not None and self._can_update(manifest, database):
            self._save_incremental(database, target, manifest)
        else:
            self._save_full(database, target)
        if self.wal_block is None:
            # A plain snapshot covers the whole database, so any leftover
            # write-ahead log is redundant — drop it rather than leaving a
            # stale file the manifest no longer references.
            stale_wal = target / WAL_NAME
            if stale_wal.exists():
                try:
                    stale_wal.unlink()
                except OSError as error:
                    raise StorageError(
                        f"{stale_wal} cannot be removed: {error}"
                    ) from error
        database.clear_dirty()
        return target

    def _save_full(self, database: ImageDatabase, target: Path) -> None:
        target.mkdir(parents=True, exist_ok=True)
        buckets: List[List[ImageRecord]] = [[] for _ in range(self.shard_count)]
        for record in database:
            buckets[shard_index_for(record.image_id, self.shard_count)].append(record)
        shards: Dict[str, Dict[str, Any]] = {}
        for index, bucket in enumerate(buckets):
            file_name = self._shard_file_name(index)
            self._write_shard(target / file_name, bucket)
            shards[f"{index:04d}"] = {
                "file": file_name,
                "images": sorted(record.image_id for record in bucket),
            }
        # Drop shard files from a previous layout (e.g. a larger shard count).
        expected = {self._shard_file_name(i) for i in range(self.shard_count)}
        for stale in target.glob("shard-*.bin"):
            if stale.name not in expected:
                stale.unlink()
        self._write_manifest(target, database.name, self.shard_count, shards)

    def _save_incremental(
        self, database: ImageDatabase, target: Path, manifest: Dict[str, Any]
    ) -> None:
        shard_count = manifest["shard_count"]
        shards: Dict[str, Dict[str, Any]] = dict(manifest["shards"])
        dirty_shards = {
            shard_index_for(image_id, shard_count) for image_id in database.dirty_ids
        }
        if dirty_shards:
            buckets: Dict[int, List[ImageRecord]] = {index: [] for index in dirty_shards}
            for record in database:
                index = shard_index_for(record.image_id, shard_count)
                if index in dirty_shards:
                    buckets[index].append(record)
            for index, bucket in buckets.items():
                file_name = self._shard_file_name(index)
                self._write_shard(target / file_name, bucket)
                shards[f"{index:04d}"] = {
                    "file": file_name,
                    "images": sorted(record.image_id for record in bucket),
                }
        # Untouched shards keep their original payload, so the manifest only
        # advertises signatures when the old state and this save both had them.
        self._write_manifest(
            target,
            database.name,
            shard_count,
            shards,
            signatures=bool(manifest.get("signatures", False)) and self.persist_signatures,
        )

    def _can_update(self, manifest: Dict[str, Any], database: ImageDatabase) -> bool:
        """True when the manifest matches the database outside the dirty set."""
        stored = {
            image_id
            for entry in manifest["shards"].values()
            for image_id in entry["images"]
        }
        dirty = database.dirty_ids
        current = set(database.image_ids)
        return stored - dirty == current - dirty

    @staticmethod
    def _shard_file_name(index: int) -> str:
        return f"shard-{index:04d}.bin"

    def _write_shard(self, path: Path, records: List[ImageRecord]) -> None:
        ordered = sorted(records, key=lambda record: record.image_id)
        chunks = [SHARD_MAGIC, struct.pack("<BI", SHARD_FORMAT_VERSION, len(ordered))]
        for record in ordered:
            entry = image_record_to_json(
                record, include_signature=self.persist_signatures
            )
            # Level 1: save latency matters more than the last few percent of
            # ratio, and decompression accepts any level.
            blob = zlib.compress(json.dumps(entry, sort_keys=True).encode("utf-8"), 1)
            chunks.append(struct.pack("<I", len(blob)))
            chunks.append(blob)
        temporary = path.with_suffix(".bin.tmp")
        try:
            temporary.write_bytes(b"".join(chunks))
            os.replace(temporary, path)
        except OSError as error:
            raise StorageError(f"{path} cannot be written: {error}") from error

    def _write_manifest(
        self,
        target: Path,
        name: str,
        shard_count: int,
        shards: Dict[str, Dict[str, Any]],
        signatures: Optional[bool] = None,
    ) -> None:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "format": MANIFEST_FORMAT,
            "name": name,
            "shard_count": shard_count,
            "signatures": self.persist_signatures if signatures is None else signatures,
            "shards": {key: shards[key] for key in sorted(shards)},
        }
        if self.wal_block is not None:
            payload["wal"] = dict(self.wal_block)
        manifest_path = target / MANIFEST_NAME
        temporary = target / (MANIFEST_NAME + ".tmp")
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, indent=2, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, manifest_path)
        except OSError as error:
            raise StorageError(f"{manifest_path} cannot be written: {error}") from error

    # -- loading --------------------------------------------------------
    def load(self, path: PathLike) -> ImageDatabase:
        """Read every shard of a shard directory, validating BE-strings.

        When the manifest carries a ``wal`` block, the write-ahead log's
        records *past* the snapshot LSN are replayed on top of the shard
        contents (upserts replace, deletes remove), so acknowledged writes
        that never reached a shard still load.  A torn log tail — the
        signature of a crash mid-append — silently ends the replay at the
        last intact record; it never fails the load.

        Returns:
            The reconstructed database with a clean dirty set.

        Raises:
            StorageError: on a missing/corrupt manifest, a missing or
                truncated shard file, or failed validation.
            FileNotFoundError: if the directory does not exist.
        """
        source = Path(path)
        if not source.exists():
            raise FileNotFoundError(f"no such shard directory: {source}")
        manifest = self._read_manifest(source)
        database = ImageDatabase(name=manifest.get("name", "image-database"))
        entries: List[Dict[str, Any]] = []
        for key in sorted(manifest["shards"]):
            shard_path = source / manifest["shards"][key]["file"]
            entries.extend(self._read_shard(shard_path))
        entries.sort(key=lambda entry: str(entry.get("image_id", "")))
        for entry in entries:
            try:
                image_entry_to_record(database, entry)
            except StorageError as error:
                raise StorageError(f"{source}: {error}") from error
        self._replay_wal(source, manifest, database)
        database.clear_dirty()
        return database

    @staticmethod
    def pending_wal_records(source: Path, manifest: Dict[str, Any]) -> List[WalRecord]:
        """The intact log records past the manifest's snapshot LSN.

        Returns:
            An empty list when the manifest has no ``wal`` block or the log
            file is missing; a torn tail bounds the list at the last intact
            record.

        Raises:
            StorageError: if the log file exists but is unreadable or is not
                a write-ahead log at all.
        """
        wal_info = manifest.get("wal")
        if not wal_info:
            return []
        records, _, _ = read_wal(source / wal_info["file"])
        snapshot_lsn = wal_info["snapshot_lsn"]
        return [record for record in records if record.lsn > snapshot_lsn]

    def _replay_wal(
        self, source: Path, manifest: Dict[str, Any], database: ImageDatabase
    ) -> int:
        """Apply the pending log records to ``database``; returns the count."""
        pending = self.pending_wal_records(source, manifest)
        for record in pending:
            if record.image_id in database:
                database.remove_picture(record.image_id)
            if record.op == "upsert":
                entry = dict(record.entry or {})
                entry["image_id"] = record.image_id
                try:
                    image_entry_to_record(database, entry)
                except StorageError as error:
                    raise StorageError(
                        f"{source}: write-ahead log record {record.lsn} "
                        f"({record.image_id!r}): {error}"
                    ) from error
        return len(pending)

    def describe(self, path: PathLike) -> Dict[str, Any]:
        """Summarise a shard directory from its manifest alone.

        Returns:
            Format, schema version, name, image count, shard count and total
            size on disk.

        Raises:
            StorageError: if the manifest is missing or malformed.
        """
        source = Path(path)
        manifest = self._read_manifest(source)
        images = sum(len(entry["images"]) for entry in manifest["shards"].values())
        size = sum(
            (source / entry["file"]).stat().st_size
            for entry in manifest["shards"].values()
            if (source / entry["file"]).exists()
        )
        summary = {
            "format": self.name,
            "path": str(source),
            "schema_version": manifest.get("schema_version"),
            "name": manifest.get("name"),
            "images": images,
            "shard_count": manifest.get("shard_count"),
            "signatures": bool(manifest.get("signatures", False)),
            "size_bytes": size + (source / MANIFEST_NAME).stat().st_size,
        }
        wal_info = manifest.get("wal")
        if wal_info:
            wal_path = source / wal_info["file"]
            records, _, clean = read_wal(wal_path)
            snapshot_lsn = wal_info["snapshot_lsn"]
            summary["wal"] = {
                "file": wal_info["file"],
                "snapshot_lsn": snapshot_lsn,
                "last_lsn": max(
                    snapshot_lsn, records[-1].lsn if records else 0
                ),
                "pending_records": sum(
                    1 for record in records if record.lsn > snapshot_lsn
                ),
                "clean": clean,
                "size_bytes": wal_path.stat().st_size if wal_path.exists() else 0,
            }
        return summary

    def _try_manifest(self, source: Path) -> Optional[Dict[str, Any]]:
        try:
            return self._read_manifest(source)
        except (StorageError, FileNotFoundError):
            return None

    @staticmethod
    def _read_manifest(source: Path) -> Dict[str, Any]:
        manifest_path = source / MANIFEST_NAME
        if not manifest_path.exists():
            raise StorageError(f"{source} has no {MANIFEST_NAME} (not a sharded database)")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise StorageError(f"{manifest_path} is not valid JSON: {error}") from error
        except OSError as error:
            raise StorageError(f"{manifest_path} cannot be read: {error}") from error
        if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
            raise StorageError(
                f"{manifest_path}: unsupported manifest format "
                f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}"
            )
        try:
            check_schema_version(manifest.get("schema_version"))
        except StorageError as error:
            raise StorageError(f"{manifest_path}: {error}") from error
        shards = manifest.get("shards")
        shard_count = manifest.get("shard_count")
        if (
            not isinstance(shards, dict)
            or not isinstance(shard_count, int)
            or shard_count < 1
            or any(
                not isinstance(entry, dict)
                or "file" not in entry
                or not isinstance(entry.get("images"), list)
                for entry in shards.values()
            )
        ):
            raise StorageError(f"{manifest_path}: malformed shard table")
        wal_info = manifest.get("wal")
        if wal_info is not None and (
            not isinstance(wal_info, dict)
            or not isinstance(wal_info.get("file"), str)
            or isinstance(wal_info.get("snapshot_lsn"), bool)
            or not isinstance(wal_info.get("snapshot_lsn"), int)
            or wal_info["snapshot_lsn"] < 0
        ):
            raise StorageError(f"{manifest_path}: malformed wal block")
        return manifest

    @staticmethod
    def _read_shard(shard_path: Path) -> List[Dict[str, Any]]:
        if not shard_path.exists():
            raise StorageError(f"missing shard file: {shard_path}")
        try:
            data = shard_path.read_bytes()
        except OSError as error:
            raise StorageError(f"{shard_path} cannot be read: {error}") from error
        if data[:4] != SHARD_MAGIC:
            raise StorageError(f"{shard_path} is not a shard file (bad magic)")
        try:
            version, count = struct.unpack_from("<BI", data, 4)
        except struct.error as error:
            raise StorageError(f"{shard_path} is truncated: {error}") from error
        if version != SHARD_FORMAT_VERSION:
            raise StorageError(
                f"{shard_path}: unsupported shard version {version} "
                f"(expected {SHARD_FORMAT_VERSION})"
            )
        entries: List[Dict[str, Any]] = []
        offset = 9
        for _ in range(count):
            try:
                (length,) = struct.unpack_from("<I", data, offset)
            except struct.error as error:
                raise StorageError(f"{shard_path} is truncated: {error}") from error
            offset += 4
            blob = data[offset : offset + length]
            if len(blob) != length:
                raise StorageError(f"{shard_path} is truncated (short record)")
            offset += length
            try:
                entries.append(json.loads(zlib.decompress(blob).decode("utf-8")))
            except (zlib.error, json.JSONDecodeError, UnicodeDecodeError) as error:
                raise StorageError(f"{shard_path} holds a corrupt record: {error}") from error
        return entries


# ----------------------------------------------------------------------
# Durable sharded backend (snapshot + write-ahead log)
# ----------------------------------------------------------------------
class DurableShardedBackend(ShardedBackend):
    """A sharded directory whose manifest anchors a write-ahead log.

    A save is a *compaction*: it snapshots the database into the shard files
    (full or dirty-shards incremental), swaps in a manifest whose ``wal``
    block records the LSN that snapshot covers, and truncates the log.  The
    crash-ordering argument (any prefix of these steps recovers to the same
    acknowledged state) lives in ``docs/durability.md``.

    Loading is inherited from :class:`ShardedBackend`, which already replays
    pending log records past the manifest's snapshot LSN — a plain reader
    and a durable writer always agree on the database contents.
    """

    name = "durable"

    def save(
        self, database: ImageDatabase, path: PathLike, *, incremental: bool = False
    ) -> Path:
        """Snapshot ``database``, anchor the log at the covered LSN, truncate.

        Returns:
            The directory written.

        Raises:
            StorageError: if the target exists in an incompatible format or
                any shard/manifest/log write fails (message names the path).
        """
        target = Path(path)
        if target.exists() and not target.is_dir():
            raise StorageError(f"{target} is a file, not a shard directory")
        covered = self.current_lsn(target)
        self.save_snapshot(database, target, snapshot_lsn=covered, incremental=incremental)
        # Everything at or below ``covered`` is now in the shards; an empty
        # log (with LSNs resuming past the floor) replaces the old one.
        with WriteAheadLog(target / WAL_NAME, floor_lsn=covered) as log:
            log.truncate_through(covered)
        return target

    def save_snapshot(
        self,
        database: ImageDatabase,
        path: PathLike,
        *,
        snapshot_lsn: int,
        incremental: bool = False,
    ) -> Path:
        """Write the shard snapshot + manifest only (the log is left alone).

        :class:`DurableShardedStore` calls this during compaction and
        truncates the log itself once the manifest swap has landed; crash in
        between and the untrimmed records are simply skipped on replay.

        Returns:
            The directory written.
        """
        self.wal_block = {"file": WAL_NAME, "snapshot_lsn": snapshot_lsn}
        try:
            return super().save(database, path, incremental=incremental)
        finally:
            self.wal_block = None

    def current_lsn(self, path: PathLike) -> int:
        """The highest LSN the directory knows (snapshot floor or log tail).

        Returns:
            0 for a fresh or non-durable target.
        """
        target = Path(path)
        manifest = self._try_manifest(target)
        if manifest is None or not manifest.get("wal"):
            return 0
        wal_info = manifest["wal"]
        records, _, _ = read_wal(target / wal_info["file"])
        return max(wal_info["snapshot_lsn"], records[-1].lsn if records else 0)


class DurableShardedStore:
    """The live durability handle of a long-running service.

    Binds an in-memory :class:`~repro.index.database.ImageDatabase` to a
    durable shard directory: every acknowledged mutation is first applied in
    memory, then appended to the write-ahead log (fsync'd before the caller
    may ack), while the dirty-id set accumulates until :meth:`compact`
    rewrites the dirty shards and truncates the log behind an atomic
    manifest swap.  Opening a store against a directory with pending log
    records re-marks those ids dirty, so the *next* compaction still rewrites
    exactly the delta — recovery work never exceeds the write delta.

    Thread safety: appends and compaction serialise on an internal lock; the
    service additionally brackets both in its mutation lock so a compaction
    snapshot never interleaves with a half-applied mutation.
    """

    def __init__(
        self,
        database: ImageDatabase,
        path: PathLike,
        *,
        shard_count: Optional[int] = None,
        compact_threshold: int = 256,
        fsync: bool = True,
    ) -> None:
        """Bind ``database`` to the durable directory at ``path``.

        A fresh or non-durable target gets a full durable snapshot first; an
        existing durable directory is adopted as-is (the caller is expected
        to have loaded ``database`` from it, which replayed the log).

        Raises:
            StorageError: if the target exists in an incompatible format or
                the snapshot/log cannot be written.
            ValueError: on a non-positive ``compact_threshold``.
        """
        if compact_threshold < 1:
            raise ValueError(f"compact_threshold must be >= 1, got {compact_threshold}")
        self.database = database
        self.path = Path(path)
        self.compact_threshold = compact_threshold
        manifest = DurableShardedBackend()._try_manifest(self.path)
        if shard_count is None and manifest is not None:
            # Upgrading an existing sharded directory keeps its layout.
            shard_count = manifest.get("shard_count")
        self.backend = DurableShardedBackend(
            shard_count=shard_count or DEFAULT_SHARD_COUNT
        )
        self.compactions = 0
        self._lock = threading.Lock()
        if manifest is None or not manifest.get("wal"):
            # Initialise: full durable snapshot of the current database.
            self.backend.save(self.database, self.path)
            manifest = self.backend._read_manifest(self.path)
        wal_info = manifest["wal"]
        self.snapshot_lsn = wal_info["snapshot_lsn"]
        self.wal = WriteAheadLog(
            self.path / wal_info["file"], floor_lsn=self.snapshot_lsn, fsync=fsync
        )
        # Records past the snapshot are in memory (replayed on load) but not
        # yet in a shard: their shards are what the next compaction rewrites.
        for record in self.wal.records:
            if record.lsn > self.snapshot_lsn:
                self.database.mark_dirty(record.image_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """The LSN of the most recent acknowledged mutation."""
        return self.wal.last_lsn

    @property
    def pending_records(self) -> int:
        """Log records not yet covered by the shard snapshot."""
        return self.wal.pending_past(self.snapshot_lsn)

    @property
    def wal_size_bytes(self) -> int:
        """Current on-disk size of the write-ahead log file (0 if missing)."""
        try:
            return self.wal.path.stat().st_size
        except OSError:
            return 0

    def should_compact(self) -> bool:
        """Whether the pending delta has reached the compaction threshold."""
        return self.pending_records >= self.compact_threshold

    # ------------------------------------------------------------------
    # Logging (call after applying the mutation in memory; ack on return)
    # ------------------------------------------------------------------
    def log_upsert(self, record: ImageRecord) -> int:
        """Durably log an added/replaced image; returns its LSN once fsync'd."""
        entry = image_record_to_json(
            record, include_signature=self.backend.persist_signatures
        )
        with self._lock:
            return self.wal.append("upsert", record.image_id, entry)

    def log_delete(self, image_id: str) -> int:
        """Durably log a removal; returns its LSN once fsync'd."""
        with self._lock:
            return self.wal.append("delete", image_id)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Fold the pending delta into the shards and truncate the log.

        Steps, in crash-safe order: rewrite the dirty shards (each behind a
        temp-file + atomic rename), swap in a manifest whose snapshot LSN is
        the current log tail, then truncate the log.  A crash after any
        prefix recovers identically: shard rewrites without the manifest are
        reconciled by replay, and an untrimmed log behind a new manifest is
        skipped by the snapshot-LSN check.

        Returns:
            The new snapshot LSN.

        Raises:
            StorageError: if any write fails; the on-disk state stays
                recoverable (the old manifest + full log still replay).
        """
        with self._lock:
            covered = self.wal.last_lsn
            self.backend.save_snapshot(
                self.database, self.path, snapshot_lsn=covered, incremental=True
            )
            self.snapshot_lsn = covered
            self.wal.truncate_through(covered)
            self.compactions += 1
            return covered

    def rebind(self, database: ImageDatabase) -> None:
        """Point the store at a replacement in-memory database (hot reload).

        The replacement is expected to reflect the on-disk state (snapshot +
        replayed log); pending log records are re-marked dirty on it so the
        next compaction still rewrites the delta.
        """
        with self._lock:
            self.database = database
            for record in self.wal.records:
                if record.lsn > self.snapshot_lsn:
                    database.mark_dirty(record.image_id)

    def close(self) -> None:
        """Close the log file handle (idempotent; no implicit compaction)."""
        self.wal.close()

    def __enter__(self) -> "DurableShardedStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Registry, inference and dispatch
# ----------------------------------------------------------------------
#: Backend registry, keyed by the names accepted everywhere a ``backend``
#: argument or ``--format`` flag appears.
BACKENDS = {
    JsonBackend.name: JsonBackend,
    SqliteBackend.name: SqliteBackend,
    ShardedBackend.name: ShardedBackend,
    DurableShardedBackend.name: DurableShardedBackend,
}


def get_backend(
    backend: Union[None, str, StorageBackend],
    path: Optional[PathLike] = None,
    shard_count: Optional[int] = None,
) -> StorageBackend:
    """Resolve a backend from a name, an instance, or (via ``path``) inference.

    Returns:
        A :class:`StorageBackend` instance; ``shard_count`` configures the
        sharded backend when it is selected (ignored otherwise).

    Raises:
        ValueError: on an unknown backend name, or when neither a backend nor
            a path to infer from is given.
    """
    if isinstance(backend, StorageBackend):
        return backend
    if backend is None or backend == "auto":
        if path is None:
            raise ValueError("either a backend name or a path to infer from is required")
        return infer_backend(path, shard_count=shard_count)
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown storage backend {backend!r} (expected one of {sorted(BACKENDS)})"
        ) from None
    if issubclass(factory, ShardedBackend) and shard_count is not None:
        return factory(shard_count=shard_count)
    return factory()


def infer_backend(
    path: PathLike, shard_count: Optional[int] = None
) -> StorageBackend:
    """Infer the backend for ``path`` by content (existing) or suffix (new).

    An existing directory is sharded; an existing file is sniffed for the
    SQLite magic header, falling back to JSON.  A fresh path goes by suffix:
    ``.sqlite``/``.sqlite3``/``.db`` → SQLite, ``.shards`` (or no suffix at
    all) → sharded directory, anything else → JSON.

    Returns:
        A :class:`StorageBackend` instance.
    """
    target = Path(path)
    if target.is_dir():
        return ShardedBackend(shard_count=shard_count or DEFAULT_SHARD_COUNT)
    if target.is_file():
        with target.open("rb") as handle:
            head = handle.read(len(_SQLITE_MAGIC))
        if head == _SQLITE_MAGIC:
            return SqliteBackend()
        return JsonBackend()
    suffix = target.suffix.lower()
    if suffix in _SQLITE_SUFFIXES:
        return SqliteBackend()
    if suffix == _SHARDED_SUFFIX or suffix == "":
        return ShardedBackend(shard_count=shard_count or DEFAULT_SHARD_COUNT)
    return JsonBackend()


def save_database_to(
    database: ImageDatabase,
    path: PathLike,
    backend: Union[None, str, StorageBackend] = None,
    *,
    incremental: bool = False,
    shard_count: Optional[int] = None,
    persist_signatures: Optional[bool] = None,
    durable: bool = False,
) -> Path:
    """Persist ``database`` with an explicit or path-inferred backend.

    ``persist_signatures`` overrides the backend's signature-persistence
    toggle for this save (``None`` keeps the backend's default of writing
    the shortlist signatures).  ``durable=True`` upgrades a sharded save to
    :class:`DurableShardedBackend` — the directory gains a write-ahead log
    anchored at the snapshot — and rejects non-sharded backends.

    Returns:
        The path written.

    Raises:
        ValueError: on an unknown backend name, or ``durable=True`` with a
            backend that has no write-ahead log support.
        StorageError: if the target exists in an incompatible format.
    """
    resolved = get_backend(backend, path, shard_count=shard_count)
    if durable:
        if not isinstance(resolved, ShardedBackend):
            raise ValueError(
                "durable persistence requires the sharded backend, "
                f"not {resolved.name!r} (target: {path})"
            )
        if not isinstance(resolved, DurableShardedBackend):
            durable_backend = DurableShardedBackend(shard_count=resolved.shard_count)
            durable_backend.persist_signatures = resolved.persist_signatures
            resolved = durable_backend
    if persist_signatures is not None and persist_signatures != resolved.persist_signatures:
        # Shallow-copy so a one-shot override never leaks into a caller's
        # backend instance (backends hold only configuration state).
        resolved = copy.copy(resolved)
        resolved.persist_signatures = persist_signatures
    return resolved.save(database, path, incremental=incremental)


def load_database_from(
    path: PathLike,
    backend: Union[None, str, StorageBackend] = None,
    *,
    durable: bool = False,
) -> ImageDatabase:
    """Load a database with an explicit or content-inferred backend.

    A sharded directory whose manifest anchors a write-ahead log replays
    the pending log records automatically, whatever ``durable`` says;
    ``durable=True`` merely *requires* the target to be sharded, so a caller
    about to attach a :class:`DurableShardedStore` fails fast on a format
    that cannot carry one.

    Returns:
        The reconstructed database with a clean dirty set.

    Raises:
        StorageError: if the target is corrupt or fails validation (the
            message names the offending path).
        ValueError: on ``durable=True`` against a non-sharded database.
        FileNotFoundError: if ``path`` does not exist.
    """
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no such database: {source}")
    resolved = get_backend(backend, source)
    if durable and not isinstance(resolved, ShardedBackend):
        raise ValueError(
            "durable persistence requires a sharded database directory, "
            f"not {resolved.name!r} (target: {source})"
        )
    return resolved.load(source)


def describe_database(
    path: PathLike, backend: Union[None, str, StorageBackend] = None
) -> Dict[str, Any]:
    """Summarise a stored database (format, schema, counts, size).

    Returns:
        The backend's :meth:`StorageBackend.describe` dictionary.

    Raises:
        StorageError: if the target is not a recognisable database.
        FileNotFoundError: if ``path`` does not exist.
    """
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no such database: {source}")
    resolved = get_backend(backend, source)
    return resolved.describe(source)


def durable_wal_state(path: PathLike) -> Optional[Dict[str, int]]:
    """The log position of a durable directory, read without loading it.

    The replica's polling primitive: one manifest read plus one log scan,
    cheap enough to call every follow interval.  Both reads are of
    atomically-replaced files, so the answer is always a state the primary
    actually committed (possibly one compaction behind the very latest).

    Returns:
        ``{"snapshot_lsn", "last_lsn", "pending_records"}`` -- the LSN the
        shard snapshot covers, the highest LSN the directory knows (snapshot
        floor or log tail, whichever is greater), and the count of intact
        log records past the snapshot; ``None`` when the directory is not a
        durable sharded database (no manifest or no ``wal`` block).

    Raises:
        StorageError: if the manifest or log exists but is unreadable.
    """
    source = Path(path)
    manifest = ShardedBackend()._try_manifest(source)
    if manifest is None or not manifest.get("wal"):
        return None
    wal_info = manifest["wal"]
    records, _, _ = read_wal(source / wal_info["file"])
    snapshot_lsn = wal_info["snapshot_lsn"]
    return {
        "snapshot_lsn": snapshot_lsn,
        "last_lsn": max(snapshot_lsn, records[-1].lsn if records else 0),
        "pending_records": sum(1 for record in records if record.lsn > snapshot_lsn),
    }
