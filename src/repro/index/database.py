"""The image database: symbolic pictures stored with their 2D BE-strings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional, Set

from repro.core.bestring import BEString2D
from repro.core.construct import encode_picture
from repro.core.editing import IndexedBEString
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from repro.index.shortlist import ImageSignature


class DatabaseError(KeyError):
    """Raised on unknown image ids or duplicate registrations."""


@dataclass
class ImageRecord:
    """One stored image: the picture, its BE-string, and its dynamic index."""

    image_id: str
    picture: SymbolicPicture
    bestring: BEString2D
    indexed: IndexedBEString
    #: Cached shortlist signature (see :mod:`repro.index.shortlist`).  Built
    #: lazily, loaded from storage on warm starts, and reset to ``None`` by
    #: every object-level edit so it can never disagree with the BE-string.
    signature: Optional["ImageSignature"] = None

    @property
    def object_count(self) -> int:
        """Number of icon objects in the stored image."""
        return len(self.picture)

    @property
    def storage_symbols(self) -> int:
        """Total BE-string symbols stored for this image (both axes)."""
        return self.bestring.total_symbols


@dataclass
class ImageDatabase:
    """An in-memory image database keyed by image id.

    Whole images are added and removed; single objects inside a stored image
    are added and removed through the dynamic
    :class:`~repro.core.editing.IndexedBEString` exactly as Section 3.2 of the
    paper describes, with the stored BE-string refreshed from the index.
    """

    name: str = "image-database"
    _records: Dict[str, ImageRecord] = field(default_factory=dict)
    #: Image ids mutated (added, removed, or edited) since :meth:`clear_dirty`.
    #: Removed ids stay in the set so incremental storage backends know which
    #: shards/rows to rewrite; see :mod:`repro.index.backends`.
    _dirty: Set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Whole-image operations
    # ------------------------------------------------------------------
    def add_picture(self, picture: SymbolicPicture, image_id: Optional[str] = None) -> ImageRecord:
        """Encode and store a picture; returns the stored record.

        ``image_id`` defaults to the picture's name; an id must be unique.

        Returns:
            The stored :class:`ImageRecord`.

        Raises:
            DatabaseError: if no id is available or the id is already stored.
        """
        identifier = image_id or picture.name
        if not identifier:
            raise DatabaseError("an image id is required (picture has no name)")
        if identifier in self._records:
            raise DatabaseError(f"image id {identifier!r} is already stored")
        named_picture = picture if picture.name == identifier else picture.renamed(identifier)
        record = ImageRecord(
            image_id=identifier,
            picture=named_picture,
            bestring=encode_picture(named_picture),
            indexed=IndexedBEString.from_picture(named_picture),
        )
        self._records[identifier] = record
        self.mark_dirty(identifier)
        return record

    def add_pictures(self, pictures: List[SymbolicPicture]) -> List[ImageRecord]:
        """Store several pictures (ids taken from their names)."""
        return [self.add_picture(picture) for picture in pictures]

    def remove_picture(self, image_id: str) -> ImageRecord:
        """Remove a stored image and return its record.

        Raises:
            DatabaseError: if no image with ``image_id`` is stored.
        """
        try:
            record = self._records.pop(image_id)
        except KeyError:
            raise DatabaseError(f"no image with id {image_id!r}") from None
        self.mark_dirty(image_id)
        return record

    def get(self, image_id: str) -> ImageRecord:
        """Fetch a stored record by id.

        Raises:
            DatabaseError: if no image with ``image_id`` is stored.
        """
        try:
            return self._records[image_id]
        except KeyError:
            raise DatabaseError(f"no image with id {image_id!r}") from None

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ImageRecord]:
        return iter(self._records.values())

    @property
    def image_ids(self) -> List[str]:
        """Ids of all stored images, sorted."""
        return sorted(self._records)

    # ------------------------------------------------------------------
    # Object-level (dynamic) operations
    # ------------------------------------------------------------------
    def add_object(self, image_id: str, label: str, mbr: Rectangle) -> ImageRecord:
        """Add one icon object to a stored image via the dynamic index."""
        record = self.get(image_id)
        existing = record.picture.icons_with_label(label)
        instance = existing[-1].instance + 1 if existing else 0
        identifier = label if instance == 0 else f"{label}#{instance}"
        record.indexed.insert(identifier, mbr)
        record.picture = record.picture.add_icon(label, mbr)
        record.bestring = record.indexed.to_bestring()
        record.signature = None
        self.mark_dirty(image_id)
        return record

    def remove_object(self, image_id: str, identifier: str) -> ImageRecord:
        """Remove one icon object from a stored image via the dynamic index."""
        record = self.get(image_id)
        record.indexed.remove(identifier)
        record.picture = record.picture.remove_icon(identifier)
        record.bestring = record.indexed.to_bestring()
        record.signature = None
        self.mark_dirty(image_id)
        return record

    # ------------------------------------------------------------------
    # Dirty tracking (incremental persistence)
    # ------------------------------------------------------------------
    def mark_dirty(self, image_id: str) -> None:
        """Record that ``image_id`` changed since the last save/load.

        Called automatically by every mutating operation; incremental storage
        backends (see :mod:`repro.index.backends`) use the accumulated set to
        rewrite only the shards or rows that actually changed.
        """
        self._dirty.add(image_id)

    @property
    def dirty_ids(self) -> FrozenSet[str]:
        """Ids mutated since the last :meth:`clear_dirty` (includes removals).

        Returns:
            A frozen snapshot of the dirty-id set.
        """
        return frozenset(self._dirty)

    def clear_dirty(self) -> None:
        """Reset the dirty set (storage backends call this after a save/load)."""
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_objects(self) -> int:
        """Total number of icon objects across all stored images."""
        return sum(record.object_count for record in self._records.values())

    def total_storage_symbols(self) -> int:
        """Total BE-string symbols stored across all images."""
        return sum(record.storage_symbols for record in self._records.values())

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by the examples and benchmark reports."""
        images = len(self._records)
        objects = self.total_objects()
        symbols = self.total_storage_symbols()
        return {
            "images": float(images),
            "objects": float(objects),
            "symbols": float(symbols),
            "objects_per_image": objects / images if images else 0.0,
            "symbols_per_object": symbols / objects if objects else 0.0,
        }
