"""Inverted index from icon labels to image ids.

Before running the O(mn) LCS evaluation against every stored image, the query
engine shortlists candidates that share at least a configurable number of icon
labels with the query.  This is a straightforward inverted index -- the kind
of auxiliary structure an image database built on the paper's model would keep
alongside the BE-strings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.iconic.picture import SymbolicPicture


@dataclass
class InvertedSymbolIndex:
    """Maps icon labels to the set of image ids containing them.

    Invariant: ``_postings`` never holds an empty set.  A label whose last
    image is removed disappears from the index entirely, so removed labels
    cannot linger in :attr:`vocabulary` or inflate candidate shortlists.
    ``_postings`` is deliberately a plain dict -- a ``defaultdict`` would
    silently materialise empty postings on any stray subscript lookup and
    break that invariant.
    """

    _postings: Dict[str, Set[str]] = field(default_factory=dict)
    _image_labels: Dict[str, Counter] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add_picture(self, image_id: str, picture: SymbolicPicture) -> None:
        """Index all labels of a picture under ``image_id``."""
        if image_id in self._image_labels:
            raise KeyError(f"image id {image_id!r} already indexed")
        labels = Counter(picture.labels)
        self._image_labels[image_id] = labels
        for label in labels:
            self._postings.setdefault(label, set()).add(image_id)

    def remove_picture(self, image_id: str) -> None:
        """Remove all postings of an image, dropping emptied labels entirely."""
        try:
            labels = self._image_labels.pop(image_id)
        except KeyError:
            raise KeyError(f"image id {image_id!r} is not indexed") from None
        for label in labels:
            postings = self._postings.get(label)
            if postings is not None:
                postings.discard(image_id)
                if not postings:
                    del self._postings[label]

    def update_picture(self, image_id: str, picture: SymbolicPicture) -> None:
        """Re-index an image after its contents changed."""
        if image_id in self._image_labels:
            self.remove_picture(image_id)
        self.add_picture(image_id, picture)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def images_with_label(self, label: str) -> Set[str]:
        """Ids of images containing at least one icon with ``label``."""
        return set(self._postings.get(label, set()))

    def candidates(self, labels: Iterable[str], minimum_shared: int = 1) -> Set[str]:
        """Image ids sharing at least ``minimum_shared`` distinct query labels."""
        if minimum_shared < 1:
            raise ValueError("minimum_shared must be at least 1")
        tally: Counter = Counter()
        for label in set(labels):
            for image_id in self._postings.get(label, set()):
                tally[image_id] += 1
        return {image_id for image_id, shared in tally.items() if shared >= minimum_shared}

    def labels_of(self, image_id: str) -> Counter:
        """Label multiset of one indexed image."""
        try:
            return Counter(self._image_labels[image_id])
        except KeyError:
            raise KeyError(f"image id {image_id!r} is not indexed") from None

    @property
    def indexed_images(self) -> List[str]:
        """All indexed image ids, sorted."""
        return sorted(self._image_labels)

    @property
    def vocabulary(self) -> List[str]:
        """All labels with at least one posting, sorted."""
        return sorted(self._postings)

    def __len__(self) -> int:
        return len(self._image_labels)
