"""Label-multiset signatures for cheap candidate pruning.

A query whose icon multiset barely overlaps a stored image's multiset cannot
score well under the LCS evaluation, so the query engine can prune it before
paying the O(mn) dynamic program.  The signature is simply the label multiset;
the filter computes the multiset-overlap ratio against the query.  Benchmark
E9 measures the end-to-end effect of this filter (one of the design ablations
listed in DESIGN.md).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.iconic.picture import SymbolicPicture


def label_signature(picture: SymbolicPicture) -> Counter:
    """The label multiset of a picture."""
    return Counter(picture.labels)


def multiset_overlap(query: Counter, candidate: Counter) -> int:
    """Size of the multiset intersection."""
    return sum((query & candidate).values())


def overlap_ratio(query: Counter, candidate: Counter) -> float:
    """Multiset intersection as a fraction of the query multiset size."""
    total = sum(query.values())
    if total == 0:
        return 0.0
    return multiset_overlap(query, candidate) / total


@dataclass
class SignatureFilter:
    """Stores signatures per image id and prunes candidates by overlap ratio."""

    minimum_overlap_ratio: float = 0.0
    _signatures: Dict[str, Counter] = field(default_factory=dict)

    def add_picture(self, image_id: str, picture: SymbolicPicture) -> None:
        """Register the signature of a stored image."""
        if image_id in self._signatures:
            raise KeyError(f"image id {image_id!r} already has a signature")
        self._signatures[image_id] = label_signature(picture)

    def remove_picture(self, image_id: str) -> None:
        """Drop the signature of an image."""
        try:
            del self._signatures[image_id]
        except KeyError:
            raise KeyError(f"image id {image_id!r} has no signature") from None

    def update_picture(self, image_id: str, picture: SymbolicPicture) -> None:
        """Replace the signature of an image whose contents changed."""
        self._signatures[image_id] = label_signature(picture)

    def admits(self, query_signature: Counter, image_id: str) -> bool:
        """True when the stored image passes the overlap threshold.

        An image id with *no registered signature* is admitted (fail open):
        the filter is an optimisation, so an image that missed registration
        must be scored rather than silently dropped from every result.  It
        used to fail closed, which turned a bookkeeping gap into missing
        results.
        """
        candidate = self._signatures.get(image_id)
        if candidate is None:
            return True
        return overlap_ratio(query_signature, candidate) >= self.minimum_overlap_ratio

    def filter(self, query: SymbolicPicture, candidates: Iterable[str]) -> List[str]:
        """Keep only the candidates whose signatures pass the threshold."""
        signature = label_signature(query)
        return [image_id for image_id in candidates if self.admits(signature, image_id)]

    def scored(self, query: SymbolicPicture, candidates: Iterable[str]) -> List[Tuple[str, float]]:
        """Overlap ratio for each candidate, highest first (diagnostics)."""
        signature = label_signature(query)
        scores = [
            (image_id, overlap_ratio(signature, self._signatures.get(image_id, Counter())))
            for image_id in candidates
        ]
        scores.sort(key=lambda item: (-item[1], item[0]))
        return scores

    def __len__(self) -> int:
        return len(self._signatures)
