"""Region (location) index over stored icons.

The paper's related-work section distinguishes three indexing families:
by features, **by size and location** (R-trees, quadtrees, ...) and by
relative position (the 2-D string family, including the BE-string).  The
BE-string deliberately discards metric locations, so an image database that
also needs location queries ("which images contain a car in the lower-left
quadrant of the frame?") keeps a complementary location index next to the
BE-strings.  This module provides that index as a uniform grid-bucket
structure over *normalised* icon MBRs (coordinates divided by the frame size,
so images of different sizes are comparable), which answers the same workloads
a quadtree/R-tree would at laptop scale.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture


@dataclass(frozen=True)
class LocatedIcon:
    """One indexed icon occurrence: image id, icon identifier, normalised MBR."""

    image_id: str
    identifier: str
    label: str
    normalized_mbr: Rectangle


@dataclass
class RegionIndex:
    """A uniform grid index over normalised icon MBRs.

    ``resolution`` is the number of grid cells per axis; each icon is recorded
    in every cell its normalised MBR intersects, so region queries only have to
    inspect the buckets the query region touches.
    """

    resolution: int = 8
    _buckets: Dict[Tuple[int, int], List[LocatedIcon]] = field(
        default_factory=lambda: defaultdict(list)
    )
    _images: Set[str] = field(default_factory=set)
    _icon_count: int = 0

    def __post_init__(self) -> None:
        if self.resolution < 1:
            raise ValueError("the grid resolution must be at least 1")

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _cells_for(self, mbr: Rectangle) -> Iterable[Tuple[int, int]]:
        last = self.resolution - 1
        col_begin = min(last, max(0, int(mbr.x_begin * self.resolution)))
        col_end = min(last, max(0, int(mbr.x_end * self.resolution - 1e-9)))
        row_begin = min(last, max(0, int(mbr.y_begin * self.resolution)))
        row_end = min(last, max(0, int(mbr.y_end * self.resolution - 1e-9)))
        # A degenerate (zero-extent) edge landing exactly on a grid line puts
        # the epsilon-nudged end cell *before* the begin cell; clamp so the
        # icon still occupies the begin cell instead of vanishing from the
        # index entirely.
        col_end = max(col_end, col_begin)
        row_end = max(row_end, row_begin)
        for col in range(col_begin, col_end + 1):
            for row in range(row_begin, row_end + 1):
                yield (col, row)

    @staticmethod
    def _normalize(mbr: Rectangle, width: float, height: float) -> Rectangle:
        return Rectangle(
            mbr.x_begin / width, mbr.y_begin / height, mbr.x_end / width, mbr.y_end / height
        )

    def add_picture(self, image_id: str, picture: SymbolicPicture) -> None:
        """Index every icon of a picture under ``image_id``."""
        if image_id in self._images:
            raise KeyError(f"image id {image_id!r} already indexed")
        self._images.add(image_id)
        for icon in picture.icons:
            located = LocatedIcon(
                image_id=image_id,
                identifier=icon.identifier,
                label=icon.label,
                normalized_mbr=self._normalize(icon.mbr, picture.width, picture.height),
            )
            self._icon_count += 1
            for cell in self._cells_for(located.normalized_mbr):
                self._buckets[cell].append(located)

    def remove_picture(self, image_id: str) -> None:
        """Drop every icon occurrence of an image."""
        if image_id not in self._images:
            raise KeyError(f"image id {image_id!r} is not indexed")
        self._images.discard(image_id)
        removed = 0
        for cell, entries in list(self._buckets.items()):
            kept = [entry for entry in entries if entry.image_id != image_id]
            removed += len(entries) - len(kept)
            if kept:
                self._buckets[cell] = kept
            else:
                del self._buckets[cell]
        # Occurrences are duplicated across cells; recount from the buckets.
        self._icon_count = len(
            {(entry.image_id, entry.identifier) for entries in self._buckets.values() for entry in entries}
        )

    # ------------------------------------------------------------------
    # Queries (regions are in normalised [0, 1] coordinates)
    # ------------------------------------------------------------------
    def icons_in_region(
        self, region: Rectangle, label: Optional[str] = None
    ) -> List[LocatedIcon]:
        """Icons whose normalised MBR intersects ``region`` (optionally by label)."""
        if not (0.0 <= region.x_begin and region.x_end <= 1.0 + 1e-9
                and 0.0 <= region.y_begin and region.y_end <= 1.0 + 1e-9):
            raise ValueError("query regions use normalised [0, 1] coordinates")
        seen: Set[Tuple[str, str]] = set()
        found: List[LocatedIcon] = []
        for cell in self._cells_for(region):
            for entry in self._buckets.get(cell, ()):
                key = (entry.image_id, entry.identifier)
                if key in seen:
                    continue
                if label is not None and entry.label != label:
                    continue
                if entry.normalized_mbr.intersects(region):
                    seen.add(key)
                    found.append(entry)
        found.sort(key=lambda entry: (entry.image_id, entry.identifier))
        return found

    def images_with_icon_in_region(
        self, region: Rectangle, label: Optional[str] = None
    ) -> List[str]:
        """Ids of images containing a matching icon in the region, sorted."""
        return sorted({entry.image_id for entry in self.icons_in_region(region, label)})

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._images)

    @property
    def icon_count(self) -> int:
        """Number of indexed icon occurrences."""
        return self._icon_count

    def bucket_statistics(self) -> Dict[str, float]:
        """Occupancy statistics of the grid (used to sanity-check the resolution)."""
        sizes = [len(entries) for entries in self._buckets.values()]
        if not sizes:
            return {"cells": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "cells": float(len(sizes)),
            "mean": sum(sizes) / len(sizes),
            "max": float(max(sizes)),
        }


#: Named regions of the normalised frame, for convenience in examples/tests.
QUADRANTS: Dict[str, Rectangle] = {
    "lower-left": Rectangle(0.0, 0.0, 0.5, 0.5),
    "lower-right": Rectangle(0.5, 0.0, 1.0, 0.5),
    "upper-left": Rectangle(0.0, 0.5, 0.5, 1.0),
    "upper-right": Rectangle(0.5, 0.5, 1.0, 1.0),
    "everywhere": Rectangle(0.0, 0.0, 1.0, 1.0),
}
