"""The write-ahead log: fsync'd, append-only, length+CRC-framed mutations.

Crash safety for the sharded backend (:mod:`repro.index.backends`) is built
from two pieces:

* this module -- an append-only log file of upsert/delete records, each
  carrying a monotonically increasing log sequence number (LSN).  A record is
  durable once :meth:`WriteAheadLog.append` returns: the bytes are flushed
  and ``fsync``'d before the caller may acknowledge the mutation.
* the snapshot in the shard files -- the manifest records the LSN the
  snapshot covers (``wal.snapshot_lsn``); opening a durable directory loads
  the shards and then replays only the records *past* that LSN, so recovery
  cost scales with the write delta since the last compaction, never with the
  database size.

On-disk format (see ``docs/durability.md``)::

    file   := header record*
    header := magic "RWAL" (4 bytes) | version u8
    record := length u32-le | crc32 u32-le | payload bytes

``length`` counts the payload bytes; ``crc32`` is the zlib CRC-32 of the
payload.  The payload is one UTF-8 JSON object::

    {"lsn": 42, "op": "upsert", "image_id": "img-0001", "entry": {...}}
    {"lsn": 43, "op": "delete", "image_id": "img-0001"}

where ``entry`` is the v1 per-image entry dictionary every storage backend
shares (``image_id`` / ``picture`` / ``bestring`` / optional ``signature``).

A ``kill -9`` can land mid-append and leave a torn tail: a partial frame, a
short payload, or a flipped bit.  Reading is therefore *fail-closed at the
tail*: :func:`read_wal` returns every record up to the last frame whose
length and CRC check out and reports the file clean/dirty, never guessing at
bytes past the first damage.  Opening the log for append truncates the torn
tail away so new records extend a valid prefix.  Genuine I/O and format
errors (unreadable file, wrong magic) surface as
:class:`~repro.index.storage.StorageError` naming the offending path --
the same contract the shard and manifest readers obey.

The LSN-ordered, CRC-framed stream is also safe to *follow* from another
process: :class:`WalTailer` incrementally reads new records past a cursor
LSN, tolerating in-progress appends (a torn tail just ends the batch; the
next poll picks the record up once its fsync lands) and
truncation-after-compaction (the log file is atomically replaced, which the
tailer detects and resyncs from; records dropped past the cursor surface as
:class:`WalTruncatedError` so the follower can reload from the shard
snapshot instead).  This is the transport of the replica daemon
(``docs/replication.md``).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.index.storage import StorageError

PathLike = Union[str, Path]

#: Magic header of a write-ahead log file ("Repro WAL").
WAL_MAGIC = b"RWAL"
#: Write-ahead log container version.
WAL_FORMAT_VERSION = 1
#: Default file name of the log inside a durable shard directory.
WAL_NAME = "wal.log"
#: Byte length of the file header (magic + version).
_HEADER_SIZE = len(WAL_MAGIC) + 1
#: Byte length of one record frame prefix (length + CRC-32).
_FRAME_SIZE = 8
#: Operations a record may carry.
WAL_OPS = ("upsert", "delete")


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation: an upsert (with its image entry) or a delete."""

    lsn: int
    op: str
    image_id: str
    #: The v1 image entry dictionary for upserts; ``None`` for deletes.
    entry: Optional[Dict[str, Any]] = None

    def to_payload(self) -> bytes:
        """Serialise to the framed JSON payload bytes."""
        document: Dict[str, Any] = {
            "lsn": self.lsn,
            "op": self.op,
            "image_id": self.image_id,
        }
        if self.entry is not None:
            document["entry"] = self.entry
        return json.dumps(document, sort_keys=True).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        """Parse one framed payload; raises ``ValueError`` on a bad document."""
        document = json.loads(payload.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("record payload is not a JSON object")
        lsn = document.get("lsn")
        op = document.get("op")
        image_id = document.get("image_id")
        if not isinstance(lsn, int) or isinstance(lsn, bool) or lsn < 1:
            raise ValueError(f"record has no valid lsn: {lsn!r}")
        if op not in WAL_OPS:
            raise ValueError(f"record has an unknown op: {op!r}")
        if not isinstance(image_id, str) or not image_id:
            raise ValueError("record has no image_id")
        entry = document.get("entry")
        if op == "upsert" and not isinstance(entry, dict):
            raise ValueError(f"upsert record for {image_id!r} has no entry")
        return cls(lsn=lsn, op=op, image_id=image_id, entry=entry if op == "upsert" else None)


def _frame(payload: bytes) -> bytes:
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


def read_wal(path: PathLike) -> Tuple[List[WalRecord], int, bool]:
    """Read every intact record of a log file, stopping at the first damage.

    Returns:
        ``(records, valid_bytes, clean)`` -- the records of the valid prefix,
        the byte offset that prefix ends at (where an append may resume), and
        whether the whole file was intact.  A missing file reads as an empty,
        clean log.

    Raises:
        StorageError: if the file cannot be read at all or does not start
            with the WAL magic header (it is not a log, rather than a torn
            one); the message names the offending path.
    """
    source = Path(path)
    if not source.exists():
        return [], 0, True
    try:
        data = source.read_bytes()
    except OSError as error:
        raise StorageError(f"{source} cannot be read: {error}") from error
    if len(data) < _HEADER_SIZE:
        # A header torn by a crash during initialisation: an empty log.
        return [], 0, len(data) == 0
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise StorageError(f"{source} is not a write-ahead log (bad magic)")
    version = data[len(WAL_MAGIC)]
    if version != WAL_FORMAT_VERSION:
        raise StorageError(
            f"{source}: unsupported write-ahead log version {version} "
            f"(expected {WAL_FORMAT_VERSION})"
        )
    records: List[WalRecord] = []
    offset = _HEADER_SIZE
    last_lsn = 0
    while offset < len(data):
        if offset + _FRAME_SIZE > len(data):
            return records, offset, False  # torn frame prefix
        length, crc = struct.unpack_from("<II", data, offset)
        start = offset + _FRAME_SIZE
        payload = data[start : start + length]
        if len(payload) != length:
            return records, offset, False  # short payload (torn append)
        if zlib.crc32(payload) != crc:
            return records, offset, False  # bit rot / torn overwrite
        try:
            record = WalRecord.from_payload(payload)
        except (ValueError, UnicodeDecodeError):
            return records, offset, False  # framed garbage
        if record.lsn <= last_lsn:
            return records, offset, False  # LSNs must strictly increase
        last_lsn = record.lsn
        records.append(record)
        offset = start + length
    return records, offset, True


class WriteAheadLog:
    """An open, append-only write-ahead log bound to one file.

    Opening scans the existing file, truncates any torn tail back to the
    last intact record, and resumes LSNs after ``max(floor_lsn, last stored
    LSN)`` -- callers pass the manifest's ``snapshot_lsn`` as the floor so
    LSNs never move backwards across a compaction that emptied the log.
    """

    def __init__(
        self, path: PathLike, *, floor_lsn: int = 0, fsync: bool = True
    ) -> None:
        """Open (creating if needed) the log at ``path`` for appending.

        Raises:
            StorageError: if the file exists but is not a write-ahead log,
                or cannot be opened/created; the message names the path.
        """
        self.path = Path(path)
        self.fsync = fsync
        records, valid_bytes, clean = read_wal(self.path)
        self._records = records
        self._last_lsn = max(
            floor_lsn, records[-1].lsn if records else 0
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = valid_bytes < _HEADER_SIZE
            self._handle = open(self.path, "ab" if not fresh else "wb")
            if not clean and not fresh:
                # Drop the torn tail so new appends extend a valid prefix.
                self._handle.truncate(valid_bytes)
                self._handle.seek(valid_bytes)
            if fresh:
                self._handle.write(WAL_MAGIC + bytes([WAL_FORMAT_VERSION]))
                self._flush()
        except OSError as error:
            raise StorageError(f"{self.path} cannot be opened: {error}") from error
        self.recovered_clean = clean

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """The LSN of the most recent append (or the floor when empty)."""
        return self._last_lsn

    @property
    def records(self) -> List[WalRecord]:
        """The intact records currently stored (a copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def pending_past(self, snapshot_lsn: int) -> int:
        """Number of stored records with an LSN past ``snapshot_lsn``."""
        return sum(1 for record in self._records if record.lsn > snapshot_lsn)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(
        self, op: str, image_id: str, entry: Optional[Dict[str, Any]] = None
    ) -> int:
        """Durably log one mutation; returns its LSN once fsync'd.

        The record is on disk when this returns -- callers may acknowledge
        the mutation to a client immediately afterwards.

        Raises:
            ValueError: on an unknown ``op`` or an upsert without an entry.
            StorageError: if the write or fsync fails (message names the
                path); the in-memory LSN counter is left unchanged.
        """
        if op not in WAL_OPS:
            raise ValueError(f"unknown WAL op {op!r} (expected one of {WAL_OPS})")
        if op == "upsert" and entry is None:
            raise ValueError("an upsert record requires the image entry")
        record = WalRecord(
            lsn=self._last_lsn + 1,
            op=op,
            image_id=image_id,
            entry=entry if op == "upsert" else None,
        )
        try:
            self._handle.write(_frame(record.to_payload()))
            self._flush()
        except OSError as error:
            raise StorageError(f"{self.path} append failed: {error}") from error
        self._last_lsn = record.lsn
        self._records.append(record)
        return record.lsn

    def truncate_through(self, snapshot_lsn: int) -> int:
        """Drop every record with LSN <= ``snapshot_lsn`` (after a compaction).

        The new file is written beside the old one and atomically swapped in,
        so a crash mid-truncation leaves either the full old log or the
        trimmed new one -- both replay to the same state because records at
        or below the manifest's snapshot LSN are skipped anyway.

        Returns:
            The number of records dropped.

        Raises:
            StorageError: if the replacement file cannot be written.
        """
        kept = [record for record in self._records if record.lsn > snapshot_lsn]
        dropped = len(self._records) - len(kept)
        temporary = self.path.with_suffix(".log.tmp")
        try:
            with open(temporary, "wb") as handle:
                handle.write(WAL_MAGIC + bytes([WAL_FORMAT_VERSION]))
                for record in kept:
                    handle.write(_frame(record.to_payload()))
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(temporary, self.path)
            self._handle = open(self.path, "ab")
        except OSError as error:
            raise StorageError(f"{self.path} truncation failed: {error}") from error
        self._records = kept
        self._last_lsn = max(self._last_lsn, snapshot_lsn)
        return dropped

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        try:
            if not self._handle.closed:
                self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())


class WalTruncatedError(Exception):
    """The log no longer reaches back to the tailer's cursor.

    Raised by :meth:`WalTailer.poll` when records between the cursor and the
    log's first stored record have been dropped (a compaction truncated the
    log past the follower).  Not a corruption: the missing records are in
    the shard snapshot, so the follower recovers by reloading from it and
    resuming the tail at the snapshot's LSN.
    """


class WalTailer:
    """Incrementally follow a write-ahead log from a given LSN.

    The tailer is a read-only peer of a live :class:`WriteAheadLog` writer
    in another process.  Each :meth:`poll` returns the intact records past
    the cursor, in LSN order, advancing the cursor as it goes.  Three
    concurrent hazards are handled without coordination:

    * **in-progress appends** -- a frame whose bytes are only partially
      visible (length short, CRC mismatch, unparsable payload) ends the
      batch; the byte offset stays put and the next poll retries the frame,
      so a record is never yielded torn and never skipped.
    * **truncation after compaction** -- the writer atomically replaces the
      log file (:meth:`WriteAheadLog.truncate_through`), which the tailer
      detects via the inode change, a file shrinking below its offset, or
      the last-consumed frame header no longer matching its remembered
      length+CRC (a replacement that landed on a recycled inode at the same
      size), and resyncs from the top, skipping records at or below the
      cursor.
    * **records dropped past the cursor** -- if the resynced log starts
      *after* ``position + 1``, the gap is unrecoverable from the log alone
      and :meth:`poll` raises :class:`WalTruncatedError`; the follower
      reloads from the shard snapshot (whose manifest LSN covers the gap)
      and resumes with a fresh tailer.

    Polls are O(new bytes), not O(log): the tailer remembers the byte
    offset of the last intact frame and reads only past it.
    """

    def __init__(self, path: PathLike, *, from_lsn: int = 0) -> None:
        """Follow the log at ``path``, yielding records with LSN > ``from_lsn``."""
        self.path = Path(path)
        #: The cursor: LSN of the last record handed to the caller.
        self.position = from_lsn
        self._offset = 0
        self._inode: Optional[int] = None
        #: (absolute offset, length, crc) of the last intact frame consumed;
        #: re-verified each poll so a replacement file that reuses the inode
        #: at the same size cannot masquerade as "no new bytes".
        self._last_frame: Optional[Tuple[int, int, int]] = None

    def poll(self) -> List[WalRecord]:
        """New intact records past the cursor (empty when caught up).

        Returns:
            The fresh records in strictly increasing, gap-free LSN order;
            the cursor advances past everything returned.

        Raises:
            WalTruncatedError: when the log has been truncated past the
                cursor (reload from the snapshot and re-tail).
            StorageError: if the file is unreadable or not a write-ahead
                log at all.
        """
        fresh: List[WalRecord] = []
        for record in self._read_new_frames():
            if record.lsn <= self.position:
                continue  # resync overlap: already handed out
            if record.lsn != self.position + 1:
                raise WalTruncatedError(
                    f"{self.path}: log starts at LSN {record.lsn} but the "
                    f"tail cursor is at {self.position} -- records were "
                    "compacted away; reload from the snapshot"
                )
            fresh.append(record)
            self.position = record.lsn
        return fresh

    def _read_new_frames(self) -> List[WalRecord]:
        """Parse every intact frame past the remembered byte offset.

        Detects file replacement (new inode after an atomic truncation) and
        shrinkage (torn-tail trim below the offset) and restarts from the
        header; damage mid-read just ends the batch with the offset parked
        at the last intact frame.
        """
        try:
            status = os.stat(self.path)
        except FileNotFoundError:
            # Not created yet, or mid-replacement: nothing new this poll.
            self._offset = 0
            self._inode = None
            self._last_frame = None
            return []
        except OSError as error:
            raise StorageError(f"{self.path} cannot be read: {error}") from error
        if self._inode != status.st_ino or status.st_size < self._offset:
            self._offset = 0
            self._inode = status.st_ino
            self._last_frame = None
        try:
            with open(self.path, "rb") as handle:
                if self._offset and self._last_frame is not None:
                    # Guard against a replacement that recycled the inode at
                    # exactly our offset: the frame we consumed last must
                    # still be there, byte for byte.
                    start, length, crc = self._last_frame
                    handle.seek(start)
                    head = handle.read(_FRAME_SIZE)
                    if (
                        len(head) < _FRAME_SIZE
                        or struct.unpack("<II", head) != (length, crc)
                    ):
                        self._offset = 0
                        self._last_frame = None
                        handle.seek(0)
                if self._offset == 0:
                    header = handle.read(_HEADER_SIZE)
                    if len(header) < _HEADER_SIZE:
                        return []  # header still being initialised
                    if header[: len(WAL_MAGIC)] != WAL_MAGIC:
                        raise StorageError(
                            f"{self.path} is not a write-ahead log (bad magic)"
                        )
                    if header[len(WAL_MAGIC)] != WAL_FORMAT_VERSION:
                        raise StorageError(
                            f"{self.path}: unsupported write-ahead log version "
                            f"{header[len(WAL_MAGIC)]} (expected {WAL_FORMAT_VERSION})"
                        )
                    self._offset = _HEADER_SIZE
                handle.seek(self._offset)
                data = handle.read()
        except OSError as error:
            raise StorageError(f"{self.path} cannot be read: {error}") from error
        records: List[WalRecord] = []
        offset = 0
        while offset < len(data):
            if offset + _FRAME_SIZE > len(data):
                break  # torn frame prefix: retry next poll
            length, crc = struct.unpack_from("<II", data, offset)
            start = offset + _FRAME_SIZE
            payload = data[start : start + length]
            if len(payload) != length:
                break  # short payload: the append is still in flight
            if zlib.crc32(payload) != crc:
                break  # torn or damaged: never yield it
            try:
                record = WalRecord.from_payload(payload)
            except (ValueError, UnicodeDecodeError):
                break  # framed garbage
            records.append(record)
            self._last_frame = (self._offset + offset, length, crc)
            offset = start + length
        self._offset += offset
        return records
