"""Ranked retrieval results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.similarity import SimilarityResult


@dataclass(frozen=True)
class RankedResult:
    """One entry of a ranked result list."""

    rank: int
    image_id: str
    score: float
    similarity: SimilarityResult

    def describe(self) -> str:
        """One-line human-readable summary (used by examples)."""
        objects = ", ".join(sorted(self.similarity.common_objects)) or "-"
        return (
            f"#{self.rank:<3d} {self.image_id:<24s} score={self.score:.3f} "
            f"objects=[{objects}] via {self.similarity.transformation.value}"
        )


def rank_results(
    scored: Iterable[tuple[str, SimilarityResult]],
    limit: Optional[int] = None,
    minimum_score: float = 0.0,
) -> List[RankedResult]:
    """Sort scored images by descending score (ties broken by image id).

    ``limit`` keeps only the top-k entries; ``minimum_score`` drops entries
    below the threshold before ranking.
    """
    filtered = [
        (image_id, result)
        for image_id, result in scored
        if result.score >= minimum_score
    ]
    filtered.sort(key=lambda item: (-item[1].score, item[0]))
    if limit is not None:
        filtered = filtered[:limit]
    return [
        RankedResult(rank=index + 1, image_id=image_id, score=result.score, similarity=result)
        for index, (image_id, result) in enumerate(filtered)
    ]
