"""A thin stdlib HTTP client for the retrieval service.

Everything the daemon exposes is one JSON request away; this module wraps the
wire protocol behind a typed, resource-oriented surface so the CLI
(``repro ping``), the CI ``service-smoke`` job and the E13 benchmark never
hand-build HTTP::

    client = ServiceClient.from_url("http://127.0.0.1:8765")
    client.search(spec)               # a QuerySpec, or the /search kwargs
    client.batch([spec, spec2])       # many specs/scenes as one batch
    client.images.add(scene, "id-1")  # mutations live on .images
    client.images.delete("id-1")
    client.admin.reload()             # operations live on .admin
    client.admin.compact()
    client.admin.promote()
    client.health(); client.stats()   # observability

The flat legacy methods (``add_image``, ``delete_image``, ``promote``,
``healthz``) still work but emit :class:`DeprecationWarning` and delegate to
the resources above — byte-identical requests, so existing scripts keep
running while they migrate (``docs/query-api.md`` carries the table).

The client is dependency-free (``http.client`` only) and *thread-safe by
construction*: each request opens its own connection, so closed-loop load
generators can share one client across worker threads.

Failures surface as :class:`ServiceError` carrying the HTTP status, the
server's ``{"error": ...}`` payload, and -- for 503 rejections -- the parsed
``Retry-After`` hint, so callers can implement honest backoff::

    client = ServiceClient.from_url("http://127.0.0.1:8765")
    try:
        ranking = client.search(scene=picture, limit=5)
    except ServiceError as error:
        if error.retry_after is not None:
            time.sleep(error.retry_after)  # the server asked us to back off

Connection-level flakiness (a daemon mid-restart, a replica briefly
unreachable) can additionally be absorbed by the client itself:
``ServiceClient(..., retries=3)`` retries *transport* failures -- connect
refused, reset, timeout before a status line -- with exponential backoff
(``backoff * 2**attempt``, capped at ``backoff_cap``).  HTTP-level errors
(4xx/5xx, including 503) are **never** retried automatically: the server
answered, and only the caller knows whether re-sending a mutation is safe.
The default is ``retries=0`` -- fail fast, exactly as before.
"""

from __future__ import annotations

import http.client
import json
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence, Union
from urllib.parse import quote, urlparse


def _warn_deprecated(old: str, replacement: str) -> None:
    """Emit the deprecation warning for one legacy flat-surface method."""
    warnings.warn(
        f"ServiceClient.{old} is deprecated; use {replacement} instead "
        "(see docs/query-api.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


class ServiceError(RuntimeError):
    """A failed service call: transport error or non-2xx response."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after


def _scene_payload(scene: Any) -> Dict[str, Any]:
    """A JSON scene object from a ``SymbolicPicture`` or an already-built dict."""
    if hasattr(scene, "to_dict"):
        return scene.to_dict()
    if isinstance(scene, dict):
        return scene
    raise TypeError(
        f"scene must be a SymbolicPicture or a scene dict, got {type(scene).__name__}"
    )


def _is_query_spec(value: Any) -> bool:
    """Duck-typed QuerySpec detection (the client never imports the library)."""
    return (
        hasattr(value, "predicates")
        and hasattr(value, "transformations")
        and hasattr(value, "validate")
    )


def _spec_payload(spec: Any) -> Dict[str, Any]:
    """Compile a :class:`~repro.index.spec.QuerySpec` to the ``/search`` schema.

    Raises:
        ValueError: when the spec uses a knob the wire schema cannot carry
            (a partial transformation set, ``use_cache=False``, a non-default
            ``minimum_shared_labels`` or similarity policy).
    """
    transformations = tuple(spec.transformations)
    invariant = False
    if transformations:
        universe = set(type(transformations[0]))
        chosen = set(transformations)
        if chosen == universe:
            invariant = True
        elif not (len(chosen) == 1 and next(iter(chosen)).value == "identity"):
            raise ValueError(
                "the /search payload carries transformations as an 'invariant' "
                "flag: use the identity only or the full transformation set"
            )
    if not spec.use_cache:
        raise ValueError("the /search payload cannot disable the server's score cache")
    if spec.minimum_shared_labels != 1:
        raise ValueError("the /search payload has no 'minimum_shared_labels' knob")
    if spec.policy is not None:
        raise ValueError(
            "the /search payload cannot carry a custom similarity policy; "
            "the server scores under its default policy"
        )
    payload: Dict[str, Any] = {
        "invariant": invariant,
        "min_score": spec.minimum_score,
        "limit": spec.limit,
        "no_filters": not spec.use_filters,
    }
    if spec.picture is not None:
        payload["scene"] = _scene_payload(spec.picture)
    if spec.identifiers:
        payload["identifiers"] = list(spec.identifiers)
    if spec.predicates:
        payload["where"] = " and ".join(
            predicate.to_text() for predicate in spec.predicates
        )
    tree = getattr(spec, "predicate_tree", None)
    if tree is not None:
        # Graded trees ship as the nested wire form (lossless: per-leaf
        # weight/fuzzy annotations survive, unlike flattened text).
        payload["where"] = tree.to_dict()
        payload["compose"] = spec.predicate_composition
        if spec.predicate_composition == "sum":
            payload["blend"] = spec.predicate_blend
    if spec.execution is not None:
        payload["execution"] = spec.execution.to_dict()
    return payload


class _ImagesResource:
    """``client.images``: the stored-image collection (mutations)."""

    def __init__(self, client: "ServiceClient") -> None:
        self._client = client

    def add(self, scene: Any, image_id: Optional[str] = None) -> Dict[str, Any]:
        """``POST /images``: store one scene (the daemon persists it)."""
        payload: Dict[str, Any] = {"scene": _scene_payload(scene)}
        if image_id is not None:
            payload["image_id"] = image_id
        return self._client.request("POST", "/images", payload)

    def delete(self, image_id: str) -> Dict[str, Any]:
        """``DELETE /images/{id}``: remove one stored image.

        The id is URL-encoded, so ids containing spaces, slashes or
        non-ASCII characters round-trip (the server decodes symmetrically).
        """
        return self._client.request("DELETE", f"/images/{quote(image_id, safe='')}")


class _AdminResource:
    """``client.admin``: operational endpoints (reload, compact, promote)."""

    def __init__(self, client: "ServiceClient") -> None:
        self._client = client

    def reload(self) -> Dict[str, Any]:
        """``POST /reload``: zero-downtime reload of the on-disk database."""
        return self._client.request("POST", "/reload")

    def compact(self) -> Dict[str, Any]:
        """``POST /compact``: fold the WAL delta into the shards now.

        Returns:
            The new snapshot LSN and pending-record count; a 409
            :class:`ServiceError` when the daemon is not in ``--wal`` mode.
        """
        return self._client.request("POST", "/compact")

    def promote(self) -> Dict[str, Any]:
        """``POST /promote``: detach a replica daemon into a writable primary.

        Returns:
            The promotion summary (new role, drained records, log position);
            a 409 :class:`ServiceError` when the target is not a replica or
            is already promoted.
        """
        return self._client.request("POST", "/promote")


class ServiceClient:
    """Typed access to every endpoint of one running retrieval daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 10.0,
        *,
        retries: int = 0,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        """Target one daemon; optionally absorb transport flakiness.

        ``timeout`` bounds every socket operation of a request.  ``retries``
        re-attempts *connection* failures (never HTTP error statuses) up to
        that many extra times, sleeping ``min(backoff * 2**attempt,
        backoff_cap)`` seconds between attempts.

        Raises:
            ValueError: on a negative ``retries`` or non-positive backoff
                parameters.
        """
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff <= 0 or backoff_cap <= 0:
            raise ValueError("backoff and backoff_cap must be positive")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        #: The stored-image collection: ``client.images.add`` / ``.delete``.
        self.images = _ImagesResource(self)
        #: Operational endpoints: ``client.admin.reload`` / ``.compact`` /
        #: ``.promote``.
        self.admin = _AdminResource(self)

    @classmethod
    def from_url(cls, url: str, timeout: float = 10.0, *, retries: int = 0) -> "ServiceClient":
        """Build a client from a base URL like ``http://127.0.0.1:8765``.

        Raises:
            ValueError: if the URL has no usable host/port or a non-http
                scheme.
        """
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs are supported, got {url!r}")
        if not parsed.hostname:
            raise ValueError(f"service URL has no host: {url!r}")
        return cls(
            host=parsed.hostname, port=parsed.port or 80, timeout=timeout, retries=retries
        )

    @property
    def url(self) -> str:
        """The base URL this client targets."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload: Any = None) -> Dict[str, Any]:
        """One JSON round-trip; returns the parsed response body.

        Connection failures (refused, reset, timed out before a status
        line) are retried up to ``self.retries`` extra times with capped
        exponential backoff; a response -- any response -- is final.

        Raises:
            ServiceError: on connection failure (after the retry budget),
                a non-JSON response, or any non-2xx status (the server's
                error message and a parsed ``Retry-After`` ride along).
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body is not None else {}
        for attempt in range(self.retries + 1):
            try:
                return self._roundtrip(method, path, body, headers)
            except ServiceError as error:
                # Only pure transport failures (no status) are retryable;
                # the server never saw -- or never answered -- the request.
                if error.status is not None or attempt == self.retries:
                    raise
                time.sleep(min(self.backoff * (2 ** attempt), self.backoff_cap))
        raise AssertionError("unreachable")  # pragma: no cover

    def _roundtrip(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Dict[str, Any]:
        """One attempt of :meth:`request` on a fresh connection."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise ServiceError(
                    f"service unreachable at {self.url}: {error}"
                ) from error
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ServiceError(
                    f"non-JSON response from {method} {path} "
                    f"(status {response.status})",
                    status=response.status,
                ) from error
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    parsed.get("error", f"{method} {path} failed"),
                    status=response.status,
                    payload=parsed,
                    retry_after=float(retry_after) if retry_after else None,
                )
            return parsed
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Query endpoints
    # ------------------------------------------------------------------
    def search(
        self,
        scene: Any = None,
        *,
        identifiers: Optional[Sequence[str]] = None,
        invariant: bool = False,
        where: Union[None, str, Dict[str, Any]] = None,
        fuzzy: bool = False,
        compose: Optional[str] = None,
        blend: Optional[float] = None,
        min_score: float = 0.0,
        limit: Optional[int] = 10,
        no_filters: bool = False,
        execution: Any = None,
        page: Optional[int] = None,
        page_size: Optional[int] = None,
    ) -> Dict[str, Any]:
        """``POST /search`` with the full QuerySpec surface.

        The positional argument accepts a
        :class:`~repro.index.spec.QuerySpec` directly — the spec is compiled
        to the wire schema (scene, predicates as ``where`` text, invariance,
        execution options) and every keyword except ``page``/``page_size``
        must be left at its default.  Alternatively pass a scene plus the
        explicit keywords.  ``where`` carries the predicate clause as
        grammar text (``"not (a above b) or a overlaps b [w=2]"``) or as a
        nested predicate-tree JSON object (``PredicateNode.to_dict()``
        form); ``fuzzy`` grades every leaf, and ``compose``/``blend`` pick
        how the degree combines with the similarity score
        (see ``docs/predicates.md``).  ``execution`` carries per-query execution
        options — an ``ExecutionOptions`` value or a plain dict of its
        fields (e.g. ``{"kernel": "bitparallel", "strategy": "anytime"}``);
        explicit fields win over the legacy ``no_filters`` flag.

        Returns:
            The response body: ``results`` (the library's ``to_dicts()``
            rows), ``count``, ``total``, ``spec``, ``plan`` and -- when
            paginating -- ``page`` / ``page_size`` / ``pages``.
        """
        if _is_query_spec(scene):
            payload = _spec_payload(scene)
            if page is not None:
                payload["page"] = page
            if page_size is not None:
                payload["page_size"] = page_size
            return self.request("POST", "/search", payload)
        payload: Dict[str, Any] = {
            "invariant": invariant,
            "min_score": min_score,
            "limit": limit,
            "no_filters": no_filters,
        }
        if execution is not None:
            payload["execution"] = (
                execution.to_dict() if hasattr(execution, "to_dict") else dict(execution)
            )
        if scene is not None:
            payload["scene"] = _scene_payload(scene)
        if identifiers is not None:
            payload["identifiers"] = list(identifiers)
        if where is not None:
            payload["where"] = where
            if fuzzy:
                payload["fuzzy"] = True
        if compose is not None:
            payload["compose"] = compose
            if blend is not None:
                payload["blend"] = blend
        if page is not None:
            payload["page"] = page
        if page_size is not None:
            payload["page_size"] = page_size
        return self.request("POST", "/search", payload)

    def batch(
        self,
        queries: Sequence[Union[Dict[str, Any], Any]],
        *,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /batch``: each query is a spec, a ``/search`` dict or a scene.

        Entries may mix :class:`~repro.index.spec.QuerySpec` values
        (compiled like :meth:`search`), ``/search``-style payload dicts, and
        bare scenes.

        Returns:
            The response body with one ``results`` ranking per input query
            (input order) and the scheduler ``report`` line.
        """
        entries: List[Dict[str, Any]] = []
        for query in queries:
            if _is_query_spec(query):
                entries.append(_spec_payload(query))
            elif isinstance(query, dict) and "scene" in query:
                entries.append(query)
            else:
                entries.append({"scene": _scene_payload(query)})
        payload: Dict[str, Any] = {"queries": entries}
        if workers is not None:
            payload["workers"] = workers
        if executor is not None:
            payload["executor"] = executor
        return self.request("POST", "/batch", payload)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz``: the liveness payload."""
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``: counters, latency percentiles, cache hit rate."""
        return self.request("GET", "/stats")

    # ------------------------------------------------------------------
    # Deprecated flat surface (thin shims over the resources above)
    # ------------------------------------------------------------------
    def add_image(self, scene: Any, image_id: Optional[str] = None) -> Dict[str, Any]:
        """Deprecated alias of :meth:`_ImagesResource.add` (``client.images.add``)."""
        _warn_deprecated("add_image", "client.images.add")
        return self.images.add(scene, image_id)

    def delete_image(self, image_id: str) -> Dict[str, Any]:
        """Deprecated alias of :meth:`_ImagesResource.delete` (``client.images.delete``)."""
        _warn_deprecated("delete_image", "client.images.delete")
        return self.images.delete(image_id)

    def promote(self) -> Dict[str, Any]:
        """Deprecated alias of :meth:`_AdminResource.promote` (``client.admin.promote``)."""
        _warn_deprecated("promote", "client.admin.promote")
        return self.admin.promote()

    def healthz(self) -> Dict[str, Any]:
        """Deprecated alias of :meth:`health`."""
        _warn_deprecated("healthz", "client.health")
        return self.health()

    def ping(self) -> Dict[str, Any]:
        """Health check plus measured round-trip time.

        Returns:
            The ``/healthz`` body with ``round_trip_ms`` added.

        Raises:
            ServiceError: if the daemon is unreachable or unhealthy.
        """
        started = time.perf_counter()
        body = self.health()
        body["round_trip_ms"] = round((time.perf_counter() - started) * 1000, 3)
        return body

    def wait_until_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``/healthz`` until it answers (daemon start-up helper).

        Returns:
            The first healthy ``/healthz`` body.

        Raises:
            ServiceError: if the daemon did not come up within ``timeout``.
        """
        deadline = time.monotonic() + timeout
        last_error: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServiceError as error:
                last_error = error
                time.sleep(interval)
        raise ServiceError(
            f"service at {self.url} not healthy after {timeout:g}s: {last_error}"
        )
