"""The concurrent retrieval service: an HTTP daemon over the retrieval system.

This layer sits on top of :mod:`repro.retrieval` and turns the one-shot
library into a long-running process:

* :mod:`repro.service.rwlock` -- the readers-writer lock installed on a
  :class:`~repro.index.query.QueryEngine` so many queries run in parallel
  against a consistent snapshot while mutations are exclusive.
* :mod:`repro.service.server` -- the stdlib-only JSON-over-HTTP daemon
  (``repro serve``): ``POST /search`` / ``POST /batch`` / mutation endpoints
  with incremental persistence / ``GET /healthz`` / ``GET /stats``, fronted
  by a bounded admission gate (503 + ``Retry-After`` under overload).
* :mod:`repro.service.client` -- the thin stdlib client the CLI
  (``repro ping``), the CI smoke job and the E13 benchmark drive it with.

See ``docs/service.md`` for the wire protocol and deployment notes.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.rwlock import ReadWriteLock
from repro.service.server import (
    RetrievalServer,
    RetrievalService,
    ServiceOverloadedError,
    create_server,
)

__all__ = [
    "ReadWriteLock",
    "RetrievalServer",
    "RetrievalService",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "create_server",
]
