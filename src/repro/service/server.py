"""The ``repro serve`` daemon: JSON-over-HTTP retrieval on a thread-safe core.

The server is pure standard library (:class:`http.server.ThreadingHTTPServer`)
and exposes the whole unified query pipeline over nine endpoints:

==========  =================  ===================================================
method      path               what it does
==========  =================  ===================================================
``POST``    ``/search``        one :class:`~repro.index.spec.QuerySpec` payload
                               (exact / invariant / partial / predicate clauses,
                               ``min_score``, ``limit``, pagination)
``POST``    ``/batch``         many similarity queries as one scheduled batch
``POST``    ``/images``        insert a scene (incremental persistence; in
                               durable mode acked only after the WAL fsync)
``DELETE``  ``/images/{id}``   remove a stored image (same durability contract)
``POST``    ``/reload``        zero-downtime reload: rebuild the engine from
                               disk, swap it in under the readers-writer lock
``POST``    ``/compact``       fold the WAL delta into the shards now
                               (409 unless serving with ``--wal``)
``POST``    ``/promote``       replica only: detach into a writable primary
                               (409 here; see :mod:`repro.service.replica`)
``GET``     ``/healthz``       liveness: status, image count, uptime
``GET``     ``/stats``         request counts, p50/p95 latency, cache hit rate
==========  =================  ===================================================

Durable mode (``repro serve --wal``, a sharded directory only) adds the
crash-safety contract of ``docs/durability.md``: a mutation response is the
durability acknowledgement (the WAL record is fsync'd before the status line
is written), a background thread compacts the log into the shards past a
pending-record threshold, and ``repro recover`` / plain loading replays the
log so no acknowledged write is ever lost — kill -9 included, as the
fault-injection harness (``tools/faultinject.py``) asserts.

Every request thread runs against one shared
:class:`~repro.retrieval.system.RetrievalSystem` whose engine carries a
readers-writer lock (:mod:`repro.service.rwlock`): searches take the shared
grant and run in parallel against a consistent snapshot; mutations take the
exclusive grant, refresh the indexes and score cache atomically, then persist
through the storage backends (``incremental=True``, so a SQLite or sharded
database rewrites only what changed).

Work admission is bounded: at most ``workers`` requests execute while up to
``backlog`` more wait; anything beyond is rejected immediately with ``503``
and a ``Retry-After`` header instead of queueing unboundedly (closed-loop
clients back off, the server never builds an invisible latency bomb).  Health
and stats probes bypass the gate so the daemon stays observable under
overload.

Rankings are byte-identical to in-process :meth:`QueryEngine.execute_spec`
output -- the handler serialises the same ``ResultSet.to_dicts()`` the library
returns, which the CI ``service-smoke`` job and the E13 benchmark assert.

See ``docs/service.md`` for payload schemas and deployment notes.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import unquote

from repro.iconic.picture import SymbolicPicture
from repro.index.backends import MANIFEST_NAME, DurableShardedStore
from repro.index.database import DatabaseError
from repro.index.execution import ExecutionOptions
from repro.index.spec import QuerySpecError
from repro.index.storage import StorageError
from repro.retrieval.predicates import PredicateError, tree_from_dict
from repro.retrieval.querybuilder import QueryBuilder, ResultSet
from repro.retrieval.system import RetrievalSystem

#: Executor choices accepted by the ``/batch`` endpoint's ``executor`` key.
_BATCH_EXECUTORS = ("thread", "process", "serial", "auto", "shard_process")


class ApiError(Exception):
    """A request failure mapped to an HTTP status (4xx/5xx) with a message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServiceOverloadedError(ApiError):
    """Raised when the admission gate is full (HTTP 503 + ``Retry-After``)."""

    def __init__(self, retry_after: float = 1.0) -> None:
        super().__init__(503, "service overloaded; retry later")
        self.retry_after = retry_after


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list.

    The nearest-rank definition: the value at 1-based rank
    ``ceil(fraction * n)``.  The previous ``round(fraction * (n - 1))``
    implementation drifted off the nearest rank at even window sizes
    (banker's rounding pulled e.g. the p50 of four samples up to the third
    value instead of the second).
    """
    rank = math.ceil(fraction * len(sorted_values))
    index = min(max(rank - 1, 0), len(sorted_values) - 1)
    return sorted_values[index]


# ----------------------------------------------------------------------
# Payload validation helpers (every failure is a 400 with a clear message)
# ----------------------------------------------------------------------
def _as_object(payload: Any) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise ApiError(400, "request body must be a JSON object")
    return payload


def _get_bool(payload: Dict[str, Any], key: str, default: bool = False) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ApiError(400, f"{key!r} must be a JSON boolean")
    return value


def _get_number(payload: Dict[str, Any], key: str, default: float = 0.0) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ApiError(400, f"{key!r} must be a JSON number")
    return float(value)


def _get_limit(payload: Dict[str, Any], key: str = "limit", default: Optional[int] = 10) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ApiError(400, f"{key!r} must be a non-negative JSON integer or null")
    return value


def _get_positive_int(payload: Dict[str, Any], key: str) -> Optional[int]:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ApiError(400, f"{key!r} must be a positive JSON integer")
    return value


def _parse_scene(scene: Any, context: str = "scene") -> SymbolicPicture:
    if not isinstance(scene, dict):
        raise ApiError(400, f"{context!r} must be a JSON object describing a scene")
    try:
        return SymbolicPicture.from_dict(scene)
    except (StorageError, ValueError, KeyError, TypeError) as error:
        raise ApiError(400, f"malformed {context}: {error}") from error


class RetrievalService:
    """The HTTP-agnostic service core: dispatch, admission control, stats.

    Separating the core from the HTTP handler keeps every endpoint unit
    testable in-process (``service.dispatch("POST", "/search", payload)``)
    and lets the stress suite hammer it without sockets.
    """

    def __init__(
        self,
        system: RetrievalSystem,
        *,
        workers: int = 4,
        backlog: int = 16,
        database_path: Union[None, str, Path] = None,
        backend: Optional[str] = None,
        retry_after: float = 1.0,
        latency_window: int = 2048,
        durable: bool = False,
        compact_threshold: int = 256,
        shard_workers: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backlog < 0:
            raise ValueError("backlog must be non-negative")
        if durable and database_path is None:
            raise ValueError("durable mode requires a database_path")
        if shard_workers is not None and shard_workers < 1:
            raise ValueError("shard_workers must be at least 1")
        self.system = system.enable_concurrent_access()
        self.workers = workers
        self.backlog = backlog
        self.database_path = Path(database_path) if database_path is not None else None
        self.backend = backend
        #: ``repro serve --shard-workers N``: every search scatter-gathers
        #: across N forked shard workers (:mod:`repro.index.workers`) instead
        #: of scoring on the request thread.  Rankings stay byte-identical.
        self.shard_workers = shard_workers
        self._configure_shard_workers()
        self.retry_after = retry_after
        #: Admission gate: ``workers`` running + ``backlog`` waiting, rest 503.
        self._admission = threading.BoundedSemaphore(workers + backlog)
        self._slots = threading.BoundedSemaphore(workers)
        #: Serialises mutation + persistence so incremental saves see exactly
        #: one mutation's dirty set (queries keep flowing via the rwlock).
        self._mutation_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._request_counts: Dict[str, int] = {}
        self._rejected = 0
        self._error_count = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._reloads = 0
        #: Durable mode: a live WAL handle; every acked mutation is fsync'd
        #: to the log first, a background thread folds the delta into the
        #: shards when it crosses ``compact_threshold`` (see docs/durability.md).
        self.store: Optional[DurableShardedStore] = None
        self._compact_wanted = threading.Event()
        self._closed = threading.Event()
        self._compactor: Optional[threading.Thread] = None
        if durable:
            self.store = DurableShardedStore(
                self.system._engine.database,
                self.database_path,
                compact_threshold=compact_threshold,
            )
            self._compactor = threading.Thread(
                target=self._compaction_loop, name="repro-compactor", daemon=True
            )
            self._compactor.start()

    # ------------------------------------------------------------------
    # Shard workers (scatter-gather execution)
    # ------------------------------------------------------------------
    def _configure_shard_workers(self) -> None:
        """Point the engine at the shard-worker pool (idempotent, reload-safe).

        Overlays the engine's execution defaults with
        ``executor="shard_process", workers=N`` so every search and batch
        scatter-gathers, and hands the engine the sharded directory path
        (when serving one) so worker warm starts read only their own shards
        — O(shard slice), not O(database).
        """
        if self.shard_workers is None:
            return
        engine = self.system._engine
        engine.execution = engine.execution.overlaid(
            ExecutionOptions(executor="shard_process", workers=self.shard_workers)
        )
        if (
            self.database_path is not None
            and (self.database_path / MANIFEST_NAME).is_file()
        ):
            engine.shard_source = self.database_path

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    @contextmanager
    def _admitted(self) -> Iterator[None]:
        """Bounded-queue admission: reject with 503 instead of piling up."""
        if not self._admission.acquire(blocking=False):
            with self._stats_lock:
                self._rejected += 1
            raise ServiceOverloadedError(retry_after=self.retry_after)
        try:
            self._slots.acquire()
            try:
                yield
            finally:
                self._slots.release()
        finally:
            self._admission.release()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self, method: str, path: str, payload: Any = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Route one request.

        Returns:
            ``(status, body, extra_headers)`` -- the body is a
            JSON-serialisable dict; a ``Retry-After`` header accompanies 503.
        """
        started = time.perf_counter()
        endpoint = f"{method} {self._endpoint_label(method, path)}"
        try:
            status, body, headers = self._route(method, path, payload)
        except ServiceOverloadedError as error:
            self._observe(endpoint, started, error.status)
            return error.status, {"error": error.message}, {
                "Retry-After": f"{error.retry_after:g}"
            }
        except ApiError as error:
            self._observe(endpoint, started, error.status)
            return error.status, {"error": error.message}, {}
        self._observe(endpoint, started, status)
        return status, body, headers

    @staticmethod
    def _endpoint_label(method: str, path: str) -> str:
        """Bounded-cardinality stats key for one request path."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path.startswith("/images/"):
            return "/images/{id}"
        if path in (
            "/healthz",
            "/stats",
            "/search",
            "/batch",
            "/images",
            "/reload",
            "/compact",
            "/promote",
        ):
            return path
        return "<unknown>"

    def _route(
        self, method: str, path: str, payload: Any
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            return 200, self.healthz(), {}
        if method == "GET" and path == "/stats":
            return 200, self.stats(), {}
        if method == "POST" and path == "/search":
            return 200, self.search(_as_object(payload)), {}
        if method == "POST" and path == "/batch":
            return 200, self.batch(_as_object(payload)), {}
        if method == "POST" and path == "/images":
            return 201, self.add_image(_as_object(payload)), {}
        if method == "POST" and path == "/reload":
            return 200, self.reload(), {}
        if method == "POST" and path == "/compact":
            return 200, self.compact(), {}
        if method == "POST" and path == "/promote":
            return 200, self.promote(), {}
        if method == "DELETE" and path.startswith("/images/"):
            return 200, self.delete_image(unquote(path[len("/images/"):])), {}
        if method == "DELETE" and path == "/images":
            # "DELETE /images" and "DELETE /images/" (trailing slash is
            # normalised away above) both lack the id segment.
            raise ApiError(400, "an image id is required: DELETE /images/{id}")
        raise ApiError(404, f"no such endpoint: {method} {path}")

    # ------------------------------------------------------------------
    # Query endpoints
    # ------------------------------------------------------------------
    def _build_query(self, payload: Dict[str, Any]) -> QueryBuilder:
        """Compile one JSON query payload to a fluent builder.

        Raises:
            ApiError: 400 on any malformed clause or knob.
        """
        builder = self.system.query()
        scene = payload.get("scene")
        if scene is not None:
            builder.similar_to(_parse_scene(scene))
        identifiers = payload.get("identifiers")
        if identifiers is not None:
            if not isinstance(identifiers, list) or not all(
                isinstance(item, str) for item in identifiers
            ):
                raise ApiError(400, "'identifiers' must be a JSON array of strings")
            builder.partial(identifiers)
        builder.invariant(_get_bool(payload, "invariant"))
        where = payload.get("where")
        if where is not None:
            fuzzy = _get_bool(payload, "fuzzy")
            try:
                if isinstance(where, str):
                    builder.where(where, fuzzy=fuzzy)
                elif isinstance(where, dict):
                    # The nested wire form: a predicate-tree JSON object as
                    # produced by PredicateNode.to_dict() (docs/predicates.md).
                    builder.where(tree_from_dict(where), fuzzy=fuzzy)
                else:
                    raise ApiError(
                        400,
                        "'where' must be a predicate string or a "
                        "predicate-tree JSON object",
                    )
            except PredicateError as error:
                raise ApiError(400, str(error)) from error
        elif "fuzzy" in payload:
            raise ApiError(400, "'fuzzy' requires a 'where' clause")
        compose = payload.get("compose")
        if compose is not None:
            if not isinstance(compose, str):
                raise ApiError(400, "'compose' must be a JSON string")
            blend = (
                _get_number(payload, "blend") if "blend" in payload else None
            )
            builder.compose(compose, blend)
        elif "blend" in payload:
            raise ApiError(400, "'blend' requires a 'compose' mode")
        builder.limit(_get_limit(payload))
        builder.min_score(_get_number(payload, "min_score"))
        builder.execution(shortlist=not _get_bool(payload, "no_filters"))
        execution = payload.get("execution")
        if execution is not None:
            if not isinstance(execution, dict):
                raise ApiError(400, "'execution' must be a JSON object")
            try:
                builder.execution(ExecutionOptions.from_dict(execution))
            except (TypeError, ValueError) as error:
                raise ApiError(400, f"malformed 'execution': {error}") from error
        return builder

    def _execute_query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        builder = self._build_query(payload)
        page = _get_positive_int(payload, "page")
        page_size = _get_positive_int(payload, "page_size")
        if (page is None) != (page_size is None):
            raise ApiError(400, "'page' and 'page_size' must be given together")
        try:
            results = builder.execute()
        except QuerySpecError as error:
            raise ApiError(400, str(error)) from error
        except KeyError as error:  # partial() naming icons the scene lacks
            raise ApiError(400, f"unknown identifier in 'identifiers': {error}") from error
        body: Dict[str, Any] = {
            "total": len(results),
            "spec": results.spec.describe() if results.spec is not None else None,
        }
        if results.trace is not None:
            body["plan"] = results.trace.describe()
        window: ResultSet = results
        if page is not None and page_size is not None:
            window = results.page(page, page_size)
            body["page"] = page
            body["page_size"] = page_size
            body["pages"] = results.page_count(page_size)
        body["results"] = window.to_dicts()
        body["count"] = len(window)
        return body

    def search(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /search``: run one full QuerySpec payload.

        Returns:
            The ranking (``results`` as the library's ``to_dicts()`` rows,
            byte-identical to in-process execution), the pre-pagination
            ``total``, the compiled ``spec`` and the execution ``plan``.
        """
        with self._admitted():
            return self._execute_query(payload)

    def batch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /batch``: many similarity queries as one scheduled batch.

        The payload's ``queries`` array reuses the ``/search`` schema
        (predicate clauses are rejected: the batch scheduler is
        similarity-only, exactly like :meth:`RetrievalSystem.query_batch`).
        Optional ``workers`` / ``executor`` keys tune the scheduler.
        """
        with self._admitted():
            queries = payload.get("queries")
            if not isinstance(queries, list) or not queries:
                raise ApiError(400, "'queries' must be a non-empty JSON array")
            builders = [
                self._build_query(_as_object(entry)) for entry in queries
            ]
            overrides: Dict[str, Any] = {}
            workers = _get_positive_int(payload, "workers")
            if workers is not None:
                overrides["workers"] = workers
            executor = payload.get("executor")
            if executor is not None:
                if executor not in _BATCH_EXECUTORS:
                    raise ApiError(
                        400, f"'executor' must be one of {', '.join(_BATCH_EXECUTORS)}"
                    )
                overrides["executor"] = executor
            try:
                batches = self.system.query_batch(builders, **overrides)
            except QuerySpecError as error:
                raise ApiError(400, str(error)) from error
            except KeyError as error:  # partial() naming icons a scene lacks
                raise ApiError(400, f"unknown identifier in 'identifiers': {error}") from error
            report = self.system.last_batch_report
            return {
                "results": [results.to_dicts() for results in batches],
                "count": len(batches),
                "report": report.describe() if report is not None else None,
            }

    # ------------------------------------------------------------------
    # Mutation endpoints
    # ------------------------------------------------------------------
    def _persist(self) -> None:
        """Write the database back to disk incrementally (if configured).

        In durable mode this is a no-op: the mutation endpoints append to
        the write-ahead log instead (ack-after-fsync) and the background
        compactor folds the delta into the shards.
        """
        if self.database_path is None or self.store is not None:
            return
        try:
            self.system.save(self.database_path, backend=self.backend, incremental=True)
        except (StorageError, ValueError) as error:
            raise ApiError(500, f"persistence failed: {error}") from error

    def add_image(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /images``: store one scene and persist incrementally.

        In durable mode the 201 response is the durability acknowledgement:
        it is sent only after the upsert record is fsync'd to the
        write-ahead log; a logging failure rolls the in-memory insert back
        and answers 500, so the client's view and the log never diverge.

        Returns:
            The stored ``image_id`` and the new database size (HTTP 201);
            in durable mode also the record's ``lsn``.
        """
        with self._admitted():
            picture = _parse_scene(payload.get("scene"))
            image_id = payload.get("image_id")
            if image_id is not None and not isinstance(image_id, str):
                raise ApiError(400, "'image_id' must be a JSON string")
            with self._mutation_lock:
                try:
                    stored = self.system.add_picture(picture, image_id)
                except DatabaseError as error:
                    raise ApiError(409, str(error)) from error
                body: Dict[str, Any] = {"image_id": stored}
                if self.store is not None:
                    try:
                        body["lsn"] = self.store.log_upsert(self.system.record(stored))
                    except StorageError as error:
                        self.system.remove_picture(stored)
                        raise ApiError(500, f"durable log failed: {error}") from error
                else:
                    self._persist()
                body["images"] = len(self.system)
            self._maybe_compact()
            return body

    def delete_image(self, image_id: str) -> Dict[str, Any]:
        """``DELETE /images/{id}``: remove one image and persist incrementally.

        In durable mode the 200 response is sent only after the delete
        record is fsync'd to the write-ahead log; a logging failure restores
        the removed image and answers 500.

        Returns:
            The removed id and the new database size; 404 on an unknown id.
        """
        with self._admitted():
            if not image_id:
                raise ApiError(400, "an image id is required: DELETE /images/{id}")
            with self._mutation_lock:
                try:
                    record = self.system.record(image_id)
                    self.system.remove_picture(image_id)
                except DatabaseError as error:
                    raise ApiError(404, str(error)) from error
                body = {"removed": image_id}
                if self.store is not None:
                    try:
                        body["lsn"] = self.store.log_delete(image_id)
                    except StorageError as error:
                        self.system.add_picture(record.picture, image_id)
                        raise ApiError(500, f"durable log failed: {error}") from error
                else:
                    self._persist()
                body["images"] = len(self.system)
            self._maybe_compact()
            return body

    # ------------------------------------------------------------------
    # Durability: background compaction and zero-downtime reload
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Nudge the background compactor once the pending delta is large."""
        if self.store is not None and self.store.should_compact():
            self._compact_wanted.set()

    def _compaction_loop(self) -> None:
        """Background thread: fold the WAL delta into the shards on demand."""
        while not self._closed.is_set():
            self._compact_wanted.wait(timeout=0.5)
            if self._closed.is_set():
                return
            if not self._compact_wanted.is_set():
                continue
            self._compact_wanted.clear()
            try:
                with self._mutation_lock:
                    if self.store is not None and self.store.should_compact():
                        self.store.compact()
            except StorageError:
                # The on-disk state stays recoverable (old manifest + full
                # log); the next nudge retries.  Never kill the thread.
                continue

    def compact(self) -> Dict[str, Any]:
        """``POST /compact``: synchronously fold the WAL delta into the shards.

        Returns:
            The new snapshot LSN and remaining pending-record count;
            409 when the service is not running in durable mode.
        """
        with self._admitted():
            if self.store is None:
                raise ApiError(409, "service is not running in durable (--wal) mode")
            with self._mutation_lock:
                try:
                    snapshot_lsn = self.store.compact()
                except StorageError as error:
                    raise ApiError(500, f"compaction failed: {error}") from error
            return {
                "snapshot_lsn": snapshot_lsn,
                "pending_records": self.store.pending_records,
                "compactions": self.store.compactions,
            }

    def promote(self) -> Dict[str, Any]:
        """``POST /promote``: detach a replica into a writable primary.

        Only meaningful on a replica daemon
        (:class:`repro.service.replica.ReplicaService` overrides this); a
        plain service has nothing to promote.

        Returns:
            Never -- always 409 here; see the replica subclass.
        """
        with self._admitted():
            raise ApiError(409, "service is not a replica (nothing to promote)")

    def reload(self) -> Dict[str, Any]:
        """``POST /reload``: zero-downtime reload of the on-disk database.

        Builds a fresh engine from ``database_path`` (replaying any pending
        WAL records) off to the side, then swaps it in under the engine's
        readers-writer lock via :meth:`RetrievalSystem.hot_swap`: in-flight
        queries finish against the old engine, later ones see only the new
        one, and no reader ever observes a mix.

        Returns:
            The reloaded image count; 409 without a ``database_path``.
        """
        with self._admitted():
            if self.database_path is None:
                raise ApiError(409, "service has no database_path to reload from")
            with self._mutation_lock:
                try:
                    replacement = RetrievalSystem.from_file(
                        self.database_path,
                        policy=self.system.policy,
                        backend=self.backend,
                        execution=self.system.execution,
                        durable=self.store is not None,
                    )
                except (StorageError, ValueError, FileNotFoundError) as error:
                    raise ApiError(500, f"reload failed: {error}") from error
                retired = self.system._engine
                self.system.hot_swap(replacement)
                retired.close_shard_pool()
                self._configure_shard_workers()
                if self.store is not None:
                    self.store.rebind(self.system._engine.database)
                with self._stats_lock:
                    self._reloads += 1
            return {"images": len(self.system), "reloads": self._reloads}

    def close(self) -> None:
        """Stop the compactor, shard workers, and WAL handle (idempotent)."""
        self._closed.set()
        self._compact_wanted.set()
        if self._compactor is not None:
            self._compactor.join(timeout=5)
            self._compactor = None
        self.system._engine.close_shard_pool()
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    # Observability endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``: liveness probe (never gated by admission)."""
        return {
            "status": "ok",
            "images": len(self.system),
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
        }

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``: uptime, request counts, latency percentiles, cache.

        Returns:
            Counters since start-up; ``latency_ms`` summarises the most
            recent requests (bounded window), ``cache`` reports the shared
            score cache, ``shortlist`` the two-stage signature shortlist
            (per-stage rejection counts and pruned fraction), ``execution``
            the branch-and-bound counters (anytime queries, candidates
            examined vs admitted), ``predicates`` the predicate-stage
            counters (graded queries, images evaluated vs settled by the
            label bound), ``lock`` the readers-writer grant
            counters.  When serving with ``--shard-workers`` the ``workers``
            key becomes a block describing the scatter-gather pool:
            per-worker shard/image counts, restarts, queue depth, and
            scatter latency (``admission`` inside it carries the plain
            request-concurrency integer the key otherwise holds).
        """
        with self._stats_lock:
            counts = dict(sorted(self._request_counts.items()))
            rejected = self._rejected
            errors = self._error_count
            latencies = sorted(self._latencies)
        latency_ms: Dict[str, Any] = {"count": len(latencies)}
        if latencies:
            latency_ms.update(
                p50=round(_percentile(latencies, 0.50) * 1000, 3),
                p95=round(_percentile(latencies, 0.95) * 1000, 3),
                max=round(latencies[-1] * 1000, 3),
            )
        cache = self.system.cache_statistics()
        shortlist = self.system.shortlist_statistics()
        execution = self.system.execution_statistics()
        predicates = self.system.predicate_statistics()
        body: Dict[str, Any] = {
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            "images": len(self.system),
            "workers": self.workers,
            "backlog": self.backlog,
            "requests": counts,
            "requests_total": sum(counts.values()),
            "rejected_overload": rejected,
            "errors": errors,
            "latency_ms": latency_ms,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
                "size": cache.size,
                "capacity": cache.capacity,
            },
            "shortlist": {
                "queries": shortlist.queries,
                "candidates": shortlist.candidates,
                "bitmap_rejected": shortlist.bitmap_rejected,
                "relation_rejected": shortlist.relation_rejected,
                "admitted": shortlist.admitted,
                "pruned_fraction": round(shortlist.pruned_fraction, 4),
            },
            "execution": {
                "queries": execution.queries,
                "anytime_queries": execution.anytime_queries,
                "admitted": execution.admitted,
                "examined": execution.examined,
                "skipped": execution.skipped,
                "examined_fraction": round(execution.examined_fraction, 4),
            },
            "predicates": {
                "queries": predicates.queries,
                "graded_queries": predicates.graded_queries,
                "evaluated": predicates.evaluated,
                "pruned": predicates.pruned,
                "pruned_fraction": round(predicates.pruned_fraction, 4),
            },
        }
        lock = self.system._engine.lock
        if hasattr(lock, "statistics"):
            body["lock"] = lock.statistics()
        if self.shard_workers is not None:
            pool = self.system._engine.shard_pool_stats()
            body["workers"] = {
                "mode": "shard_process",
                "configured": self.shard_workers,
                "admission": self.workers,
                "pool": pool,  # None until the first scatter forks the pool
            }
        body["reloads"] = self._reloads
        if self.store is not None:
            body["durability"] = {
                "enabled": True,
                "last_lsn": self.store.last_lsn,
                "snapshot_lsn": self.store.snapshot_lsn,
                "pending_records": self.store.pending_records,
                "wal_size_bytes": self.store.wal_size_bytes,
                "compact_threshold": self.store.compact_threshold,
                "compactions": self.store.compactions,
            }
        else:
            body["durability"] = {"enabled": False}
        return body

    def _observe(self, endpoint: str, started: float, status: int) -> None:
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._request_counts[endpoint] = self._request_counts.get(endpoint, 0) + 1
            if status >= 400 and status != 503:
                self._error_count += 1
            self._latencies.append(elapsed)  # deque(maxlen=...) evicts in O(1)


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: RetrievalService) -> None:
        super().__init__(address, _RequestHandler)
        self.service = service


class _RequestHandler(BaseHTTPRequestHandler):
    """Per-connection handler: JSON in, JSON out, errors as ``{"error": ...}``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence the default per-request stderr log line."""

    def _read_payload(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as error:
            raise ApiError(400, "Content-Length must be an integer") from error
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ApiError(400, f"request body is not valid JSON: {error}") from error

    def _respond(self, status: int, body: Dict[str, Any], headers: Dict[str, str]) -> None:
        encoded = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def _handle(self, method: str) -> None:
        try:
            payload = self._read_payload()
        except ApiError as error:
            self._respond(error.status, {"error": error.message}, {})
            return
        try:
            status, body, headers = self.server.service.dispatch(method, self.path, payload)
        except Exception as error:  # noqa: BLE001 - last-resort 500, keep serving
            self._respond(500, {"error": f"internal error: {error}"}, {})
            return
        self._respond(status, body, headers)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve one GET request."""
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve one POST request."""
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        """Serve one DELETE request."""
        self._handle("DELETE")


class RetrievalServer:
    """A bound-and-listening retrieval daemon (socket open, not yet serving).

    Wraps the threading HTTP server with lifecycle helpers: ``serve_forever``
    for the CLI foreground path, ``start_background`` for tests and
    benchmarks, and context-manager cleanup.
    """

    def __init__(self, service: RetrievalService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._http = _ServiceHTTPServer((host, port), service)
        self._thread: Optional[threading.Thread] = None
        #: Whether the serve loop was ever entered.  ``BaseServer.shutdown``
        #: blocks until the loop acknowledges, which deadlocks when the loop
        #: never ran (e.g. ``repro serve --check``) -- so only ask a loop that
        #: exists to stop.
        self._loop_entered = threading.Event()

    @property
    def host(self) -> str:
        """The bound interface."""
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one when created with port 0)."""
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; the CLI foreground path)."""
        self._loop_entered.set()
        self._http.serve_forever(poll_interval=0.1)

    def start_background(self) -> "RetrievalServer":
        """Serve on a daemon thread (tests, benchmarks); chainable."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-serve", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the serve loop (idempotent; socket stays open until close)."""
        if self._loop_entered.is_set():
            self._http.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def close(self) -> None:
        """Stop serving, release the socket, and close the service's WAL."""
        self.shutdown()
        self._http.server_close()
        self.service.close()

    def __enter__(self) -> "RetrievalServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def create_server(
    system: RetrievalSystem,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 4,
    backlog: int = 16,
    database_path: Union[None, str, Path] = None,
    backend: Optional[str] = None,
    durable: bool = False,
    compact_threshold: int = 256,
    shard_workers: Optional[int] = None,
) -> RetrievalServer:
    """Build a bound :class:`RetrievalServer` over ``system``.

    ``port=0`` binds an ephemeral port (read it back from ``server.port``).
    ``database_path`` enables write-through persistence: every mutation
    endpoint saves incrementally to that path with ``backend`` (``None``
    infers the format from the path, exactly like :meth:`RetrievalSystem.save`).
    ``durable=True`` (the ``repro serve --wal`` path) switches persistence to
    the write-ahead log instead: mutations are acknowledged only after their
    log record is fsync'd, and a background thread compacts the log into the
    shards every ``compact_threshold`` pending records (``docs/durability.md``).
    ``shard_workers=N`` (the ``repro serve --shard-workers N`` path) forks N
    shard-worker processes and scatter-gathers every search across them
    behind the readers-writer lock (``docs/parallelism.md``); rankings stay
    byte-identical to serial execution.

    Returns:
        A server with the socket bound; call ``serve_forever()`` or
        ``start_background()`` to begin answering requests.

    Raises:
        ValueError: on a non-positive ``workers``, negative ``backlog``, or
            ``durable=True`` without a ``database_path``.
        OSError: if the address cannot be bound.
    """
    service = RetrievalService(
        system,
        workers=workers,
        backlog=backlog,
        database_path=database_path,
        backend=backend,
        durable=durable,
        compact_threshold=compact_threshold,
        shard_workers=shard_workers,
    )
    return RetrievalServer(service, host=host, port=port)
