"""The replica daemon: a hot standby that tails the primary's write-ahead log.

``repro replica <dir>`` opens the same durable shard directory a
``repro serve --wal`` primary writes, *read-only*, and keeps a live engine
current by following the log (``docs/replication.md``):

* **warm start** -- the engine loads from the shard snapshot plus the
  replayed log tail (:meth:`RetrievalSystem.from_file`), exactly like the
  primary's own recovery path, so a replica boot costs O(snapshot + WAL
  delta) and starts at the acknowledged state.
* **tailing** -- a :class:`~repro.index.wal.WalTailer` polls ``wal.log``
  every follow interval and yields the intact records past the applied LSN;
  each upsert/delete is applied through the engine's mutation path, which
  takes the exclusive readers-writer grant and refreshes the shortlist
  signatures, inverted index, and score cache per record.  In-flight
  searches keep streaming off the shared grant throughout.
* **snapshot reload** -- when the primary compacts past the replica (the
  manifest's ``snapshot_lsn`` advances beyond the applied LSN, or the
  truncated log no longer reaches back to it), the replica rebuilds from
  the snapshot off to the side and :meth:`~RetrievalSystem.hot_swap`\\ s it
  in under the rwlock -- readers never observe a mix.
* **read surface, write fence** -- ``/search``, ``/batch``, ``/healthz``
  and ``/stats`` behave exactly like the primary's; mutations (and the
  admin writes ``/reload`` / ``/compact``) answer **403** naming the
  primary's address.  ``/stats`` gains a ``replication`` block: applied vs
  primary LSN, lag in records and seconds, snapshot reloads.
* **promotion** -- ``POST /promote`` drains the remaining log tail,
  detaches the follower, and attaches a live
  :class:`~repro.index.backends.DurableShardedStore`: the daemon becomes a
  writable durable primary (mutations ack after their log record's fsync,
  background compaction resumes).  Fence the old primary first -- two
  writers on one directory is an operator error the protocol cannot
  detect.

Convergence is proven the same way the durability tier was: the
fault-injection harness (``tools/faultinject.py --replica``) SIGKILLs the
primary and the replica at random points and asserts the recovered replica's
rankings are byte-identical to the primary's with zero acknowledged writes
lost, and benchmark E17 (``benchmarks/bench_replica.py``) asserts catch-up
cost scales with the WAL lag delta, not the database size.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.iconic.picture import SymbolicPicture
from repro.index.backends import DurableShardedStore, durable_wal_state
from repro.index.database import DatabaseError
from repro.index.execution import ExecutionOptions
from repro.index.storage import StorageError
from repro.index.wal import WAL_NAME, WalRecord, WalTailer, WalTruncatedError
from repro.retrieval.system import RetrievalSystem
from repro.service.server import ApiError, RetrievalServer, RetrievalService

PathLike = Union[str, Path]


class ReplicaEngine:
    """A live engine kept current by tailing a durable directory's log.

    Owns the read-only relationship with the primary's directory: the warm
    start, the tail cursor (``applied_lsn``), record application, snapshot
    reloads, and the lag bookkeeping ``/stats`` reports.  All writes to the
    directory remain the primary's; this class only ever reads.

    Not internally locked: callers serialise :meth:`sync` / :meth:`drain` /
    :meth:`detach` (the service brackets them in its mutation lock).  The
    *engine* mutations each take the exclusive rwlock grant, so concurrent
    readers are always safe.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        execution: Optional[ExecutionOptions] = None,
    ) -> None:
        """Warm-start a replica of the durable directory at ``path``.

        Raises:
            ValueError: if the target is not a durable sharded directory
                (no manifest ``wal`` block -- serve it once with ``--wal``
                or save it with ``durable=True`` first).
            StorageError: if the snapshot or log is unreadable.
            FileNotFoundError: if ``path`` does not exist.
        """
        self.path = Path(path)
        state = durable_wal_state(self.path)
        if state is None:
            raise ValueError(
                f"{self.path} is not a durable database (no write-ahead log); "
                "serve it with --wal once, or save it with durable=True"
            )
        # Read the position *before* loading: the load replays at least this
        # much, and replaying a record twice is idempotent, so undercounting
        # the cursor is always safe while overcounting never happens.
        self.applied_lsn = state["last_lsn"]
        self.system = RetrievalSystem.from_file(
            self.path, execution=execution, durable=True
        ).enable_concurrent_access()
        self._tailer = WalTailer(self.path / WAL_NAME, from_lsn=self.applied_lsn)
        self.primary_lsn = self.applied_lsn
        self.records_applied = 0
        self.snapshot_reloads = 0
        self.syncs = 0
        self._behind_since: Optional[float] = None
        self._detached = False

    # ------------------------------------------------------------------
    # Following
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Catch up with the primary's log once; returns LSNs advanced.

        One poll of the manifest and the log: applies every intact record
        past the cursor, or -- when the primary compacted past us -- reloads
        from the snapshot and hot-swaps the rebuilt engine in.  Cheap when
        caught up (a manifest read plus a zero-byte log read).

        Raises:
            StorageError: if the directory stops being a readable durable
                database mid-follow (the follower loop retries).
        """
        if self._detached:
            return 0
        state = durable_wal_state(self.path)
        if state is None:
            raise StorageError(f"{self.path} is no longer a durable database")
        self.syncs += 1
        if state["snapshot_lsn"] > self.applied_lsn:
            return self._observe(state, self._reload_snapshot())
        try:
            records = self._tailer.poll()
        except WalTruncatedError:
            return self._observe(state, self._reload_snapshot())
        for record in records:
            self._apply(record)
            self.applied_lsn = record.lsn
            self.records_applied += 1
        return self._observe(state, len(records))

    def drain(self) -> int:
        """Apply everything the log currently holds; returns LSNs advanced.

        The promotion path: loops :meth:`sync` until a pass makes no
        progress, so the detached engine starts from the primary's last
        acknowledged state (as of the moment the primary stopped writing).
        """
        advanced = 0
        while True:
            step = self.sync()
            if step == 0:
                return advanced
            advanced += step

    def detach(self) -> None:
        """Stop following: further :meth:`sync` calls become no-ops."""
        self._detached = True

    @property
    def detached(self) -> bool:
        """Whether the engine has been detached (promoted) from the log."""
        return self._detached

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def lag_records(self) -> int:
        """Records the primary has acknowledged that we have not applied."""
        return max(0, self.primary_lsn - self.applied_lsn)

    @property
    def lag_seconds(self) -> float:
        """Seconds since the replica was last fully caught up (0 when it is)."""
        if self._behind_since is None:
            return 0.0
        return time.monotonic() - self._behind_since

    def replication_stats(self) -> Dict[str, Any]:
        """The ``replication`` block of the replica's ``/stats`` body."""
        return {
            "applied_lsn": self.applied_lsn,
            "primary_lsn": self.primary_lsn,
            "lag_records": self.lag_records,
            "lag_seconds": round(self.lag_seconds, 3),
            "records_applied": self.records_applied,
            "snapshot_reloads": self.snapshot_reloads,
            "syncs": self.syncs,
            "detached": self._detached,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply(self, record: WalRecord) -> None:
        """Apply one tailed record through the engine's mutation path.

        Upserts replace (remove-if-present, then add): byte-identical to the
        loader's replay semantics.  Deletes of unknown ids are ignored --
        replay overlap after a snapshot reload is expected and must be
        idempotent.

        Raises:
            StorageError: on an upsert entry that does not describe a scene
                (the log is intact -- CRC-checked -- so this means a
                writer/reader schema mismatch worth surfacing loudly).
        """
        try:
            self.system.remove_picture(record.image_id)
        except DatabaseError:
            pass
        if record.op != "upsert":
            return
        entry = record.entry or {}
        try:
            picture = SymbolicPicture.from_dict(entry["picture"])
        except (KeyError, TypeError, ValueError) as error:
            raise StorageError(
                f"{self.path}: write-ahead log record {record.lsn} "
                f"({record.image_id!r}) has a malformed entry: {error}"
            ) from error
        self.system.add_picture(picture, record.image_id)

    def _reload_snapshot(self) -> int:
        """Rebuild from the shard snapshot and hot-swap it in; LSNs advanced.

        The compaction-outran-us path: the log alone cannot close the gap,
        but the snapshot's manifest LSN covers it.  The rebuilt engine is
        swapped in under the shared rwlock, then a fresh tailer resumes at
        the snapshot floor (re-applying any log tail the load already
        replayed is idempotent).
        """
        before = self.applied_lsn
        state = durable_wal_state(self.path)
        if state is None:
            raise StorageError(f"{self.path} is no longer a durable database")
        replacement = RetrievalSystem.from_file(
            self.path,
            policy=self.system.policy,
            execution=self.system.execution,
            durable=True,
        )
        self.system.hot_swap(replacement)
        self.applied_lsn = max(self.applied_lsn, state["snapshot_lsn"])
        self._tailer = WalTailer(self.path / WAL_NAME, from_lsn=self.applied_lsn)
        self.snapshot_reloads += 1
        return self.applied_lsn - before

    def _observe(self, state: Dict[str, int], advanced: int) -> int:
        """Update lag bookkeeping after a sync pass; passes ``advanced`` through."""
        self.primary_lsn = max(state["last_lsn"], self.applied_lsn)
        if self.applied_lsn >= self.primary_lsn:
            self._behind_since = None
        elif self._behind_since is None:
            self._behind_since = time.monotonic()
        return advanced


class ReplicaService(RetrievalService):
    """The replica's HTTP core: full read surface, write fence, promotion.

    Subclasses :class:`RetrievalService` so ``/search``, ``/batch``,
    ``/healthz`` and ``/stats`` are byte-identical to the primary's, and
    overrides every write path to answer 403 with the primary's address
    until :meth:`promote` attaches a durable store and lifts the fence.
    A background follower thread calls :meth:`ReplicaEngine.sync` every
    ``follow_interval`` seconds (under the mutation lock, so promotion and
    catch-up never interleave).
    """

    def __init__(
        self,
        replica: ReplicaEngine,
        *,
        workers: int = 4,
        backlog: int = 16,
        follow_interval: float = 0.25,
        primary_url: Optional[str] = None,
        retry_after: float = 1.0,
        latency_window: int = 2048,
        compact_threshold: int = 256,
    ) -> None:
        if follow_interval <= 0:
            raise ValueError("follow_interval must be positive")
        super().__init__(
            replica.system,
            workers=workers,
            backlog=backlog,
            database_path=replica.path,
            backend=None,
            retry_after=retry_after,
            latency_window=latency_window,
            durable=False,
            compact_threshold=compact_threshold,
        )
        self.replica = replica
        self.follow_interval = follow_interval
        self.primary_url = primary_url
        self._compact_threshold = compact_threshold
        self._sync_errors = 0
        self._follower: Optional[threading.Thread] = threading.Thread(
            target=self._follow_loop, name="repro-replica-follower", daemon=True
        )
        self._follower.start()

    # ------------------------------------------------------------------
    # Role
    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        """``"replica"`` until promotion, ``"primary"`` afterwards."""
        return "primary" if self.store is not None else "replica"

    def _reject_writes(self) -> None:
        """403 every write while still a replica, naming the primary."""
        if self.store is not None:
            return
        where = (
            f"the primary at {self.primary_url}"
            if self.primary_url
            else f"the primary serving {self.database_path}"
        )
        raise ApiError(403, f"read-only replica; write to {where}")

    # ------------------------------------------------------------------
    # Write fence (lifted by promotion)
    # ------------------------------------------------------------------
    def add_image(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /images``: 403 on a replica; durable insert after promotion."""
        self._reject_writes()
        return super().add_image(payload)

    def delete_image(self, image_id: str) -> Dict[str, Any]:
        """``DELETE /images/{id}``: 403 on a replica; durable after promotion."""
        self._reject_writes()
        return super().delete_image(image_id)

    def reload(self) -> Dict[str, Any]:
        """``POST /reload``: 403 on a replica (the follower already reloads)."""
        self._reject_writes()
        return super().reload()

    def compact(self) -> Dict[str, Any]:
        """``POST /compact``: 403 on a replica (compaction is the primary's)."""
        self._reject_writes()
        return super().compact()

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    def promote(self) -> Dict[str, Any]:
        """``POST /promote``: detach from the log and become a writable primary.

        Drains the remaining log tail (so no acknowledged write is left
        behind), detaches the follower, attaches a
        :class:`DurableShardedStore` to the directory and starts the
        background compactor -- from here the daemon honours the full
        durable-primary contract.  The caller must have fenced the old
        primary; the directory now has exactly one writer again.

        Returns:
            The new role, the drained record count, and the log position;
            409 when already promoted.
        """
        with self._admitted():
            with self._mutation_lock:
                if self.store is not None:
                    raise ApiError(409, "already promoted to primary")
                try:
                    drained = self.replica.drain()
                    self.replica.detach()
                    self.store = DurableShardedStore(
                        self.system._engine.database,
                        self.database_path,
                        compact_threshold=self._compact_threshold,
                    )
                except StorageError as error:
                    raise ApiError(500, f"promotion failed: {error}") from error
                self._compactor = threading.Thread(
                    target=self._compaction_loop, name="repro-compactor", daemon=True
                )
                self._compactor.start()
            return {
                "role": self.role,
                "drained_records": drained,
                "applied_lsn": self.replica.applied_lsn,
                "last_lsn": self.store.last_lsn,
                "images": len(self.system),
            }

    # ------------------------------------------------------------------
    # Observability (role + replication block on top of the base body)
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``: the base liveness body plus the current role."""
        body = super().healthz()
        body["role"] = self.role
        return body

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``: the base body plus the ``replication`` block."""
        body = super().stats()
        body["role"] = self.role
        body["replication"] = {
            **self.replica.replication_stats(),
            "follow_interval": self.follow_interval,
            "sync_errors": self._sync_errors,
            "primary_url": self.primary_url,
        }
        return body

    # ------------------------------------------------------------------
    # Follower lifecycle
    # ------------------------------------------------------------------
    def _follow_loop(self) -> None:
        """Background thread: tail the log every ``follow_interval`` seconds."""
        while not self._closed.wait(timeout=self.follow_interval):
            if self.store is not None or self.replica.detached:
                return
            try:
                with self._mutation_lock:
                    if self.store is None and not self.replica.detached:
                        self.replica.sync()
            except (StorageError, WalTruncatedError):
                # Transient (primary mid-swap, directory briefly unreadable):
                # count it and retry next interval.  Never kill the thread.
                self._sync_errors += 1

    def close(self) -> None:
        """Stop the follower (and, after promotion, the compactor/WAL)."""
        self._closed.set()
        if self._follower is not None:
            self._follower.join(timeout=5)
            self._follower = None
        super().close()


def create_replica_server(
    database_path: PathLike,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 4,
    backlog: int = 16,
    follow_interval: float = 0.25,
    primary_url: Optional[str] = None,
    compact_threshold: int = 256,
    execution: Optional[ExecutionOptions] = None,
) -> RetrievalServer:
    """Build a bound replica daemon over the durable directory.

    The ``repro replica`` entry point: warm-starts a
    :class:`ReplicaEngine`, wraps it in a :class:`ReplicaService` (follower
    thread included) and binds the standard HTTP server.  ``port=0`` binds
    an ephemeral port; ``primary_url`` is advertised in 403 rejections so
    misdirected writers know where to go.

    Returns:
        A bound :class:`RetrievalServer`; call ``serve_forever()`` or
        ``start_background()``.

    Raises:
        ValueError: if the target is not durable or a knob is out of range.
        StorageError: if the snapshot or log is unreadable.
        FileNotFoundError: if the directory does not exist.
        OSError: if the address cannot be bound.
    """
    replica = ReplicaEngine(database_path, execution=execution)
    service = ReplicaService(
        replica,
        workers=workers,
        backlog=backlog,
        follow_interval=follow_interval,
        primary_url=primary_url,
        compact_threshold=compact_threshold,
    )
    return RetrievalServer(service, host=host, port=port)
