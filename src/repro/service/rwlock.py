"""A write-preferring, reentrant readers-writer lock.

The retrieval service serves many concurrent ``/search`` requests against one
shared :class:`~repro.index.query.QueryEngine`.  Queries only read, so they
may run fully in parallel -- but a mutation (add/remove picture, object-level
edit) must see no reader mid-flight: it rewrites the database record, the
inverted index, the signature filter *and* invalidates the score cache, and a
query overlapping that window could rank against a torn view (new record, stale
postings).  :class:`ReadWriteLock` provides exactly the two grants the engine
needs:

* :meth:`read_locked` -- shared; any number of threads hold it together.
* :meth:`write_locked` -- exclusive; waits for active readers to drain and
  blocks new ones from entering (write preference), so a steady query stream
  cannot starve mutations.

Both grants are *reentrant per thread*: the engine's public entry points nest
(``execute_spec`` -> ``execute_traced``; ``run_batch`` -> ``candidate_ids``),
and write preference would otherwise deadlock a thread re-acquiring its own
read grant while a writer queues behind it.  Lock *upgrades* (write while
holding only a read grant) deadlock by construction and raise ``RuntimeError``
instead; a writer may take nested read grants (downgrade-style reads are safe).

The lock is deliberately dependency-free so lower layers can hold one without
importing the service package; :class:`~repro.index.query.QueryEngine` defaults
to a no-op stand-in and :meth:`repro.retrieval.system.RetrievalSystem.enable_concurrent_access`
installs the real lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class ReadWriteLock:
    """Write-preferring readers-writer lock with per-thread reentrancy."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        #: Thread ident -> number of read grants it currently holds.
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_holds = 0
        self._writers_waiting = 0
        # Counters for /stats and the stress suite (guarded by _condition).
        self._read_acquisitions = 0
        self._write_acquisitions = 0

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Take a shared grant; returns ``False`` only on timeout.

        Reentrant: a thread already holding a read or write grant is admitted
        immediately, even while a writer is queued (write preference applies
        only to threads arriving with no grant).
        """
        me = threading.get_ident()
        with self._condition:
            if self._writer == me or me in self._readers:
                self._readers[me] = self._readers.get(me, 0) + 1
                self._read_acquisitions += 1
                return True
            admitted = self._condition.wait_for(
                lambda: self._writer is None and self._writers_waiting == 0,
                timeout=timeout,
            )
            if not admitted:
                return False
            self._readers[me] = 1
            self._read_acquisitions += 1
            return True

    def release_read(self) -> None:
        """Drop one shared grant held by the calling thread.

        Raises:
            RuntimeError: if the calling thread holds no read grant.
        """
        me = threading.get_ident()
        with self._condition:
            holds = self._readers.get(me)
            if not holds:
                raise RuntimeError("release_read() without a matching acquire_read()")
            if holds == 1:
                del self._readers[me]
                self._condition.notify_all()
            else:
                self._readers[me] = holds - 1

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Take the exclusive grant; returns ``False`` only on timeout.

        Reentrant for a thread already writing.  Queued writers block new
        readers, so the grant arrives as soon as active readers drain.

        Raises:
            RuntimeError: on an upgrade attempt (the calling thread holds a
                read grant); upgrading deadlocks by construction, so it is
                rejected instead.
        """
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_holds += 1
                self._write_acquisitions += 1
                return True
            if me in self._readers:
                raise RuntimeError(
                    "cannot upgrade a read grant to a write grant "
                    "(release the read lock first)"
                )
            self._writers_waiting += 1
            try:
                acquired = self._condition.wait_for(
                    lambda: self._writer is None and not self._readers,
                    timeout=timeout,
                )
            finally:
                self._writers_waiting -= 1
            if not acquired:
                self._condition.notify_all()
                return False
            self._writer = me
            self._writer_holds = 1
            self._write_acquisitions += 1
            return True

    def release_write(self) -> None:
        """Drop one exclusive grant held by the calling thread.

        Raises:
            RuntimeError: if the calling thread is not the writer.
        """
        me = threading.get_ident()
        with self._condition:
            if self._writer != me:
                raise RuntimeError("release_write() by a thread that is not the writer")
            self._writer_holds -= 1
            if self._writer_holds == 0:
                self._writer = None
                self._condition.notify_all()

    # ------------------------------------------------------------------
    # Context managers (what the engine actually uses)
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` -- shared critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` -- exclusive critical section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_readers(self) -> int:
        """Number of threads currently holding a read grant."""
        with self._condition:
            return len(self._readers)

    @property
    def writer_active(self) -> bool:
        """Whether a thread currently holds the exclusive grant."""
        with self._condition:
            return self._writer is not None

    def statistics(self) -> Dict[str, int]:
        """Acquisition counters (reported by the service's ``/stats``)."""
        with self._condition:
            return {
                "read_acquisitions": self._read_acquisitions,
                "write_acquisitions": self._write_acquisitions,
                "active_readers": len(self._readers),
                "writers_waiting": self._writers_waiting,
            }
