"""Algorithm 1: ``Convert-2D-Be-String``.

The paper's Algorithm 1 takes, for each of the ``n`` icon objects, its
identifier and the four MBR boundary coordinates, plus the image extents
``X_max`` / ``Y_max``, and produces the two axis BE-strings.  The procedure is
sort-dominated: boundaries are sorted by ``(coordinate, identifier)`` per axis
and then emitted left to right, inserting the dummy object ``E``

* before the first boundary if it does not touch coordinate 0,
* between two consecutive boundaries whose coordinates differ, and
* after the last boundary if it does not touch the image extent.

Two entry points are provided: :func:`convert_2d_be_string`, a faithful port
of the algorithm operating on parallel coordinate arrays exactly as in the
paper, and :func:`encode_picture`, the idiomatic API working on
:class:`~repro.iconic.picture.SymbolicPicture`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.bestring import AxisBEString, BEString2D
from repro.core.errors import EncodingError
from repro.core.symbols import BoundaryKind, Symbol
from repro.iconic.picture import SymbolicPicture

#: One sortable boundary record: ``(coordinate, identifier, kind)``.  The sort
#: key matches the paper's "combine MBR coordinate and object identifier as a
#: key" with the begin/end kind as a final tiebreaker so a degenerate object
#: (zero extent) still begins before it ends.
BoundaryRecord = Tuple[float, str, BoundaryKind]


def _sort_key(record: BoundaryRecord) -> Tuple[float, str, int]:
    coordinate, identifier, kind = record
    return (coordinate, identifier, 0 if kind is BoundaryKind.BEGIN else 1)


def build_axis_string(
    records: Sequence[BoundaryRecord], extent: float, origin: float = 0.0
) -> AxisBEString:
    """Emit one axis BE-string from sorted-or-unsorted boundary records.

    This is the body of Algorithm 1 for a single axis (lines 21-32 / 34-45 of
    the paper): sort, then walk the boundary sequence inserting dummies at the
    image edges and between distinct coordinates.
    """
    if extent <= origin:
        raise EncodingError("the image extent must exceed the origin")
    ordered = sorted(records, key=_sort_key)
    for coordinate, identifier, _ in ordered:
        if coordinate < origin or coordinate > extent:
            raise EncodingError(
                f"boundary of object {identifier!r} at {coordinate!r} lies outside "
                f"[{origin!r}, {extent!r}]"
            )
    symbols: List[Symbol] = []
    if not ordered:
        return AxisBEString((Symbol.dummy(),))
    if ordered[0][0] != origin:
        symbols.append(Symbol.dummy())
    for index, (coordinate, identifier, kind) in enumerate(ordered):
        symbols.append(Symbol(identifier=identifier, kind=kind))
        if index + 1 < len(ordered):
            next_coordinate = ordered[index + 1][0]
            if coordinate != next_coordinate:
                symbols.append(Symbol.dummy())
        elif coordinate != extent:
            symbols.append(Symbol.dummy())
    return AxisBEString(tuple(symbols))


def convert_2d_be_string(
    n: int,
    identifiers: Sequence[str],
    x_begin: Sequence[float],
    x_end: Sequence[float],
    y_begin: Sequence[float],
    y_end: Sequence[float],
    x_max: float,
    y_max: float,
    name: str = "",
) -> BEString2D:
    """Faithful port of the paper's ``Convert-2D-Be-String`` signature.

    Parameters mirror the pseudo-code: ``n`` objects, the identifier array
    ``C`` and the four parallel boundary-coordinate arrays, plus the maximum
    coordinates of the image.  Returns the 2D BE-string ``(X_be, Y_be)``.
    """
    arrays = (identifiers, x_begin, x_end, y_begin, y_end)
    if any(len(array) != n for array in arrays):
        raise EncodingError(
            "identifier and coordinate arrays must all have exactly n entries"
        )
    if len(set(identifiers)) != n:
        raise EncodingError("object identifiers must be unique within an image")
    for index in range(n):
        if x_begin[index] > x_end[index] or y_begin[index] > y_end[index]:
            raise EncodingError(
                f"object {identifiers[index]!r} has begin boundaries beyond its "
                "end boundaries"
            )

    x_records: List[BoundaryRecord] = []
    y_records: List[BoundaryRecord] = []
    for index in range(n):
        identifier = identifiers[index]
        x_records.append((float(x_begin[index]), identifier, BoundaryKind.BEGIN))
        x_records.append((float(x_end[index]), identifier, BoundaryKind.END))
        y_records.append((float(y_begin[index]), identifier, BoundaryKind.BEGIN))
        y_records.append((float(y_end[index]), identifier, BoundaryKind.END))

    return BEString2D(
        x=build_axis_string(x_records, float(x_max)),
        y=build_axis_string(y_records, float(y_max)),
        name=name,
    )


def encode_picture(picture: SymbolicPicture) -> BEString2D:
    """Encode a :class:`~repro.iconic.picture.SymbolicPicture` as a 2D BE-string."""
    identifiers = [icon.identifier for icon in picture.icons]
    return convert_2d_be_string(
        n=len(picture.icons),
        identifiers=identifiers,
        x_begin=[icon.mbr.x_begin for icon in picture.icons],
        x_end=[icon.mbr.x_end for icon in picture.icons],
        y_begin=[icon.mbr.y_begin for icon in picture.icons],
        y_end=[icon.mbr.y_end for icon in picture.icons],
        x_max=picture.width,
        y_max=picture.height,
        name=picture.name,
    )


def storage_symbol_bounds(object_count: int) -> Tuple[int, int]:
    """The paper's per-axis storage bounds for ``n`` objects (Section 3.1).

    Worst case (all projections distinct, free space at both image edges):
    ``2n`` boundary symbols plus ``2n + 1`` dummies = ``4n + 1`` symbols.
    Best case (every begin boundary at the image origin and every end boundary
    at the image extent, so only one pair of adjacent boundaries differs):
    ``2n`` boundary symbols plus a single dummy = ``2n + 1`` symbols --
    exactly the bounds the paper quotes.
    """
    if object_count < 0:
        raise ValueError("object_count must be non-negative")
    if object_count == 0:
        return (1, 1)
    return (2 * object_count + 1, 4 * object_count + 1)
