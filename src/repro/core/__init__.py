"""The paper's primary contribution: the 2D BE-string spatial relation model.

Public surface:

* :mod:`~repro.core.symbols` -- boundary symbols and the dummy object ``E``.
* :mod:`~repro.core.bestring` -- per-axis BE-strings and the 2-D pair.
* :mod:`~repro.core.construct` -- Algorithm 1 (``Convert-2D-Be-String``) plus
  the idiomatic :func:`~repro.core.construct.encode_picture` entry point.
* :mod:`~repro.core.lcs` -- Algorithms 2 and 3 (modified LCS length and LCS
  string reconstruction).
* :mod:`~repro.core.similarity` -- the similarity evaluation process built on
  the modified LCS (Section 4).
* :mod:`~repro.core.transforms` -- retrieval of rotations and reflections by
  string reversal/swap only (Section 4 / conclusions).
* :mod:`~repro.core.editing` -- dynamic insert/delete of objects in a stored
  BE-string via binary search (Section 3.2).
* :mod:`~repro.core.reasoning` -- recovery of pairwise spatial relations from
  a BE-string, used to check the paper's key LCS soundness claim.
"""

from repro.core.bestring import AxisBEString, BEString2D
from repro.core.construct import convert_2d_be_string, encode_picture
from repro.core.editing import IndexedBEString
from repro.core.errors import BEStringError, EncodingError, SimilarityError
from repro.core.lcs import (
    be_lcs_length,
    be_lcs_string,
    be_lcs_table,
    print_2d_be_lcs,
)
from repro.core.reasoning import axis_relation, pairwise_relations_from_bestring
from repro.core.similarity import (
    AxisSimilarity,
    SimilarityPolicy,
    SimilarityResult,
    similarity,
    similarity_between_pictures,
)
from repro.core.symbols import BoundaryKind, Symbol
from repro.core.transforms import (
    Transformation,
    all_transformations,
    reflect_x,
    reflect_y,
    rotate90,
    rotate180,
    rotate270,
    transform,
)

__all__ = [
    "AxisBEString",
    "BEString2D",
    "convert_2d_be_string",
    "encode_picture",
    "IndexedBEString",
    "BEStringError",
    "EncodingError",
    "SimilarityError",
    "be_lcs_length",
    "be_lcs_string",
    "be_lcs_table",
    "print_2d_be_lcs",
    "axis_relation",
    "pairwise_relations_from_bestring",
    "AxisSimilarity",
    "SimilarityPolicy",
    "SimilarityResult",
    "similarity",
    "similarity_between_pictures",
    "BoundaryKind",
    "Symbol",
    "Transformation",
    "all_transformations",
    "reflect_x",
    "reflect_y",
    "rotate90",
    "rotate180",
    "rotate270",
    "transform",
]
