"""Retrieval of linear transformations by string manipulation only.

Section 4 / the conclusions of the paper claim that retrieving the 90, 180 and
270 degree clockwise rotations and the x-/y-axis reflections of an image
represented by a 2D BE-string "only need to reverse the string then apply the
similarity retrieval", with no conversion of spatial operators.

Mirroring one axis of an image maps coordinate ``c`` to ``extent - c``; at the
string level that is exactly
:meth:`~repro.core.bestring.AxisBEString.reversed_swapped` (reverse the symbol
order and swap begin/end boundaries).  Rotations additionally exchange the two
axis strings.  The geometric transforms on
:class:`~repro.iconic.picture.SymbolicPicture` are the ground truth these
string-level transforms are validated against in the test suite.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Tuple

from repro.core.bestring import BEString2D


class Transformation(Enum):
    """The linear transformations the paper retrieves by string reversal."""

    IDENTITY = "identity"
    ROTATE_90 = "rotate90"
    ROTATE_180 = "rotate180"
    ROTATE_270 = "rotate270"
    REFLECT_X = "reflect_x"
    REFLECT_Y = "reflect_y"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def reflect_y(bestring: BEString2D) -> BEString2D:
    """Reflection across the y-axis (horizontal mirror).

    The x-projection order reverses with begin/end swapped; the y-string is
    untouched.
    """
    return BEString2D(bestring.x.reversed_swapped(), bestring.y, bestring.name)


def reflect_x(bestring: BEString2D) -> BEString2D:
    """Reflection across the x-axis (vertical mirror)."""
    return BEString2D(bestring.x, bestring.y.reversed_swapped(), bestring.name)


def rotate90(bestring: BEString2D) -> BEString2D:
    """90 degree clockwise rotation.

    A point ``(x, y)`` maps to ``(H - y, x)``: the new x-string is the
    reversed-and-swapped old y-string and the new y-string is the old
    x-string unchanged.
    """
    return BEString2D(bestring.y.reversed_swapped(), bestring.x, bestring.name)


def rotate180(bestring: BEString2D) -> BEString2D:
    """180 degree rotation: both axes reversed and swapped."""
    return BEString2D(
        bestring.x.reversed_swapped(), bestring.y.reversed_swapped(), bestring.name
    )


def rotate270(bestring: BEString2D) -> BEString2D:
    """270 degree clockwise rotation (90 counter-clockwise)."""
    return BEString2D(bestring.y, bestring.x.reversed_swapped(), bestring.name)


#: Enum definition order, used to canonicalise transformation sets.
_CANONICAL_ORDER: Dict[Transformation, int] = {
    transformation: position for position, transformation in enumerate(Transformation)
}


def canonical_transformations(
    transformations: Iterable[Transformation],
) -> Tuple[Transformation, ...]:
    """Deduplicate a transformation set and order it by enum definition.

    Evaluating the same transformation *set* must behave identically no
    matter how the caller ordered it: tie-breaks resolve to the earliest
    transformation (``IDENTITY`` first, so exact matches win), and the score
    cache sees one key per set instead of one per ordering.  An empty input
    is returned unchanged so spec validation can reject it with its own
    message.

    Returns:
        The canonical, duplicate-free transformation tuple.
    """
    return tuple(
        sorted(set(transformations), key=_CANONICAL_ORDER.__getitem__)
    )


_TRANSFORM_FUNCTIONS = {
    Transformation.IDENTITY: lambda bestring: bestring,
    Transformation.ROTATE_90: rotate90,
    Transformation.ROTATE_180: rotate180,
    Transformation.ROTATE_270: rotate270,
    Transformation.REFLECT_X: reflect_x,
    Transformation.REFLECT_Y: reflect_y,
}

#: The transformation that undoes each transformation.
INVERSE_TRANSFORMATION = {
    Transformation.IDENTITY: Transformation.IDENTITY,
    Transformation.ROTATE_90: Transformation.ROTATE_270,
    Transformation.ROTATE_180: Transformation.ROTATE_180,
    Transformation.ROTATE_270: Transformation.ROTATE_90,
    Transformation.REFLECT_X: Transformation.REFLECT_X,
    Transformation.REFLECT_Y: Transformation.REFLECT_Y,
}


def transform(bestring: BEString2D, transformation: Transformation) -> BEString2D:
    """Apply a named transformation to a 2D BE-string."""
    return _TRANSFORM_FUNCTIONS[transformation](bestring)


def all_transformations(
    bestring: BEString2D,
    include: Iterable[Transformation] = tuple(Transformation),
) -> Dict[Transformation, BEString2D]:
    """All requested transformed variants of a 2D BE-string.

    Used by the transformation-invariant retrieval mode: the query is expanded
    into its variants and the best-scoring variant is reported.
    """
    return {transformation: transform(bestring, transformation) for transformation in include}


def compose(first: Transformation, second: Transformation) -> List[Transformation]:
    """Transformations equivalent to applying ``first`` then ``second``.

    The six paper transformations do not form a closed group (the full
    dihedral group of the square has eight elements; the two diagonal
    reflections are not retrievable by axis reversal alone), so composition
    may fall outside the set.  The function returns the list of equivalent
    in-set transformations -- empty when the composition is one of the two
    diagonal reflections.
    """
    rotations = {
        Transformation.IDENTITY: 0,
        Transformation.ROTATE_90: 1,
        Transformation.ROTATE_180: 2,
        Transformation.ROTATE_270: 3,
    }
    if first in rotations and second in rotations:
        total = (rotations[first] + rotations[second]) % 4
        for name, quarter_turns in rotations.items():
            if quarter_turns == total:
                return [name]
    reflections = (Transformation.REFLECT_X, Transformation.REFLECT_Y)
    if first in reflections and second in reflections:
        if first == second:
            return [Transformation.IDENTITY]
        return [Transformation.ROTATE_180]
    pair = {first, second}
    if pair == {Transformation.IDENTITY, first} or pair == {Transformation.IDENTITY, second}:
        other = second if first is Transformation.IDENTITY else first
        return [other]
    if Transformation.ROTATE_180 in pair and pair & set(reflections):
        other = (pair - {Transformation.ROTATE_180}).pop()
        flipped = (
            Transformation.REFLECT_Y
            if other is Transformation.REFLECT_X
            else Transformation.REFLECT_X
        )
        return [flipped]
    return []
