"""Algorithms 2 and 3: the modified longest common subsequence.

The paper modifies the textbook LCS dynamic program (CLRS) in two ways:

1. **Dummy suppression** -- the LCS is never allowed to contain two dummy
   objects in a row, because "only one dummy object sufficiently represents
   the relative spatial relationship between two boundary symbols".  The DP
   table encodes, in the *sign* of each cell, whether the LCS ending at that
   cell finishes with a dummy: a dummy may only extend an LCS whose last
   symbol is not a dummy (cell value ``>= 0``).
2. **No path matrix** -- left/up moves are evaluated before the diagonal
   move, so the path can be re-derived from the length table alone
   (Algorithm 3), halving the book-keeping storage.

Both the faithful recursive printer (:func:`print_2d_be_lcs`) and an
iterative reconstruction (:func:`be_lcs_string`) are provided; the latter is
what the retrieval layer uses since database strings can be long.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.bestring import AxisBEString
from repro.core.symbols import Symbol

#: The DP table type: ``(m + 1) x (n + 1)`` signed LCS lengths.
LCSTable = List[List[int]]


def be_lcs_table(query: AxisBEString, database: AxisBEString) -> LCSTable:
    """Algorithm 2 (``2D-Be-LCS-Length``): build the signed LCS length table.

    ``abs(table[i][j])`` is the length of the longest dummy-suppressed common
    subsequence of ``query[:i]`` and ``database[:j]``; the value is negative
    exactly when that subsequence ends with the dummy object.
    """
    q: Sequence[Symbol] = query.symbols
    d: Sequence[Symbol] = database.symbols
    m = len(q)
    n = len(d)
    table: LCSTable = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(1, m + 1):
        row = table[i]
        above = table[i - 1]
        q_symbol = q[i - 1]
        q_is_dummy = q_symbol.is_dummy
        for j in range(1, n + 1):
            up = above[j]
            left = row[j - 1]
            # Prefer the left/up predecessor with the larger absolute length;
            # ties go to "up" exactly as in the paper (line 16-19).
            cell = up if abs(up) >= abs(left) else left
            if q_symbol == d[j - 1] and (not q_is_dummy or above[j - 1] >= 0):
                diagonal = abs(above[j - 1]) + 1
                if diagonal > abs(cell):
                    cell = -diagonal if q_is_dummy else diagonal
            row[j] = cell
    return table


def be_lcs_length(query: AxisBEString, database: AxisBEString) -> int:
    """Length of the modified LCS of two axis BE-strings.

    Runs the Algorithm 2 recurrence with two rolling rows instead of the full
    ``(m + 1) x (n + 1)`` table -- the length only ever looks one row back, so
    length-only scoring needs ``O(n)`` memory, not ``O(m * n)``.  Use
    :func:`be_lcs_table` when the traceback is required.
    """
    q: Sequence[Symbol] = query.symbols
    d: Sequence[Symbol] = database.symbols
    m = len(q)
    n = len(d)
    if m == 0 or n == 0:
        return 0
    above = [0] * (n + 1)
    row = [0] * (n + 1)
    for i in range(1, m + 1):
        q_symbol = q[i - 1]
        q_is_dummy = q_symbol.is_dummy
        row[0] = 0
        for j in range(1, n + 1):
            up = above[j]
            left = row[j - 1]
            cell = up if abs(up) >= abs(left) else left
            if q_symbol == d[j - 1] and (not q_is_dummy or above[j - 1] >= 0):
                diagonal = abs(above[j - 1]) + 1
                if diagonal > abs(cell):
                    cell = -diagonal if q_is_dummy else diagonal
            row[j] = cell
        above, row = row, above
    return abs(above[n])


def print_2d_be_lcs(
    query: AxisBEString,
    table: LCSTable,
    i: int,
    j: int,
    output: List[Symbol],
) -> None:
    """Algorithm 3 (``Print-2D-Be-LCS``): recursive LCS reconstruction.

    Appends the LCS symbols to ``output`` in forward order.  This is the
    faithful recursive formulation; prefer :func:`be_lcs_string` for long
    strings (it is iterative and therefore immune to recursion limits).
    """
    if i == 0 or j == 0:
        return
    current = abs(table[i][j])
    if current == abs(table[i - 1][j]):
        print_2d_be_lcs(query, table, i - 1, j, output)
    elif current == abs(table[i][j - 1]):
        print_2d_be_lcs(query, table, i, j - 1, output)
    else:
        print_2d_be_lcs(query, table, i - 1, j - 1, output)
        output.append(query.symbols[i - 1])


def _traceback(query: AxisBEString, table: LCSTable, i: int, j: int) -> List[Symbol]:
    """Iterative equivalent of :func:`print_2d_be_lcs`."""
    collected: List[Symbol] = []
    while i > 0 and j > 0:
        current = abs(table[i][j])
        if current == abs(table[i - 1][j]):
            i -= 1
        elif current == abs(table[i][j - 1]):
            j -= 1
        else:
            collected.append(query.symbols[i - 1])
            i -= 1
            j -= 1
    collected.reverse()
    return collected


def be_lcs_string(query: AxisBEString, database: AxisBEString) -> AxisBEString:
    """The modified LCS of two axis BE-strings, as an axis string."""
    table = be_lcs_table(query, database)
    symbols = _traceback(query, table, len(query), len(database))
    return AxisBEString(tuple(symbols))


def be_lcs_length_and_string(
    query: AxisBEString, database: AxisBEString
) -> tuple[int, AxisBEString]:
    """Compute the LCS length and string with a single table construction."""
    table = be_lcs_table(query, database)
    length = abs(table[len(query)][len(database)])
    symbols = _traceback(query, table, len(query), len(database))
    return length, AxisBEString(tuple(symbols))
