"""Spatial reasoning over 2D BE-strings.

The central soundness argument of the paper's similarity evaluation is:

    "The LCS string implies that, in query image and database image, all the
    spatial relationships of every two objects in LCS string are the same."

That argument works because a BE-string preserves the *ordinal* positions of
every begin/end boundary: two boundary symbols separated by at least one dummy
object project to distinct coordinates, while adjacent boundary symbols
project to the same coordinate.  This module recovers those ordinal positions
and re-derives the Allen relations (and full 2-D relations) between any two
objects directly from the strings -- which is exactly the information the 2-D
string family stores via spatial operators.

The property-based tests use these functions to verify both that reasoning
from a BE-string agrees with the geometric ground truth, and that the paper's
LCS soundness claim holds on the fully matched objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.bestring import AxisBEString, BEString2D
from repro.core.errors import BEStringError
from repro.geometry.allen import AllenRelation, allen_relation
from repro.geometry.interval import Interval
from repro.geometry.relations import SpatialRelation


def boundary_ranks(axis: AxisBEString) -> Dict[str, Interval]:
    """Ordinal interval of every object on one axis.

    Walking the string left to right, a counter increases every time a dummy
    object is crossed; boundary symbols between the same pair of dummies share
    the counter value, i.e. project to the same coordinate.  Each object's
    ordinal interval is ``[rank(begin), rank(end)]``.
    """
    rank = 0
    begins: Dict[str, int] = {}
    ends: Dict[str, int] = {}
    for symbol in axis.symbols:
        if symbol.is_dummy:
            rank += 1
            continue
        assert symbol.identifier is not None
        if symbol.is_begin:
            if symbol.identifier in begins:
                raise BEStringError(
                    f"object {symbol.identifier!r} has two begin boundaries"
                )
            begins[symbol.identifier] = rank
        else:
            if symbol.identifier in ends:
                raise BEStringError(
                    f"object {symbol.identifier!r} has two end boundaries"
                )
            ends[symbol.identifier] = rank
    if set(begins) != set(ends):
        unbalanced = set(begins) ^ set(ends)
        raise BEStringError(f"objects with unbalanced boundaries: {sorted(unbalanced)}")
    return {
        identifier: Interval(float(begins[identifier]), float(ends[identifier]))
        for identifier in begins
    }


def axis_relation(axis: AxisBEString, first: str, second: str) -> AllenRelation:
    """Allen relation between two objects' projections, inferred from the string."""
    ranks = boundary_ranks(axis)
    try:
        a = ranks[first]
        b = ranks[second]
    except KeyError as missing:
        raise BEStringError(f"object {missing.args[0]!r} is not on this axis") from None
    return allen_relation(a, b)


def pairwise_relations_from_bestring(
    bestring: BEString2D, identifiers: Optional[Iterable[str]] = None
) -> Dict[Tuple[str, str], SpatialRelation]:
    """Full 2-D spatial relation for every unordered pair of objects.

    ``identifiers`` restricts the computation to a subset (e.g. the fully
    matched objects of an LCS); by default all objects of the string are used.
    Pairs are keyed by their identifiers in sorted order.
    """
    x_ranks = boundary_ranks(bestring.x)
    y_ranks = boundary_ranks(bestring.y)
    if identifiers is None:
        selected: List[str] = sorted(set(x_ranks) & set(y_ranks))
    else:
        selected = sorted(set(identifiers))
        missing = [name for name in selected if name not in x_ranks or name not in y_ranks]
        if missing:
            raise BEStringError(f"objects not present in the BE-string: {missing}")
    relations: Dict[Tuple[str, str], SpatialRelation] = {}
    for i, first in enumerate(selected):
        for second in selected[i + 1 :]:
            relations[(first, second)] = SpatialRelation(
                x=allen_relation(x_ranks[first], x_ranks[second]),
                y=allen_relation(y_ranks[first], y_ranks[second]),
            )
    return relations


def relations_agree(
    query: BEString2D, database: BEString2D, identifiers: Iterable[str]
) -> bool:
    """True when every pairwise relation among ``identifiers`` is identical.

    This is the machine-checkable form of the paper's LCS soundness claim: for
    the objects fully matched by the modified LCS, the relation of every pair
    must be the same in the query image and the database image.
    """
    names = sorted(set(identifiers))
    query_relations = pairwise_relations_from_bestring(query, names)
    database_relations = pairwise_relations_from_bestring(database, names)
    return query_relations == database_relations


def relations_compatible(
    query: BEString2D, database: BEString2D, identifiers: Iterable[str]
) -> bool:
    """True when no boundary ordering is *inverted* between the two images.

    This is the provable form of the paper's LCS soundness claim.  The LCS
    preserves the relative order of every matched boundary symbol, so for any
    two fully matched objects a boundary that lies strictly before another in
    the query can never lie strictly after it in the database image -- but a
    coincidence (equal projection) in one image may correspond to a strict
    ordering in the other, because the dummy object separating the two
    boundaries need not itself be part of the LCS.  :func:`relations_agree`
    checks the stronger exact-relation property, which holds whenever the
    matched objects have identical geometry (full matches and sub-scenes).
    """
    names = sorted(set(identifiers))
    query_x = boundary_ranks(query.x)
    query_y = boundary_ranks(query.y)
    database_x = boundary_ranks(database.x)
    database_y = boundary_ranks(database.y)
    missing = [
        name
        for name in names
        if name not in query_x or name not in query_y
        or name not in database_x or name not in database_y
    ]
    if missing:
        raise BEStringError(f"objects not present in both BE-strings: {missing}")

    def sign(value: float) -> int:
        if value > 0:
            return 1
        if value < 0:
            return -1
        return 0

    def inverted(query_ranks, database_ranks, first: str, second: str) -> bool:
        query_values = (query_ranks[first].begin, query_ranks[first].end)
        database_values = (database_ranks[first].begin, database_ranks[first].end)
        other_query = (query_ranks[second].begin, query_ranks[second].end)
        other_database = (database_ranks[second].begin, database_ranks[second].end)
        for i in range(2):
            for j in range(2):
                query_sign = sign(query_values[i] - other_query[j])
                database_sign = sign(database_values[i] - other_database[j])
                if query_sign * database_sign < 0:
                    return True
        return False

    for index, first in enumerate(names):
        for second in names[index + 1 :]:
            if inverted(query_x, database_x, first, second):
                return False
            if inverted(query_y, database_y, first, second):
                return False
    return True


def disagreeing_pairs(
    query: BEString2D, database: BEString2D, identifiers: Iterable[str]
) -> List[Tuple[str, str]]:
    """The pairs among ``identifiers`` whose relations differ (diagnostics)."""
    names = sorted(set(identifiers))
    query_relations = pairwise_relations_from_bestring(query, names)
    database_relations = pairwise_relations_from_bestring(database, names)
    return [
        pair
        for pair in query_relations
        if query_relations[pair] != database_relations[pair]
    ]
