"""Dynamic maintenance of stored BE-strings (Section 3.2, closing paragraph).

The paper notes that because the 2D BE-string is *ordered* data, saving it
together with the MBR coordinates lets a database insert a new object by
binary search on the ``(coordinate, identifier)`` key -- deciding locally
whether a dummy object must be added around the new boundaries -- and delete
an object by removing its two boundary symbols and eliminating any redundant
dummy.

:class:`IndexedBEString` is that stored form: per axis it keeps the boundary
records sorted by the paper's key, so

* ``insert`` locates each new boundary with :mod:`bisect` (O(log n) search,
  O(n) memmove -- no re-sort), and
* ``remove`` deletes the two records per axis,

and the BE-string itself is re-emitted from the already-sorted records in a
single O(n) pass with no sorting, versus the O(n log n) full re-encoding of
``Convert-2D-Be-String``.  Benchmark E7 measures the difference.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.bestring import AxisBEString, BEString2D
from repro.core.construct import build_axis_string
from repro.core.errors import EncodingError
from repro.core.symbols import BoundaryKind
from repro.geometry.rectangle import Rectangle
from repro.iconic.icon import IconObject
from repro.iconic.picture import SymbolicPicture

#: Sort key form of one boundary record: (coordinate, identifier, kind order).
_Key = Tuple[float, str, int]


def _key(coordinate: float, identifier: str, kind: BoundaryKind) -> _Key:
    return (coordinate, identifier, 0 if kind is BoundaryKind.BEGIN else 1)


@dataclass
class IndexedBEString:
    """A 2D BE-string stored with its MBR coordinates for dynamic updates."""

    width: float
    height: float
    name: str = ""
    _x_keys: List[_Key] = field(default_factory=list)
    _y_keys: List[_Key] = field(default_factory=list)
    _mbrs: Dict[str, Rectangle] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise EncodingError("the image frame must have positive extent")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_picture(cls, picture: SymbolicPicture) -> "IndexedBEString":
        """Index every icon of a symbolic picture."""
        index = cls(width=picture.width, height=picture.height, name=picture.name)
        for icon in picture.icons:
            index.insert(icon.identifier, icon.mbr)
        return index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._mbrs)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._mbrs

    @property
    def identifiers(self) -> List[str]:
        """Identifiers of all indexed objects, sorted."""
        return sorted(self._mbrs)

    def mbr(self, identifier: str) -> Rectangle:
        """MBR stored for ``identifier``."""
        try:
            return self._mbrs[identifier]
        except KeyError:
            raise KeyError(f"no object {identifier!r} in the indexed BE-string") from None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, identifier: str, mbr: Rectangle) -> None:
        """Insert a new object by binary search on the boundary keys."""
        if identifier in self._mbrs:
            raise EncodingError(f"object {identifier!r} is already indexed")
        frame = Rectangle(0.0, 0.0, self.width, self.height)
        if not frame.contains(mbr):
            raise EncodingError(
                f"object {identifier!r} MBR {mbr} exceeds the "
                f"{self.width:g}x{self.height:g} frame"
            )
        insort(self._x_keys, _key(mbr.x_begin, identifier, BoundaryKind.BEGIN))
        insort(self._x_keys, _key(mbr.x_end, identifier, BoundaryKind.END))
        insort(self._y_keys, _key(mbr.y_begin, identifier, BoundaryKind.BEGIN))
        insort(self._y_keys, _key(mbr.y_end, identifier, BoundaryKind.END))
        self._mbrs[identifier] = mbr

    def insert_icon(self, icon: IconObject) -> None:
        """Insert an :class:`~repro.iconic.icon.IconObject`."""
        self.insert(icon.identifier, icon.mbr)

    def remove(self, identifier: str) -> Rectangle:
        """Remove an object; returns the MBR it had."""
        mbr = self.mbr(identifier)
        for keys, records in (
            (self._x_keys, ((mbr.x_begin, BoundaryKind.BEGIN), (mbr.x_end, BoundaryKind.END))),
            (self._y_keys, ((mbr.y_begin, BoundaryKind.BEGIN), (mbr.y_end, BoundaryKind.END))),
        ):
            for coordinate, kind in records:
                position = bisect_left(keys, _key(coordinate, identifier, kind))
                if position >= len(keys) or keys[position] != _key(coordinate, identifier, kind):
                    raise EncodingError(
                        f"boundary record of {identifier!r} not found; index corrupted"
                    )
                keys.pop(position)
        del self._mbrs[identifier]
        return mbr

    def move(self, identifier: str, mbr: Rectangle) -> None:
        """Relocate an object (remove + insert with the new MBR)."""
        self.remove(identifier)
        self.insert(identifier, mbr)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _axis_string(self, keys: List[_Key], extent: float) -> AxisBEString:
        records = [
            (coordinate, identifier, BoundaryKind.BEGIN if kind == 0 else BoundaryKind.END)
            for coordinate, identifier, kind in keys
        ]
        # The records are already sorted by construction; build_axis_string's
        # sort is then a no-op O(n) pass for Timsort, keeping emission linear.
        return build_axis_string(records, extent)

    def to_bestring(self) -> BEString2D:
        """Emit the current 2D BE-string from the sorted boundary records."""
        return BEString2D(
            x=self._axis_string(self._x_keys, self.width),
            y=self._axis_string(self._y_keys, self.height),
            name=self.name,
        )

    def to_picture(self) -> SymbolicPicture:
        """Reconstruct the symbolic picture currently indexed."""
        icons = []
        for identifier, mbr in self._mbrs.items():
            label, _, instance_text = identifier.partition("#")
            instance = int(instance_text) if instance_text else 0
            icons.append(IconObject(label=label, mbr=mbr, instance=instance))
        return SymbolicPicture(
            width=self.width, height=self.height, icons=tuple(icons), name=self.name
        )
