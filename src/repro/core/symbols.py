"""Symbols of the 2D BE-string alphabet.

A 2D BE-string is a sequence over exactly two kinds of symbol:

* **boundary symbols** -- the begin (``b``) or end (``e``) boundary of one
  icon object's MBR projection, written ``A.b`` / ``A.e`` in text form, and
* the **dummy object** ``E`` -- "not a real object in the original image; it
  can be specified as any size of space" (Section 3.1).  A dummy between two
  boundary symbols states that their projections are *distinct*; its absence
  states they coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.errors import EncodingError

#: Text form of the dummy object, as in the paper.
DUMMY_TEXT = "E"


class BoundaryKind(Enum):
    """Whether a boundary symbol is the begin or the end of an MBR projection."""

    BEGIN = "b"
    END = "e"

    @property
    def opposite(self) -> "BoundaryKind":
        """The other boundary kind (begin <-> end)."""
        return BoundaryKind.END if self is BoundaryKind.BEGIN else BoundaryKind.BEGIN

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Symbol:
    """One symbol of a 2D BE-string.

    ``identifier`` and ``kind`` are both ``None`` for the dummy object and both
    set for a boundary symbol.  Symbols are immutable and hashable so they can
    be compared directly inside the LCS dynamic program and used as index keys.
    """

    identifier: Optional[str] = None
    kind: Optional[BoundaryKind] = None

    def __post_init__(self) -> None:
        if (self.identifier is None) != (self.kind is None):
            raise EncodingError(
                "a symbol is either a dummy (no identifier, no kind) or a "
                "boundary symbol (both identifier and kind)"
            )
        if self.identifier is not None and not self.identifier:
            raise EncodingError("boundary symbols need a non-empty identifier")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def dummy(cls) -> "Symbol":
        """The dummy object ``E``."""
        return _DUMMY

    @classmethod
    def begin(cls, identifier: str) -> "Symbol":
        """The begin boundary of ``identifier``."""
        return cls(identifier=identifier, kind=BoundaryKind.BEGIN)

    @classmethod
    def end(cls, identifier: str) -> "Symbol":
        """The end boundary of ``identifier``."""
        return cls(identifier=identifier, kind=BoundaryKind.END)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_dummy(self) -> bool:
        """True for the dummy object ``E``."""
        return self.identifier is None

    @property
    def is_boundary(self) -> bool:
        """True for a begin/end boundary symbol."""
        return self.identifier is not None

    @property
    def is_begin(self) -> bool:
        """True for a begin boundary symbol."""
        return self.kind is BoundaryKind.BEGIN

    @property
    def is_end(self) -> bool:
        """True for an end boundary symbol."""
        return self.kind is BoundaryKind.END

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def swapped(self) -> "Symbol":
        """Begin becomes end and vice versa; the dummy is unchanged.

        This is the symbol-level operation behind the paper's "reverse the
        string" treatment of rotations and reflections: mirroring an axis maps
        each begin boundary onto the corresponding end boundary.
        """
        if self.is_dummy:
            return self
        assert self.kind is not None
        return Symbol(identifier=self.identifier, kind=self.kind.opposite)

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """``E`` for the dummy, ``<identifier>.<b|e>`` for boundaries."""
        if self.is_dummy:
            return DUMMY_TEXT
        assert self.kind is not None
        return f"{self.identifier}.{self.kind.value}"

    @classmethod
    def from_text(cls, token: str) -> "Symbol":
        """Parse a single symbol token produced by :meth:`to_text`."""
        if token == DUMMY_TEXT:
            return cls.dummy()
        if "." not in token:
            raise EncodingError(f"malformed boundary symbol token {token!r}")
        identifier, _, kind_text = token.rpartition(".")
        try:
            kind = BoundaryKind(kind_text)
        except ValueError:
            raise EncodingError(f"unknown boundary kind in token {token!r}") from None
        return cls(identifier=identifier, kind=kind)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


_DUMMY = Symbol()
