"""BE-strings: the per-axis strings and the 2-D pair.

Section 3.1 of the paper defines the 2D BE-string of an image as the pair

    (u, v) = (d0 x1 d1 x2 d2 ... d(n-1) xn dn,  d0 y1 d1 y2 d2 ... d(n-1) yn dn)

where each ``x_i`` / ``y_i`` is a begin or end boundary symbol of a real icon
object and each ``d_i`` is either the dummy object ``E`` (the two neighbouring
boundary projections are distinct, or there is free space at the image edge)
or the empty string (the projections coincide).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.core.errors import EncodingError
from repro.core.symbols import BoundaryKind, Symbol


@dataclass(frozen=True)
class AxisBEString:
    """The BE-string of one axis: an immutable sequence of symbols."""

    symbols: Tuple[Symbol, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "symbols", tuple(self.symbols))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_symbols(cls, symbols: Iterable[Symbol]) -> "AxisBEString":
        """Build from any iterable of :class:`~repro.core.symbols.Symbol`."""
        return cls(tuple(symbols))

    @classmethod
    def from_text(cls, text: str) -> "AxisBEString":
        """Parse the whitespace-separated token form produced by :meth:`to_text`."""
        tokens = text.split()
        return cls(tuple(Symbol.from_text(token) for token in tokens))

    # ------------------------------------------------------------------
    # Sequence behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self.symbols)

    def __getitem__(self, index: int) -> Symbol:
        return self.symbols[index]

    # ------------------------------------------------------------------
    # Counts and queries
    # ------------------------------------------------------------------
    @property
    def boundary_symbols(self) -> Tuple[Symbol, ...]:
        """Only the begin/end boundary symbols, in order."""
        return tuple(symbol for symbol in self.symbols if symbol.is_boundary)

    @property
    def boundary_count(self) -> int:
        """Number of boundary symbols (``2 * number of objects`` when valid)."""
        return sum(1 for symbol in self.symbols if symbol.is_boundary)

    @property
    def dummy_count(self) -> int:
        """Number of dummy objects ``E`` in the string."""
        return sum(1 for symbol in self.symbols if symbol.is_dummy)

    @property
    def object_identifiers(self) -> Set[str]:
        """Identifiers of all objects mentioned in the string."""
        return {symbol.identifier for symbol in self.symbols if symbol.identifier is not None}

    def count_objects(self) -> int:
        """Number of distinct objects represented."""
        return len(self.object_identifiers)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants of a well-formed axis BE-string.

        * no two consecutive dummy objects (one dummy already means
          "distinct"; a second carries no information),
        * every object contributes exactly one begin and one end boundary,
        * the begin boundary of an object precedes its end boundary.

        Raises :class:`~repro.core.errors.EncodingError` on violation.
        """
        previous_was_dummy = False
        begin_seen: Dict[str, int] = {}
        end_seen: Dict[str, int] = {}
        for position, symbol in enumerate(self.symbols):
            if symbol.is_dummy:
                if previous_was_dummy:
                    raise EncodingError(
                        f"two consecutive dummy objects at position {position}"
                    )
                previous_was_dummy = True
                continue
            previous_was_dummy = False
            assert symbol.identifier is not None
            if symbol.is_begin:
                if symbol.identifier in begin_seen:
                    raise EncodingError(
                        f"object {symbol.identifier!r} has more than one begin boundary"
                    )
                begin_seen[symbol.identifier] = position
            else:
                if symbol.identifier in end_seen:
                    raise EncodingError(
                        f"object {symbol.identifier!r} has more than one end boundary"
                    )
                end_seen[symbol.identifier] = position
        if set(begin_seen) != set(end_seen):
            unbalanced = set(begin_seen) ^ set(end_seen)
            raise EncodingError(
                f"objects with unbalanced boundaries: {sorted(unbalanced)}"
            )
        for identifier, begin_position in begin_seen.items():
            if begin_position > end_seen[identifier]:
                raise EncodingError(
                    f"object {identifier!r} ends before it begins on this axis"
                )

    @property
    def is_valid(self) -> bool:
        """True when :meth:`validate` passes."""
        try:
            self.validate()
        except EncodingError:
            return False
        return True

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def canonicalized(self) -> "AxisBEString":
        """Normalise the order of boundary symbols that share a projection.

        Boundary symbols between two dummy objects (or string ends) project to
        the same coordinate, so their relative order is a representation
        choice; ``Convert-2D-Be-String`` orders them by ``(identifier, begin
        before end)``.  Re-applying that order makes strings produced by other
        means (reversal, splicing) byte-for-byte comparable with freshly
        encoded ones.
        """
        canonical: List[Symbol] = []
        run: List[Symbol] = []

        def flush() -> None:
            run.sort(key=lambda symbol: (symbol.identifier or "", symbol.kind is BoundaryKind.END))
            canonical.extend(run)
            run.clear()

        for symbol in self.symbols:
            if symbol.is_dummy:
                flush()
                canonical.append(symbol)
            else:
                run.append(symbol)
        flush()
        return AxisBEString(tuple(canonical))

    def reversed_swapped(self) -> "AxisBEString":
        """Reverse the symbol order and swap begin/end boundaries.

        Mirroring an axis of the image maps coordinate ``c`` to
        ``extent - c``: the projection order reverses and every begin boundary
        becomes the corresponding end boundary.  This single operation is all
        the paper needs to retrieve reflections and rotations (Section 4).
        The result is canonicalised so that it is symbol-for-symbol identical
        to encoding the mirrored picture directly.
        """
        reversed_symbols = tuple(symbol.swapped() for symbol in reversed(self.symbols))
        return AxisBEString(reversed_symbols).canonicalized()

    def without_dummies(self) -> "AxisBEString":
        """The subsequence of boundary symbols only."""
        return AxisBEString(self.boundary_symbols)

    def restricted_to(self, identifiers: Iterable[str]) -> "AxisBEString":
        """Project the string onto a subset of objects.

        Boundary symbols of other objects are dropped; runs of dummies that
        become adjacent are collapsed to a single dummy, and leading/trailing
        dummies are preserved (free space remains free space).
        """
        wanted = set(identifiers)
        kept: List[Symbol] = []
        for symbol in self.symbols:
            if symbol.is_boundary and symbol.identifier not in wanted:
                continue
            if symbol.is_dummy and kept and kept[-1].is_dummy:
                continue
            kept.append(symbol)
        return AxisBEString(tuple(kept))

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Whitespace-separated token form, e.g. ``"E A.b E A.e C.b E"``."""
        return " ".join(symbol.to_text() for symbol in self.symbols)

    def to_compact_text(self) -> str:
        """Compact form close to the paper's notation, e.g. ``"EAbEAeCbE"``.

        Only unambiguous for single-character identifiers; intended for
        display and the worked Figure 1 example.
        """
        parts: List[str] = []
        for symbol in self.symbols:
            if symbol.is_dummy:
                parts.append("E")
            else:
                assert symbol.kind is not None
                parts.append(f"{symbol.identifier}{symbol.kind.value}")
        return "".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


@dataclass(frozen=True)
class BEString2D:
    """The pair of axis BE-strings representing one symbolic image."""

    x: AxisBEString
    y: AxisBEString
    name: str = ""

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, x_text: str, y_text: str, name: str = "") -> "BEString2D":
        """Parse the two axis strings from their token text form."""
        return cls(AxisBEString.from_text(x_text), AxisBEString.from_text(y_text), name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def object_identifiers(self) -> Set[str]:
        """Identifiers present on both axes."""
        return self.x.object_identifiers | self.y.object_identifiers

    def count_objects(self) -> int:
        """Number of distinct objects represented."""
        return len(self.object_identifiers)

    @property
    def total_symbols(self) -> int:
        """Total storage in symbols across both axes."""
        return len(self.x) + len(self.y)

    @property
    def symbol_multiset(self) -> Counter:
        """Multiset of boundary symbols on both axes (used by the index filter)."""
        counter: Counter = Counter()
        for axis in (self.x, self.y):
            for symbol in axis.symbols:
                if symbol.is_boundary:
                    counter[symbol] += 1
        return counter

    def validate(self) -> None:
        """Validate both axes and their mutual consistency."""
        self.x.validate()
        self.y.validate()
        if self.x.object_identifiers != self.y.object_identifiers:
            missing = self.x.object_identifiers ^ self.y.object_identifiers
            raise EncodingError(
                f"objects present on only one axis: {sorted(missing)}"
            )

    @property
    def is_valid(self) -> bool:
        """True when :meth:`validate` passes."""
        try:
            self.validate()
        except EncodingError:
            return False
        return True

    # ------------------------------------------------------------------
    # Derived strings
    # ------------------------------------------------------------------
    def restricted_to(self, identifiers: Iterable[str]) -> "BEString2D":
        """Project both axes onto a subset of objects."""
        wanted = list(identifiers)
        return BEString2D(
            self.x.restricted_to(wanted), self.y.restricted_to(wanted), self.name
        )

    def renamed(self, name: str) -> "BEString2D":
        """Return the same strings under a different name."""
        return BEString2D(self.x, self.y, name)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation used by the storage layer."""
        return {"name": self.name, "x": self.x.to_text(), "y": self.y.to_text()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BEString2D":
        """Inverse of :meth:`to_dict`."""
        return cls.from_text(payload["x"], payload["y"], payload.get("name", ""))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x.to_compact_text()}, {self.y.to_compact_text()})"
