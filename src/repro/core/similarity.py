"""Similarity evaluation built on the modified LCS (Section 4).

The paper's evaluation process computes, per axis, the modified LCS between
the query BE-string and a database BE-string and uses it to score the image --
"not only those images which all of the icons and their spatial relationships
fully accord with the query image can be sifted out, but also those images
which partial of icons and/or spatial relationships are similar".

The paper leaves the exact score normalisation open (its demonstration system
simply ranks by the evaluation).  The reproduction therefore exposes the raw
per-axis quantities (:class:`AxisSimilarity`) and a configurable
:class:`SimilarityPolicy` describing how they are normalised and combined into
a single score; the default policy (query-relative normalisation, mean over
the two axes, counting all matched symbols) reproduces the ranking behaviour
described in Sections 4-5 and is what the retrieval layer uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.bestring import AxisBEString, BEString2D
from repro.core.construct import encode_picture
from repro.core.errors import SimilarityError
from repro.core.lcs import be_lcs_length, be_lcs_length_and_string
from repro.core.symbols import BoundaryKind
from repro.core.transforms import Transformation, transform
from repro.iconic.picture import SymbolicPicture

#: Signature of a length-only LCS kernel usable by :func:`similarity_score`.
LengthFunction = Callable[[AxisBEString, AxisBEString], int]


class Normalization(Enum):
    """How a raw per-axis LCS count is turned into a [0, 1] value."""

    #: Divide by the query string length: "how much of the query is matched".
    QUERY = "query"
    #: Divide by the database string length.
    DATABASE = "database"
    #: Dice coefficient: ``2 * lcs / (len(query) + len(database))``.
    DICE = "dice"
    #: No normalisation; the raw count is used directly.
    NONE = "none"


class Combination(Enum):
    """How the two per-axis values are combined into one score."""

    MEAN = "mean"
    MIN = "min"
    PRODUCT = "product"


@dataclass(frozen=True)
class SimilarityPolicy:
    """Configuration of the similarity evaluation.

    ``count_boundaries_only`` scores by the number of *boundary* symbols in
    the LCS (dummies excluded); the default counts every LCS symbol, matching
    the raw output of Algorithm 2.
    """

    normalization: Normalization = Normalization.QUERY
    combination: Combination = Combination.MEAN
    count_boundaries_only: bool = False

    def describe(self) -> str:
        """Short human-readable description used in benchmark reports."""
        counted = "boundaries" if self.count_boundaries_only else "symbols"
        return (
            f"{self.normalization.value}-normalised {counted}, "
            f"{self.combination.value} over axes"
        )


#: The default policy used throughout the retrieval layer.
DEFAULT_POLICY = SimilarityPolicy()


def normalized_value(
    raw: float, query_side: float, database_side: float, normalization: Normalization
) -> float:
    """Normalise one raw per-axis count according to ``normalization``.

    Shared by :meth:`AxisSimilarity.normalized` and the shortlist's score
    upper bound (:mod:`repro.index.shortlist`), so the bound can never drift
    from the scoring arithmetic it must dominate.
    """
    if normalization is Normalization.NONE:
        return raw
    if normalization is Normalization.QUERY:
        return raw / query_side if query_side else 0.0
    if normalization is Normalization.DATABASE:
        return raw / database_side if database_side else 0.0
    total = query_side + database_side
    return 2.0 * raw / total if total else 0.0


def combined_value(x_value: float, y_value: float, combination: Combination) -> float:
    """Combine the two per-axis values according to ``combination``.

    Shared by :meth:`SimilarityResult.score` and the shortlist's score upper
    bound, for the same no-drift reason as :func:`normalized_value`.
    """
    if combination is Combination.MEAN:
        return (x_value + y_value) / 2.0
    if combination is Combination.MIN:
        return min(x_value, y_value)
    return x_value * y_value


@dataclass(frozen=True)
class AxisSimilarity:
    """The outcome of the modified LCS on one axis."""

    lcs_length: int
    lcs: AxisBEString
    query_length: int
    database_length: int
    query_boundary_count: int
    database_boundary_count: int

    @property
    def matched_boundaries(self) -> int:
        """Number of boundary symbols in the LCS."""
        return self.lcs.boundary_count

    @property
    def matched_dummies(self) -> int:
        """Number of dummy objects in the LCS."""
        return self.lcs.dummy_count

    @property
    def fully_matched_objects(self) -> FrozenSet[str]:
        """Objects whose begin *and* end boundary both appear in the LCS."""
        begins: Set[str] = set()
        ends: Set[str] = set()
        for symbol in self.lcs.symbols:
            if symbol.is_boundary:
                assert symbol.identifier is not None
                if symbol.kind is BoundaryKind.BEGIN:
                    begins.add(symbol.identifier)
                else:
                    ends.add(symbol.identifier)
        return frozenset(begins & ends)

    def raw_count(self, count_boundaries_only: bool) -> int:
        """The raw quantity the policy scores on for this axis."""
        return self.matched_boundaries if count_boundaries_only else self.lcs_length

    def normalized(self, policy: SimilarityPolicy) -> float:
        """Normalise the raw count according to ``policy``."""
        raw = float(self.raw_count(policy.count_boundaries_only))
        if policy.count_boundaries_only:
            query_denominator = float(self.query_boundary_count)
            database_denominator = float(self.database_boundary_count)
        else:
            query_denominator = float(self.query_length)
            database_denominator = float(self.database_length)
        return normalized_value(
            raw, query_denominator, database_denominator, policy.normalization
        )


@dataclass(frozen=True)
class SimilarityResult:
    """The outcome of a full 2-D similarity evaluation."""

    query: BEString2D
    database: BEString2D
    x: AxisSimilarity
    y: AxisSimilarity
    policy: SimilarityPolicy
    #: When the evaluation was run under a transformation-invariant mode,
    #: which transformation of the query achieved this result.
    transformation: Transformation = Transformation.IDENTITY

    @property
    def score(self) -> float:
        """The combined, policy-normalised similarity score."""
        return combined_value(
            self.x.normalized(self.policy),
            self.y.normalized(self.policy),
            self.policy.combination,
        )

    @property
    def common_objects(self) -> FrozenSet[str]:
        """Objects fully matched (begin and end) on *both* axes.

        This is the BE-string analogue of the object set the 2-D string
        family's maximum-complete-subgraph similarity reports: for every pair
        of these objects, all spatial relationships agree between query and
        database image (validated by ``repro.core.reasoning``).
        """
        return self.x.fully_matched_objects & self.y.fully_matched_objects

    @property
    def object_match_ratio(self) -> float:
        """Fraction of query objects that are fully matched on both axes."""
        query_objects = self.query.count_objects()
        if query_objects == 0:
            return 0.0
        return len(self.common_objects) / query_objects

    @property
    def is_full_match(self) -> bool:
        """True when every query object is fully matched on both axes."""
        return self.common_objects == frozenset(self.query.object_identifiers) and bool(
            self.query.object_identifiers
        )

    def describe(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        name = self.database.name or "<database image>"
        return (
            f"{name}: score={self.score:.3f} "
            f"lcs_x={self.x.lcs_length} lcs_y={self.y.lcs_length} "
            f"objects={sorted(self.common_objects)} via {self.transformation.value}"
        )


def _axis_similarity(query: AxisBEString, database: AxisBEString) -> AxisSimilarity:
    length, lcs = be_lcs_length_and_string(query, database)
    return AxisSimilarity(
        lcs_length=length,
        lcs=lcs,
        query_length=len(query),
        database_length=len(database),
        query_boundary_count=query.boundary_count,
        database_boundary_count=database.boundary_count,
    )


def similarity(
    query: BEString2D,
    database: BEString2D,
    policy: SimilarityPolicy = DEFAULT_POLICY,
    transformation: Transformation = Transformation.IDENTITY,
) -> SimilarityResult:
    """Evaluate the similarity of a query BE-string against a database BE-string.

    ``transformation`` is applied to the *query* before matching; pass values
    other than ``IDENTITY`` to look for rotated/reflected occurrences, or use
    :func:`invariant_similarity` to search over a set of transformations.
    """
    if len(query.x) == 0 or len(query.y) == 0:
        raise SimilarityError("the query BE-string must not be empty")
    transformed = transform(query, transformation)
    return SimilarityResult(
        query=query,
        database=database,
        x=_axis_similarity(transformed.x, database.x),
        y=_axis_similarity(transformed.y, database.y),
        policy=policy,
        transformation=transformation,
    )


def similarity_score(
    query: BEString2D,
    database: BEString2D,
    policy: SimilarityPolicy = DEFAULT_POLICY,
    transformation: Transformation = Transformation.IDENTITY,
    length_function: LengthFunction = be_lcs_length,
) -> float:
    """Score only -- the exact float :attr:`SimilarityResult.score` would yield.

    Uses a length-only LCS kernel (no traceback, no table), so it supports
    pluggable implementations such as
    :func:`repro.core.lcskernel.be_lcs_length_bitparallel`.  The arithmetic is
    the same :func:`normalized_value` / :func:`combined_value` chain the full
    evaluation runs, guaranteeing bit-identical floats.

    Only valid for policies with ``count_boundaries_only=False`` -- counting
    boundary symbols requires the LCS string itself.
    """
    if policy.count_boundaries_only:
        raise SimilarityError(
            "similarity_score is length-only; "
            "count_boundaries_only policies need the full evaluation"
        )
    if len(query.x) == 0 or len(query.y) == 0:
        raise SimilarityError("the query BE-string must not be empty")
    transformed = transform(query, transformation)
    x_value = normalized_value(
        float(length_function(transformed.x, database.x)),
        float(len(transformed.x)),
        float(len(database.x)),
        policy.normalization,
    )
    y_value = normalized_value(
        float(length_function(transformed.y, database.y)),
        float(len(transformed.y)),
        float(len(database.y)),
        policy.normalization,
    )
    return combined_value(x_value, y_value, policy.combination)


def invariant_similarity_score(
    query: BEString2D,
    database: BEString2D,
    policy: SimilarityPolicy = DEFAULT_POLICY,
    transformations: Iterable[Transformation] = tuple(Transformation),
    length_function: LengthFunction = be_lcs_length,
) -> Tuple[float, Transformation]:
    """Best length-only score over query transformations, with its winner.

    Mirrors :func:`invariant_similarity` exactly: strict ``>`` keeps the
    earliest transformation on ties, so the winning ``(score, transformation)``
    pair matches the full evaluation's result symbol-for-symbol.
    """
    best: Optional[float] = None
    best_transformation: Optional[Transformation] = None
    for transformation in transformations:
        score = similarity_score(query, database, policy, transformation, length_function)
        if best is None or score > best:
            best = score
            best_transformation = transformation
    if best is None or best_transformation is None:
        raise SimilarityError("at least one transformation must be supplied")
    return best, best_transformation


def similarity_between_pictures(
    query: SymbolicPicture,
    database: SymbolicPicture,
    policy: SimilarityPolicy = DEFAULT_POLICY,
) -> SimilarityResult:
    """Convenience wrapper: encode two pictures and evaluate their similarity."""
    return similarity(encode_picture(query), encode_picture(database), policy)


def invariant_similarity(
    query: BEString2D,
    database: BEString2D,
    policy: SimilarityPolicy = DEFAULT_POLICY,
    transformations: Iterable[Transformation] = tuple(Transformation),
) -> SimilarityResult:
    """Best similarity over a set of query transformations.

    Reproduces the paper's rotation/reflection retrieval: each variant of the
    query is obtained purely by string reversal/swap and scored with the same
    LCS evaluation; the best-scoring variant is returned (ties keep the
    earlier transformation in ``transformations`` order, with ``IDENTITY``
    first by default so exact matches win ties).
    """
    best: Optional[SimilarityResult] = None
    for transformation in transformations:
        candidate = similarity(query, database, policy, transformation)
        if best is None or candidate.score > best.score:
            best = candidate
    if best is None:
        raise SimilarityError("at least one transformation must be supplied")
    return best
