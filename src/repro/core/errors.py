"""Exception hierarchy of the 2D BE-string core."""

from __future__ import annotations


class BEStringError(ValueError):
    """Base class for all 2D BE-string model errors."""


class EncodingError(BEStringError):
    """Raised when a picture cannot be encoded or a string fails validation."""


class SimilarityError(BEStringError):
    """Raised when a similarity evaluation is requested on invalid inputs."""
