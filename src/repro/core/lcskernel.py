"""Bit-parallel kernel for the modified (dummy-suppressed) LCS length.

The reference dynamic program in :mod:`repro.core.lcs` walks an ``m x n``
table one Python-level cell at a time.  This module computes the *length* of
the same modified LCS with the classic bit-vector LCS recurrence (Crochemore
et al. 2001 / Hyyrö 2004) over Python's arbitrary-width integers: one row of
the DP table becomes one machine-word-packed integer, and the whole inner
loop collapses into a constant number of integer operations per query symbol.

Plain bit-parallel LCS
----------------------

Encode row ``i`` of the length table as a bit vector ``V`` where bit ``j`` is
``1`` exactly when the row does **not** increment at column ``j + 1``
(``L[i][j+1] == L[i][j]``).  Row 0 is all ones.  With ``M`` the match mask of
the current query symbol against the database string, the next row is::

    U = V & M
    V' = (V + U) | (V - U)

and the LCS length is the number of zero bits in the final ``V``.  The
addition's carry chain is what propagates an increment through a run of
non-incrementing columns — the bit-level equivalent of the DP's
``max(left, up, diagonal + 1)``.

Encoding the dummy-suppression rule
-----------------------------------

The paper's modification (Algorithm 2) stores the sign of each cell: a cell
is negative exactly when every optimal common subsequence ending there
finishes with the dummy object, and a dummy match may only extend a cell
whose upper-left neighbour is non-negative.  The kernel carries that sign
plane as a second bit vector ``S`` (bit ``j`` set when ``table[i][j+1] < 0``)
and updates it per row from three column classes derivable from ``V`` and
``V'`` alone:

* ``up`` wins (``L[i][j] == L[i-1][j]``, ties included) — inherit the sign
  from the previous row;
* ``left`` wins strictly — copy the sign of the cell to the left (a
  carry-fill propagates signs through whole runs at once);
* the diagonal wins strictly — the sign is simply "was this query symbol a
  dummy".

Which class a column falls into is decided by the vertical balance
``L[i][j] - L[i-1][j]`` (0 or 1), itself recovered bit-parallel from the two
rows' increment vectors with one more carry-fill.  A dummy row then masks its
match vector with ``~(S << 1)`` — forbidding exactly the diagonal moves the
reference DP forbids — so the kernel reproduces Algorithm 2's lengths
bit-for-bit, tie-breaking rules included (``tests/core/test_lcskernel.py``
fuzzes this equivalence on random scenes and adversarial dummy runs).

The kernel is length-only: traceback (``be_lcs_string`` and the explain
paths) stays on the reference implementation.  See ``docs/kernels.md``.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bestring import AxisBEString
from repro.core.symbols import Symbol

__all__ = ["be_lcs_length_bitparallel"]


def _match_masks(database: AxisBEString) -> Dict[Symbol, int]:
    """Bit mask of each symbol's positions in the database string.

    Bit ``j`` of ``masks[symbol]`` is set when ``database.symbols[j] ==
    symbol``.  Boundary symbols occur at most once per valid axis string, so
    almost every mask is a single bit; the dummy's mask carries roughly half
    the positions.
    """
    masks: Dict[Symbol, int] = {}
    for position, symbol in enumerate(database.symbols):
        masks[symbol] = masks.get(symbol, 0) | (1 << position)
    return masks


def be_lcs_length_bitparallel(query: AxisBEString, database: AxisBEString) -> int:
    """Length of the modified LCS, identical to :func:`repro.core.lcs.be_lcs_length`.

    Runs the bit-parallel recurrence described in the module docstring:
    ``O(len(query))`` big-integer operations on ``len(database)``-bit values
    instead of the reference DP's ``O(m * n)`` Python-level loop.
    """
    d_symbols = database.symbols
    q_symbols = query.symbols
    n = len(d_symbols)
    if n == 0 or not q_symbols:
        return 0
    mask = (1 << n) - 1
    masks = _match_masks(database)
    # When either side has no dummy the sign plane can never block a match,
    # and the kernel degenerates to the plain bit-parallel LCS.
    dummy_mask = next((bits for symbol, bits in masks.items() if symbol.is_dummy), 0)
    track_signs = dummy_mask != 0 and any(symbol.is_dummy for symbol in q_symbols)
    V = mask  # bit j: no increment at column j+1 (row 0 is all zeros)
    S = 0  # bit j: table[i][j+1] < 0 (the optimal LCS there ends with a dummy)
    for symbol in q_symbols:
        M = masks.get(symbol, 0)
        is_dummy = symbol.is_dummy
        if is_dummy and S:
            # Dummy suppression: a dummy diagonal at column j+1 needs a
            # non-negative upper-left cell, i.e. sign bit j-1+1 clear.
            M &= ~(S << 1)
        if M == 0:
            # Absent symbol (or fully suppressed dummy row): the row — and
            # therefore every sign — is unchanged.
            continue
        U = V & M
        V_new = ((V + U) | (V - U)) & mask
        if track_signs:
            A = V_new ^ mask  # increment columns of the new row
            B = V ^ mask  # increment columns of the previous row
            # Vertical balance L[i][j] - L[i-1][j]: flips to 1 at A&~B
            # columns, to 0 at B&~A columns, and holds through neutral runs
            # (carry-fill from the nearest transition to the left).
            up_transition = A & ~B & mask
            neutral = ~(A ^ B) & mask
            balance = up_transition | (
                (neutral ^ (neutral + (up_transition << 1))) & neutral
            )
            diagonal_won = A & balance
            left_won = balance & ~A
            # "Up" columns (balance 0, ties to up exactly as in the paper)
            # inherit the previous row's sign; diagonal columns take the
            # current symbol's dummy-ness; "left" runs copy from their left
            # neighbour via one more carry-fill.
            signs = (~balance & mask) & S
            if is_dummy:
                signs |= diagonal_won
            S = signs | ((left_won ^ (left_won + (signs << 1))) & left_won)
        V = V_new
    return n - bin(V).count("1")
