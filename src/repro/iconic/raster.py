"""Raster substrate: label grids, segmentation and MBR extraction.

The paper's pipeline starts after icon recognition; to make the examples run
end-to-end from "pixels" the reproduction includes a tiny raster layer built
on numpy only:

* render a :class:`~repro.iconic.picture.SymbolicPicture` to an integer label
  grid (each icon painted with a distinct positive id), and
* segment a label grid back into icons via connected components, recovering
  each component's MBR.

This replaces the paper's (unavailable) image collection and recognition
front-end with a synthetic equivalent that exercises the same code path:
pixels -> icons + MBRs -> 2D BE-string.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.rectangle import Rectangle
from repro.iconic.icon import IconObject
from repro.iconic.picture import SymbolicPicture


@dataclass
class SegmentedRegion:
    """One connected component extracted from a label grid."""

    value: int
    pixel_count: int
    mbr: Rectangle


class LabeledRaster:
    """An integer label grid with value 0 meaning background.

    The grid uses image conventions internally (row 0 at the top) but all MBRs
    exposed to callers use the paper's Cartesian convention (y grows upward),
    so a raster round-trip of a symbolic picture preserves its BE-string.
    """

    def __init__(self, grid: np.ndarray) -> None:
        array = np.asarray(grid)
        if array.ndim != 2:
            raise ValueError("a labeled raster must be a 2-D array")
        if array.size == 0:
            raise ValueError("a labeled raster must not be empty")
        if not np.issubdtype(array.dtype, np.integer):
            raise ValueError("a labeled raster must hold integer labels")
        if (array < 0).any():
            raise ValueError("labels must be non-negative (0 is background)")
        self._grid = array.astype(np.int64, copy=True)

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    @property
    def grid(self) -> np.ndarray:
        """A copy of the underlying label grid."""
        return self._grid.copy()

    @property
    def height(self) -> int:
        return int(self._grid.shape[0])

    @property
    def width(self) -> int:
        return int(self._grid.shape[1])

    @property
    def values(self) -> List[int]:
        """Distinct non-background values present, ascending."""
        present = np.unique(self._grid)
        return [int(v) for v in present if v != 0]

    def coverage(self) -> float:
        """Fraction of pixels that are non-background."""
        return float(np.count_nonzero(self._grid)) / float(self._grid.size)

    # ------------------------------------------------------------------
    # Rendering from a symbolic picture
    # ------------------------------------------------------------------
    @classmethod
    def render(cls, picture: SymbolicPicture) -> Tuple["LabeledRaster", Dict[int, str]]:
        """Paint each icon's MBR with a distinct positive value.

        Returns the raster and the mapping ``value -> icon identifier``.
        Later icons paint over earlier ones when MBRs overlap, so exact MBR
        recovery is only guaranteed for non-overlapping scenes (the synthetic
        generators produce those when a faithful round trip is required).
        """
        width = int(round(picture.width))
        height = int(round(picture.height))
        grid = np.zeros((height, width), dtype=np.int64)
        value_to_identifier: Dict[int, str] = {}
        for value, icon in enumerate(picture.icons, start=1):
            x0 = int(round(icon.mbr.x_begin))
            x1 = int(round(icon.mbr.x_end))
            y0 = int(round(icon.mbr.y_begin))
            y1 = int(round(icon.mbr.y_end))
            # Cartesian y -> image row: row 0 is the top of the frame.
            row0 = height - y1
            row1 = height - y0
            grid[row0:row1, x0:x1] = value
            value_to_identifier[value] = icon.identifier
        return cls(grid), value_to_identifier

    # ------------------------------------------------------------------
    # Segmentation
    # ------------------------------------------------------------------
    def connected_components(self, connectivity: int = 4) -> List[SegmentedRegion]:
        """Extract connected components of equal non-background value.

        ``connectivity`` is 4 or 8.  Components are returned in order of their
        smallest value, then discovery order, and each carries its MBR in
        Cartesian coordinates (pixel centres expanded to pixel extents, i.e. a
        single pixel at column c / bottom row r has MBR ``[c, c+1] x [r, r+1]``).
        """
        if connectivity not in (4, 8):
            raise ValueError("connectivity must be 4 or 8")
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if connectivity == 8:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]

        visited = np.zeros_like(self._grid, dtype=bool)
        regions: List[SegmentedRegion] = []
        height, width = self._grid.shape
        for row in range(height):
            for col in range(width):
                value = int(self._grid[row, col])
                if value == 0 or visited[row, col]:
                    continue
                queue = deque([(row, col)])
                visited[row, col] = True
                min_row = max_row = row
                min_col = max_col = col
                pixels = 0
                while queue:
                    r, c = queue.popleft()
                    pixels += 1
                    min_row = min(min_row, r)
                    max_row = max(max_row, r)
                    min_col = min(min_col, c)
                    max_col = max(max_col, c)
                    for dr, dc in offsets:
                        nr, nc = r + dr, c + dc
                        if 0 <= nr < height and 0 <= nc < width:
                            if not visited[nr, nc] and int(self._grid[nr, nc]) == value:
                                visited[nr, nc] = True
                                queue.append((nr, nc))
                mbr = Rectangle(
                    float(min_col),
                    float(height - (max_row + 1)),
                    float(max_col + 1),
                    float(height - min_row),
                )
                regions.append(SegmentedRegion(value=value, pixel_count=pixels, mbr=mbr))
        regions.sort(key=lambda region: (region.value, region.mbr.as_tuple()))
        return regions

    def to_picture(
        self,
        value_labels: Optional[Dict[int, str]] = None,
        connectivity: int = 4,
        name: str = "",
    ) -> SymbolicPicture:
        """Segment the raster and build a symbolic picture from the regions.

        ``value_labels`` maps grid values to icon labels; unmapped values get
        the label ``"object<value>"``.  Multiple components of the same value
        become separate instances of the same class.
        """
        regions = self.connected_components(connectivity=connectivity)
        counts: Dict[str, int] = {}
        icons: List[IconObject] = []
        for region in regions:
            if value_labels and region.value in value_labels:
                label = value_labels[region.value]
            else:
                label = f"object{region.value}"
            instance = counts.get(label, 0)
            counts[label] = instance + 1
            icons.append(IconObject(label=label, mbr=region.mbr, instance=instance))
        return SymbolicPicture(
            width=float(self.width),
            height=float(self.height),
            icons=tuple(icons),
            name=name,
        )


def segment_picture_roundtrip(picture: SymbolicPicture) -> SymbolicPicture:
    """Render a picture to pixels and segment it back.

    Convenience used by tests and examples to demonstrate the full
    pixels-to-strings pipeline; identifiers are preserved via the render map.
    """
    raster, value_map = LabeledRaster.render(picture)
    labels = {value: identifier.split("#")[0] for value, identifier in value_map.items()}
    return raster.to_picture(value_labels=labels, name=picture.name)
