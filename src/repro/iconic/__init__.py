"""Iconic (symbolic) image substrate.

The paper assumes that "we have abstracted all objects and their MBR
coordinates from that image" before encoding.  This subpackage supplies that
abstraction layer:

* :class:`~repro.iconic.vocabulary.IconVocabulary` -- the closed set of icon
  classes (labels) a database works with.
* :class:`~repro.iconic.icon.IconObject` -- one recognised icon: a label plus
  its MBR, optionally disambiguated by an instance index.
* :class:`~repro.iconic.picture.SymbolicPicture` -- the symbolic image: frame
  size plus a collection of icons, with geometric transforms and pairwise
  relation queries.
* :class:`~repro.iconic.raster.LabeledRaster` -- a numpy label grid with
  connected-component extraction, so examples can go from "pixels" to a
  symbolic picture without any external imaging dependency.
* :mod:`~repro.iconic.ascii_art` -- terminal rendering of symbolic pictures
  (the reproduction's stand-in for the paper's visual demonstration system).
"""

from repro.iconic.icon import IconObject
from repro.iconic.picture import SymbolicPicture
from repro.iconic.raster import LabeledRaster
from repro.iconic.vocabulary import IconVocabulary

__all__ = ["IconObject", "SymbolicPicture", "LabeledRaster", "IconVocabulary"]
