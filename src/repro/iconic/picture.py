"""Symbolic pictures: the frame plus the icons the paper's algorithms consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.geometry.rectangle import Rectangle
from repro.geometry.relations import SpatialRelation, spatial_relation
from repro.iconic.icon import IconObject


class PictureError(ValueError):
    """Raised when a symbolic picture is constructed inconsistently."""


@dataclass(frozen=True)
class SymbolicPicture:
    """An image abstracted to its icon objects and their MBRs.

    ``width`` and ``height`` are the maximum coordinates ``X_max`` / ``Y_max``
    of the paper's Algorithm 1: they determine whether a leading/trailing
    dummy object is inserted when the leftmost/rightmost (bottom-/top-most)
    boundary does not touch the image edge.

    The picture is immutable; editing operations return new pictures.  Icons
    are stored in a canonical order (label, instance) so two pictures with the
    same content always compare equal.
    """

    width: float
    height: float
    icons: Tuple[IconObject, ...] = field(default_factory=tuple)
    name: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise PictureError("picture frame must have positive width and height")
        canonical = tuple(sorted(self.icons, key=lambda icon: (icon.label, icon.instance)))
        object.__setattr__(self, "icons", canonical)
        frame = self.frame
        seen = set()
        for icon in canonical:
            if icon.identifier in seen:
                raise PictureError(
                    f"duplicate icon identifier {icon.identifier!r}; use distinct "
                    "instance indices for repeated labels"
                )
            seen.add(icon.identifier)
            if not frame.contains(icon.mbr):
                raise PictureError(
                    f"icon {icon.identifier!r} MBR {icon.mbr} exceeds the "
                    f"{self.width:g}x{self.height:g} frame"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        width: float,
        height: float,
        objects: Iterable[Tuple[str, Rectangle]],
        name: str = "",
    ) -> "SymbolicPicture":
        """Build a picture from ``(label, mbr)`` pairs.

        Repeated labels are automatically given increasing instance indices in
        the order supplied, mirroring how an icon recogniser would number
        multiple detections of the same class.
        """
        counts: Dict[str, int] = {}
        icons: List[IconObject] = []
        for label, mbr in objects:
            instance = counts.get(label, 0)
            counts[label] = instance + 1
            icons.append(IconObject(label=label, mbr=mbr, instance=instance))
        return cls(width=width, height=height, icons=tuple(icons), name=name)

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    @property
    def frame(self) -> Rectangle:
        """The image frame ``[0, width] x [0, height]``."""
        return Rectangle(0.0, 0.0, self.width, self.height)

    def __len__(self) -> int:
        return len(self.icons)

    def __iter__(self) -> Iterator[IconObject]:
        return iter(self.icons)

    @property
    def labels(self) -> List[str]:
        """Labels of all icons (with repetitions), in canonical order."""
        return [icon.label for icon in self.icons]

    @property
    def identifiers(self) -> List[str]:
        """Unique identifiers of all icons, in canonical order."""
        return [icon.identifier for icon in self.icons]

    def icon(self, identifier: str) -> IconObject:
        """Look up an icon by its identifier (``label`` or ``label#k``)."""
        for icon in self.icons:
            if icon.identifier == identifier:
                return icon
        raise KeyError(f"no icon with identifier {identifier!r}")

    def has_icon(self, identifier: str) -> bool:
        """True when an icon with the given identifier exists."""
        return any(icon.identifier == identifier for icon in self.icons)

    def icons_with_label(self, label: str) -> List[IconObject]:
        """All icons of one class, in instance order."""
        return sorted(
            (icon for icon in self.icons if icon.label == label),
            key=lambda icon: icon.instance,
        )

    # ------------------------------------------------------------------
    # Editing (returns new pictures)
    # ------------------------------------------------------------------
    def add_icon(self, label: str, mbr: Rectangle) -> "SymbolicPicture":
        """Return a new picture with an extra icon of class ``label``."""
        existing = self.icons_with_label(label)
        instance = existing[-1].instance + 1 if existing else 0
        new_icon = IconObject(label=label, mbr=mbr, instance=instance)
        return SymbolicPicture(
            width=self.width,
            height=self.height,
            icons=self.icons + (new_icon,),
            name=self.name,
        )

    def remove_icon(self, identifier: str) -> "SymbolicPicture":
        """Return a new picture without the icon ``identifier``."""
        if not self.has_icon(identifier):
            raise KeyError(f"no icon with identifier {identifier!r}")
        remaining = tuple(icon for icon in self.icons if icon.identifier != identifier)
        return SymbolicPicture(
            width=self.width, height=self.height, icons=remaining, name=self.name
        )

    def subset(self, identifiers: Sequence[str]) -> "SymbolicPicture":
        """Return a picture containing only the named icons.

        Used to build *partial* query pictures (Section 4 of the paper: the
        query targets may be uncertain / incomplete).
        """
        wanted = set(identifiers)
        unknown = wanted - set(self.identifiers)
        if unknown:
            raise KeyError(f"unknown icon identifiers: {sorted(unknown)}")
        kept = tuple(icon for icon in self.icons if icon.identifier in wanted)
        return SymbolicPicture(
            width=self.width, height=self.height, icons=kept, name=self.name
        )

    def renamed(self, name: str) -> "SymbolicPicture":
        """Return the same picture with a different name."""
        return SymbolicPicture(
            width=self.width, height=self.height, icons=self.icons, name=name
        )

    # ------------------------------------------------------------------
    # Geometric transforms (ground truth for the string-level transforms)
    # ------------------------------------------------------------------
    def rotate90(self) -> "SymbolicPicture":
        """Rotate the whole picture 90 degrees clockwise."""
        icons = tuple(
            icon.with_mbr(icon.mbr.rotate90(self.width, self.height)) for icon in self.icons
        )
        return SymbolicPicture(
            width=self.height, height=self.width, icons=icons, name=self.name
        )

    def rotate180(self) -> "SymbolicPicture":
        """Rotate the whole picture 180 degrees."""
        icons = tuple(
            icon.with_mbr(icon.mbr.rotate180(self.width, self.height)) for icon in self.icons
        )
        return SymbolicPicture(
            width=self.width, height=self.height, icons=icons, name=self.name
        )

    def rotate270(self) -> "SymbolicPicture":
        """Rotate the whole picture 270 degrees clockwise."""
        icons = tuple(
            icon.with_mbr(icon.mbr.rotate270(self.width, self.height)) for icon in self.icons
        )
        return SymbolicPicture(
            width=self.height, height=self.width, icons=icons, name=self.name
        )

    def reflect_x(self) -> "SymbolicPicture":
        """Reflect across the x-axis (flip vertically)."""
        icons = tuple(
            icon.with_mbr(icon.mbr.reflect_x_axis(self.height)) for icon in self.icons
        )
        return SymbolicPicture(
            width=self.width, height=self.height, icons=icons, name=self.name
        )

    def reflect_y(self) -> "SymbolicPicture":
        """Reflect across the y-axis (flip horizontally)."""
        icons = tuple(
            icon.with_mbr(icon.mbr.reflect_y_axis(self.width)) for icon in self.icons
        )
        return SymbolicPicture(
            width=self.width, height=self.height, icons=icons, name=self.name
        )

    # ------------------------------------------------------------------
    # Pairwise relations
    # ------------------------------------------------------------------
    def relation_between(self, first: str, second: str) -> SpatialRelation:
        """Exact spatial relation between two icons given by identifier."""
        return spatial_relation(self.icon(first).mbr, self.icon(second).mbr)

    def pairwise_relations(self) -> Dict[Tuple[str, str], SpatialRelation]:
        """Relations for every unordered icon pair (keyed by sorted identifiers)."""
        relations: Dict[Tuple[str, str], SpatialRelation] = {}
        identifiers = self.identifiers
        for i, first in enumerate(identifiers):
            for second in identifiers[i + 1 :]:
                relations[(first, second)] = self.relation_between(first, second)
        return relations

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation used by the storage layer."""
        return {
            "name": self.name,
            "width": self.width,
            "height": self.height,
            "icons": [icon.to_dict() for icon in self.icons],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SymbolicPicture":
        """Inverse of :meth:`to_dict`."""
        icons = tuple(IconObject.from_dict(entry) for entry in payload.get("icons", []))
        return cls(
            width=float(payload["width"]),
            height=float(payload["height"]),
            icons=icons,
            name=payload.get("name", ""),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "picture"
        return f"{label}({len(self.icons)} icons, {self.width:g}x{self.height:g})"


def fig1_picture() -> SymbolicPicture:
    """The three-object example picture of the paper's Figure 1.

    Object ``A`` sits in the upper-left area, ``B`` in the lower-middle, and
    ``C`` overlaps the right part of the frame; the coordinates are chosen so
    that the end boundary of ``A`` coincides with the begin boundary of ``C``
    on the x-axis and the end boundary of ``B`` coincides with the begin
    boundary of ``C`` on the y-axis -- exactly the coincidences the paper uses
    to show where dummy objects are *not* inserted.
    """
    return SymbolicPicture.build(
        width=10.0,
        height=10.0,
        objects=[
            ("A", Rectangle(1.0, 6.0, 4.0, 9.0)),
            ("B", Rectangle(5.0, 1.0, 7.0, 3.0)),
            ("C", Rectangle(4.0, 3.0, 6.0, 5.0)),
        ],
        name="fig1",
    )
