"""Icon vocabularies: the closed symbol set ``V`` of the 2-D string family.

Chang's 2-D string is defined "over V and A" where ``V`` is the set of icon
symbols.  A vocabulary maps human-readable labels (``"desk"``, ``"car"``) to
compact single-token symbols and back, and provides the themed vocabularies
used by the synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class VocabularyError(ValueError):
    """Raised when a label or symbol is not part of the vocabulary."""


@dataclass
class IconVocabulary:
    """A bidirectional mapping between icon labels and short symbols.

    Symbols are generated deterministically from insertion order (``A``,
    ``B``, ..., ``Z``, ``A1``, ``B1``, ...) unless explicitly provided, so a
    vocabulary built from the same label list is always identical -- a property
    the storage layer relies on when round-tripping databases.
    """

    _label_to_symbol: Dict[str, str] = field(default_factory=dict)
    _symbol_to_label: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_labels(cls, labels: Iterable[str]) -> "IconVocabulary":
        """Build a vocabulary from an iterable of unique labels."""
        vocabulary = cls()
        for label in labels:
            vocabulary.add(label)
        return vocabulary

    @classmethod
    def from_mapping(cls, mapping: Dict[str, str]) -> "IconVocabulary":
        """Build a vocabulary from an explicit ``label -> symbol`` mapping."""
        vocabulary = cls()
        for label, symbol in mapping.items():
            vocabulary.add(label, symbol)
        return vocabulary

    def add(self, label: str, symbol: Optional[str] = None) -> str:
        """Register ``label`` and return its symbol.

        Re-adding an existing label returns the existing symbol; supplying a
        conflicting explicit symbol raises :class:`VocabularyError`.
        """
        if not label:
            raise VocabularyError("icon labels must be non-empty strings")
        if label in self._label_to_symbol:
            existing = self._label_to_symbol[label]
            if symbol is not None and symbol != existing:
                raise VocabularyError(
                    f"label {label!r} already mapped to symbol {existing!r}"
                )
            return existing
        if symbol is None:
            symbol = self._next_symbol()
        if not symbol:
            raise VocabularyError("icon symbols must be non-empty strings")
        if symbol in self._symbol_to_label:
            raise VocabularyError(
                f"symbol {symbol!r} already mapped to label "
                f"{self._symbol_to_label[symbol]!r}"
            )
        self._label_to_symbol[label] = symbol
        self._symbol_to_label[symbol] = label
        return symbol

    def _next_symbol(self) -> str:
        index = len(self._label_to_symbol)
        letter = chr(ord("A") + index % 26)
        suffix = index // 26
        candidate = letter if suffix == 0 else f"{letter}{suffix}"
        while candidate in self._symbol_to_label:
            index += 1
            letter = chr(ord("A") + index % 26)
            suffix = index // 26
            candidate = letter if suffix == 0 else f"{letter}{suffix}"
        return candidate

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def symbol_for(self, label: str) -> str:
        """Return the symbol registered for ``label``."""
        try:
            return self._label_to_symbol[label]
        except KeyError:
            raise VocabularyError(f"unknown icon label {label!r}") from None

    def label_for(self, symbol: str) -> str:
        """Return the label registered for ``symbol``."""
        try:
            return self._symbol_to_label[symbol]
        except KeyError:
            raise VocabularyError(f"unknown icon symbol {symbol!r}") from None

    def __contains__(self, label: str) -> bool:
        return label in self._label_to_symbol

    def __len__(self) -> int:
        return len(self._label_to_symbol)

    def __iter__(self) -> Iterator[str]:
        return iter(self._label_to_symbol)

    @property
    def labels(self) -> List[str]:
        """Labels in insertion order."""
        return list(self._label_to_symbol)

    @property
    def symbols(self) -> List[str]:
        """Symbols in insertion order."""
        return list(self._label_to_symbol.values())

    def items(self) -> Iterable[Tuple[str, str]]:
        """``(label, symbol)`` pairs in insertion order."""
        return self._label_to_symbol.items()

    def to_mapping(self) -> Dict[str, str]:
        """Plain ``label -> symbol`` dictionary (a copy)."""
        return dict(self._label_to_symbol)


# ----------------------------------------------------------------------
# Themed vocabularies used by the synthetic datasets and the examples.
# ----------------------------------------------------------------------
OFFICE_LABELS = (
    "desk",
    "chair",
    "monitor",
    "keyboard",
    "phone",
    "lamp",
    "bookshelf",
    "plant",
    "whiteboard",
    "printer",
    "cabinet",
    "window",
)

TRAFFIC_LABELS = (
    "car",
    "truck",
    "bus",
    "bicycle",
    "pedestrian",
    "traffic_light",
    "stop_sign",
    "crosswalk",
    "lane_marker",
    "tree",
    "building",
    "motorcycle",
)

LANDSCAPE_LABELS = (
    "sun",
    "cloud",
    "mountain",
    "lake",
    "tree",
    "house",
    "road",
    "bridge",
    "boat",
    "bird",
    "field",
    "fence",
)


def office_vocabulary() -> IconVocabulary:
    """Vocabulary for the office-scene dataset."""
    return IconVocabulary.from_labels(OFFICE_LABELS)


def traffic_vocabulary() -> IconVocabulary:
    """Vocabulary for the traffic-scene dataset."""
    return IconVocabulary.from_labels(TRAFFIC_LABELS)


def landscape_vocabulary() -> IconVocabulary:
    """Vocabulary for the landscape-scene dataset."""
    return IconVocabulary.from_labels(LANDSCAPE_LABELS)
