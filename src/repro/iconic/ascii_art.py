"""Terminal rendering of symbolic pictures.

The paper's Section 5 demonstrates a *visualised* retrieval system.  The
reproduction is headless, so this module provides the equivalent affordance in
a terminal: a scaled character grid in which each icon is drawn as a box of
its symbol's first character, plus a legend.
"""

from __future__ import annotations

from typing import Dict, List

from repro.iconic.picture import SymbolicPicture


def render_ascii(picture: SymbolicPicture, columns: int = 60, rows: int = 24) -> str:
    """Render a picture as ASCII art.

    The frame is scaled to ``columns x rows`` characters; each icon paints its
    MBR with the first character of its identifier (later icons overpaint
    earlier ones).  A legend mapping characters to identifiers follows the
    grid.
    """
    if columns < 4 or rows < 4:
        raise ValueError("ascii rendering needs at least a 4x4 character grid")
    grid: List[List[str]] = [["." for _ in range(columns)] for _ in range(rows)]
    legend: Dict[str, str] = {}
    for icon in picture.icons:
        char = icon.identifier[0].upper()
        legend.setdefault(char, icon.identifier)
        col0 = int(icon.mbr.x_begin / picture.width * (columns - 1))
        col1 = int(icon.mbr.x_end / picture.width * (columns - 1))
        row0 = int((1.0 - icon.mbr.y_end / picture.height) * (rows - 1))
        row1 = int((1.0 - icon.mbr.y_begin / picture.height) * (rows - 1))
        for row in range(max(0, row0), min(rows, row1 + 1)):
            for col in range(max(0, col0), min(columns, col1 + 1)):
                grid[row][col] = char
    border = "+" + "-" * columns + "+"
    lines = [border]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    if legend:
        lines.append("legend: " + ", ".join(f"{char}={name}" for char, name in sorted(legend.items())))
    if picture.name:
        lines.append(f"picture: {picture.name}")
    return "\n".join(lines)
