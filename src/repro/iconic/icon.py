"""Icon objects: one recognised object inside a symbolic picture."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.geometry.rectangle import Rectangle


@dataclass(frozen=True, order=True)
class IconObject:
    """A recognised icon: a class label, an instance index and an MBR.

    ``label`` is the icon class (``"car"``); ``instance`` distinguishes
    multiple icons of the same class within one picture.  The pair
    ``(label, instance)`` is the object *identifier* the paper's Algorithm 1
    sorts on together with the boundary coordinate.
    """

    label: str
    mbr: Rectangle
    instance: int = 0

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("icon label must be a non-empty string")
        if self.instance < 0:
            raise ValueError("icon instance index must be non-negative")

    @property
    def identifier(self) -> str:
        """Unique identifier within a picture: ``label`` or ``label#k``."""
        if self.instance == 0:
            return self.label
        return f"{self.label}#{self.instance}"

    @property
    def area(self) -> float:
        """Area of the icon's MBR."""
        return self.mbr.area

    def with_mbr(self, mbr: Rectangle) -> "IconObject":
        """Return a copy of this icon with a different MBR."""
        return replace(self, mbr=mbr)

    def with_instance(self, instance: int) -> "IconObject":
        """Return a copy of this icon with a different instance index."""
        return replace(self, instance=instance)

    def translate(self, dx: float, dy: float) -> "IconObject":
        """Return a copy translated by ``(dx, dy)``."""
        return self.with_mbr(self.mbr.translate(dx, dy))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation used by the storage layer."""
        return {
            "label": self.label,
            "instance": self.instance,
            "mbr": list(self.mbr.as_tuple()),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "IconObject":
        """Inverse of :meth:`to_dict`."""
        x_begin, y_begin, x_end, y_end = payload["mbr"]
        return cls(
            label=payload["label"],
            instance=int(payload.get("instance", 0)),
            mbr=Rectangle(x_begin, y_begin, x_end, y_end),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.identifier}@{self.mbr}"
