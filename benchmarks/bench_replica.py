"""E17: replica catch-up cost is O(WAL lag delta), not O(database).

PR 8 added the read-only replica daemon (``docs/replication.md``): a
:class:`~repro.service.replica.ReplicaEngine` warm-starts from the durable
snapshot and then follows the primary's write-ahead log, applying each
tailed record through the engine's mutation path.  The promised cost model
mirrors the durability tier's (E16): staying current costs work
proportional to the *lag* — the records the primary appended since the last
sync — never to the database size.

This experiment measures, at 600 and 2400 synthetic images (smoke: 40/80)
with lag deltas of 16 and 64 records (smoke: 4/8):

* the catch-up time: one ``drain()`` applying exactly the lag delta,
* the per-record application cost derived from it,
* warm-replica read parity: the caught-up replica's rankings must be
  byte-identical to the primary's, at comparable query latency.

Assertions (full runs):

* catch-up at a fixed delta grows sublinearly across database sizes — the
  time at 4x the images stays within a generous constant factor of the
  time at 1x (an O(database) catch-up would scale with the size ratio),
* catch-up scales with the delta: the per-record cost at the large delta
  stays within a constant factor of the per-record cost at the small one,
* rankings after catch-up are byte-identical to the primary's (asserted in
  smoke runs too — parity is not a timing question).

Results are persisted as ``benchmarks/results/BENCH_E17_replica_<size>.json``
(the CI bench-smoke job uploads them as artifacts); full-run snapshots live
in ``benchmarks/baselines/``.
"""

import statistics
import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.datasets.synthetic import random_pictures
from repro.index.backends import DurableShardedStore
from repro.retrieval.system import RetrievalSystem
from repro.service.replica import ReplicaEngine

DATABASE_SIZES = smoke_scaled((600, 2400), (40, 80))
#: Lag deltas (records appended by the primary between replica syncs).
LAG_DELTAS = smoke_scaled((16, 64), (4, 8))
#: Probe queries whose post-catch-up rankings must match the primary's.
PROBE_QUERIES = 3
#: Timed query repetitions for the read-parity latency comparison.
QUERY_REPEATS = 5
#: Ceiling on catch-up growth across the 4x database-size step at a fixed
#: delta (O(database) catch-up would grow ~4x; applying records is
#: delta-bound, so a generous constant factor suffices).
MAX_CATCH_UP_GROWTH = 3.0
#: Ceiling on per-record cost growth between the small and large delta.
MAX_PER_RECORD_GROWTH = 3.0
#: Ceiling on warm-replica query latency relative to the primary's.
MAX_QUERY_SLOWDOWN = 3.0
#: Absolute floor (seconds) below which timing ratios are noise.
NOISE_FLOOR = 0.020


def _build_primary(tmp_path, size):
    """A durable directory plus its live in-process primary (system+store)."""
    target = tmp_path / f"db-{size}.shards"
    pictures = random_pictures(size, seed=23, name_prefix="img")
    system = RetrievalSystem.from_pictures(pictures)
    system.save(target, durable=True)
    store = DurableShardedStore(system._engine.database, target)
    return target, system, store


def _append_lag(system, store, count, *, generation):
    """``count`` acknowledged primary writes the replica has not seen yet."""
    fresh = random_pictures(count, seed=500 + generation, name_prefix=f"lag{generation}")
    for picture in fresh:
        system.add_picture(picture, picture.name)
        store.log_upsert(system.record(picture.name))


def _probe_scenes():
    return random_pictures(PROBE_QUERIES, seed=23, name_prefix="img")


def _rankings(system):
    return [
        system.query(scene).limit(10).execute().to_jsonl() for scene in _probe_scenes()
    ]


def _median_query_seconds(system):
    samples = []
    scene = _probe_scenes()[0]
    for _ in range(QUERY_REPEATS):
        started = time.perf_counter()
        system.query(scene).limit(10).execute()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


@pytest.mark.benchmark(group="E17-replica")
def test_catch_up_is_lag_bound(tmp_path, write_report, write_json_report, benchmark):
    """Catch-up cost tracks the WAL lag delta, not the database size."""
    measurements = []
    for size in DATABASE_SIZES:
        target, system, store = _build_primary(tmp_path, size)
        replica = ReplicaEngine(target)
        per_size = {"database_size": size, "deltas": []}
        for generation, delta in enumerate(LAG_DELTAS):
            _append_lag(system, store, delta, generation=generation)
            started = time.perf_counter()
            advanced = replica.drain()
            catch_up_seconds = time.perf_counter() - started
            assert advanced == delta
            assert replica.lag_records == 0
            per_size["deltas"].append(
                {
                    "lag_records": delta,
                    "catch_up_seconds": round(catch_up_seconds, 6),
                    "per_record_ms": round(catch_up_seconds / delta * 1000, 4),
                }
            )
        # Read parity: byte-identical rankings, comparable latency.
        assert _rankings(replica.system) == _rankings(system)
        per_size["primary_query_seconds"] = round(_median_query_seconds(system), 6)
        per_size["replica_query_seconds"] = round(
            _median_query_seconds(replica.system), 6
        )
        store.close()
        measurements.append(per_size)

    rows = [
        [
            str(entry["database_size"]),
            str(delta["lag_records"]),
            f"{delta['catch_up_seconds'] * 1000:.1f}",
            f"{delta['per_record_ms']:.2f}",
        ]
        for entry in measurements
        for delta in entry["deltas"]
    ]
    write_report(
        f"E17_replica_{max(DATABASE_SIZES)}",
        [
            "E17 -- replica catch-up cost by database size and WAL lag delta",
            "",
            *format_table(["images", "lag records", "catch-up ms", "per-record ms"], rows),
            "",
            f"growth ceiling across the {max(DATABASE_SIZES) // min(DATABASE_SIZES)}x "
            f"size step at a fixed delta: {MAX_CATCH_UP_GROWTH}x "
            "(O(database) catch-up would scale with the size ratio); "
            f"read parity: rankings byte-identical, query latency within "
            f"{MAX_QUERY_SLOWDOWN}x of the primary's",
        ],
    )
    for entry in measurements:
        write_json_report(
            f"E17_replica_{entry['database_size']}",
            {
                **entry,
                "max_catch_up_growth": MAX_CATCH_UP_GROWTH,
                "max_per_record_growth": MAX_PER_RECORD_GROWTH,
                "max_query_slowdown": MAX_QUERY_SLOWDOWN,
            },
        )

    if not SMOKE:
        smallest, largest = measurements[0], measurements[-1]
        for position, delta in enumerate(LAG_DELTAS):
            grown = largest["deltas"][position]["catch_up_seconds"]
            base = max(smallest["deltas"][position]["catch_up_seconds"], NOISE_FLOOR)
            assert grown <= MAX_CATCH_UP_GROWTH * base, (
                f"catching up {delta} records took {grown * 1000:.1f}ms at "
                f"{largest['database_size']} images vs "
                f"{base * 1000:.1f}ms at {smallest['database_size']} "
                f"(ceiling: {MAX_CATCH_UP_GROWTH}x -- catch-up must be lag-bound)"
            )
        for entry in measurements:
            small_delta, large_delta = entry["deltas"][0], entry["deltas"][-1]
            base_rate = max(small_delta["per_record_ms"], NOISE_FLOOR)
            assert large_delta["per_record_ms"] <= MAX_PER_RECORD_GROWTH * base_rate, (
                f"per-record cost grew from {small_delta['per_record_ms']:.2f}ms "
                f"to {large_delta['per_record_ms']:.2f}ms between deltas at "
                f"{entry['database_size']} images (catch-up must scale with the lag)"
            )
            slow = entry["replica_query_seconds"]
            fast = max(entry["primary_query_seconds"], NOISE_FLOOR / 10)
            assert slow <= MAX_QUERY_SLOWDOWN * fast + NOISE_FLOOR, (
                f"warm replica queries at {entry['database_size']} images run "
                f"{slow * 1000:.1f}ms vs the primary's {fast * 1000:.1f}ms "
                f"(ceiling: {MAX_QUERY_SLOWDOWN}x)"
            )

    # pytest-benchmark timing: one warm replica boot at the smallest size.
    smallest_target = tmp_path / f"db-{DATABASE_SIZES[0]}.shards"
    benchmark.pedantic(lambda: ReplicaEngine(smallest_target), rounds=3)
