"""E18: process-parallel shard workers — scatter-gather speedup and equivalence.

PR 9 added ``executor="shard_process"`` (``docs/parallelism.md``): a pool of
forked worker processes, each owning a disjoint slice of the CRC-32 shard
space with its own engine, shortlist and score cache.  A query is serialised
to every worker, scored locally over the worker's shard slice, and the
partial rankings are merged under the engine's exact ``(-score, image_id)``
tie-break — so the scatter-gather ranking must be **byte-identical** to the
serial one, worker count notwithstanding.

This experiment measures, at 2k and 10k synthetic 16-object images
(smoke: 60/120):

* per-query scatter-gather latency against the serial path at 1, 2 and 4
  workers (caches disabled on both sides, pools warmed before timing, so
  the comparison is pure scoring work + IPC),
* the batch path (``query_batch(..., executor="shard_process")``) against
  the serial batch scheduler,
* ranking byte-equivalence at every worker count and size — exact,
  invariant and batch modes, tie-breaks included (asserted always, smoke
  runs too).

The speedup floor — **2.5x at 4 workers** over serial at the largest size —
only applies on machines with at least 4 CPUs and outside smoke mode;
single-core CI boxes still assert equivalence, which is the correctness
claim.  Results are persisted as
``benchmarks/results/BENCH_E18_shard_workers_<size>.json`` (the CI
``shard-workers`` job uploads them as artifacts).
"""

import os
import time
from dataclasses import replace

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.index.execution import ExecutionOptions
from repro.index.spec import QuerySpec
from repro.retrieval.system import RetrievalSystem

DATABASE_SIZES = smoke_scaled((2000, 10000), (60, 120))
#: Queries per timing pass.
QUERY_COUNT = smoke_scaled(6, 3)
WORKER_COUNTS = (1, 2, 4)
#: Minimum scatter-gather speedup at 4 workers over serial at the largest
#: size (only asserted with >= 4 CPUs, outside smoke mode).
REQUIRED_SPEEDUP = 2.5

#: 16-object scenes: heavy enough per-candidate scoring that the scatter's
#: serialisation cost does not dominate.
_PARAMETERS = SceneParameters(
    object_count=16,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(48)),
    label_choice="random",
)

#: Cold scoring on both sides: the serial/sharded comparison must not hinge
#: on who warmed the score cache first.
_COLD = ExecutionOptions(cache=False)


def _ranking(results):
    return [(r.rank, r.image_id, r.score) for r in results]


def _specs(system, invariant=False):
    queries = [
        system._engine.database.get(f"img-{index:04d}").picture
        for index in range(QUERY_COUNT)
    ]
    builder = lambda picture: (
        system.query(picture).invariant() if invariant else system.query(picture)
    )
    return [builder(picture).limit(10).execution(_COLD).spec() for picture in queries]


def _sharded(spec: QuerySpec, workers: int) -> QuerySpec:
    merged = spec.execution.overlaid(
        ExecutionOptions(executor="shard_process", workers=workers)
    )
    return replace(spec, execution=merged)


def _time_specs(engine, specs):
    started = time.perf_counter()
    outcomes = [engine.execute_spec(spec) for spec in specs]
    return time.perf_counter() - started, [_ranking(o.results) for o in outcomes]


@pytest.fixture(scope="module", params=DATABASE_SIZES)
def sized_system(request):
    size = request.param
    pictures = random_pictures(size, seed=37, parameters=_PARAMETERS, name_prefix="img")
    system = RetrievalSystem.from_pictures(pictures)
    yield size, system
    system._engine.close_shard_pool()


@pytest.mark.benchmark(group="E18-shard-workers")
def test_scatter_gather_speedup_and_equivalence(
    sized_system, write_report, write_json_report, benchmark
):
    size, system = sized_system
    engine = system._engine
    specs = _specs(system)

    serial_seconds, serial_rankings = _time_specs(engine, specs)

    shard_seconds = {}
    pool_stats = {}
    for workers in WORKER_COUNTS:
        sharded = [_sharded(spec, workers) for spec in specs]
        engine.execute_spec(sharded[0])  # warm the pool (fork + first scatter)
        seconds, rankings = _time_specs(engine, sharded)
        assert rankings == serial_rankings, (
            f"scatter-gather ranking diverged from serial at {workers} workers"
        )
        shard_seconds[workers] = seconds
        pool_stats[workers] = engine.shard_pool_stats()
    engine.close_shard_pool()

    # Invariant queries: eight transformations per candidate, the regime the
    # paper's rotation/reflection matching pays the most in.
    invariant_specs = _specs(system, invariant=True)
    _, invariant_serial = _time_specs(engine, invariant_specs)
    _, invariant_sharded = _time_specs(
        engine, [_sharded(spec, 2) for spec in invariant_specs]
    )
    assert invariant_sharded == invariant_serial
    engine.close_shard_pool()

    speedups = {
        workers: serial_seconds / seconds if seconds else float("inf")
        for workers, seconds in shard_seconds.items()
    }
    rows = [["serial", f"{serial_seconds * 1000:.1f}", "1.0x"]] + [
        [
            f"shard_process x{workers}",
            f"{shard_seconds[workers] * 1000:.1f}",
            f"{speedups[workers]:.2f}x",
        ]
        for workers in WORKER_COUNTS
    ]
    write_report(
        f"E18_shard_workers_{size}",
        [
            f"E18 -- shard-worker scatter-gather at {size} images "
            f"({QUERY_COUNT} cold top-10 queries, {os.cpu_count()} CPUs)",
            "",
            *format_table(["path", "total ms", "speedup"], rows),
            "",
            f"speedup floor: {REQUIRED_SPEEDUP}x at 4 workers at the largest "
            "size (>= 4 CPUs, full mode only)",
            "rankings byte-identical to serial at every worker count "
            "(exact + invariant modes, tie-breaks included)",
        ],
    )
    write_json_report(
        f"E18_shard_workers_{size}",
        {
            "database_size": size,
            "queries": QUERY_COUNT,
            "cpu_count": os.cpu_count(),
            "serial_seconds": round(serial_seconds, 6),
            "shard_seconds": {
                str(workers): round(seconds, 6)
                for workers, seconds in shard_seconds.items()
            },
            "speedups": {
                str(workers): round(speedup, 3)
                for workers, speedup in speedups.items()
            },
            "required_speedup": REQUIRED_SPEEDUP,
            "byte_identical": True,
            "pool": {
                str(workers): {
                    "shard_count": stats["shard_count"],
                    "warm_start": stats["warm_start"],
                    "scatters": stats["scatters"],
                    "scatter_latency_ms": stats["scatter_latency_ms"],
                }
                for workers, stats in pool_stats.items()
            },
        },
    )

    if not SMOKE and size == max(DATABASE_SIZES) and (os.cpu_count() or 1) >= 4:
        assert speedups[4] >= REQUIRED_SPEEDUP, (
            f"shard_process x4 only {speedups[4]:.2f}x over serial "
            f"(floor: {REQUIRED_SPEEDUP}x at {size} images)"
        )

    benchmark.pedantic(
        lambda: engine.execute_spec(_sharded(specs[0], 2)), rounds=3
    )
    engine.close_shard_pool()


@pytest.mark.benchmark(group="E18-shard-workers")
def test_batch_path_byte_identical(sized_system, write_report, benchmark):
    """``query_batch`` under ``shard_process`` matches the serial batch."""
    size, system = sized_system
    queries = [
        system._engine.database.get(f"img-{index:04d}").picture
        for index in range(QUERY_COUNT)
    ]
    # One duplicate exercises batch deduplication through the scatter.
    batch = [system.query(picture) for picture in queries + [queries[0]]]
    serial = system.query_batch(batch, executor="serial")
    sharded = system.query_batch(batch, executor="shard_process", workers=2)
    assert [_ranking(results) for results in sharded] == [
        _ranking(results) for results in serial
    ]
    report = system.last_batch_report
    assert report.executor == "shard_process"
    system._engine.close_shard_pool()
    write_report(
        f"E18_batch_{size}",
        [
            f"E18 -- batch scatter-gather at {size} images",
            "",
            f"{len(batch)} queries ({report.unique_evaluations} unique) "
            "byte-identical to the serial batch scheduler at 2 workers",
        ],
    )
    benchmark.pedantic(
        lambda: system.query_batch(batch, executor="shard_process", workers=2),
        rounds=3,
    )
    system._engine.close_shard_pool()
