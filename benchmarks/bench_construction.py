"""E3 (Section 3.2): cost of Convert-2D-Be-String as the image grows.

The algorithm is sort-dominated (O(n log n) time, O(n) space ignoring the
sort).  The benchmark times the faithful parallel-array entry point across a
sweep of object counts; the report lists the measured time per object, which
should stay nearly flat (it grows only with the log factor), and compares a
pre-sorted emission (the O(n) part alone) against the full encoder.
"""

import time

import pytest

from benchmarks.conftest import format_table, smoke_scaled
from repro.core.construct import build_axis_string, convert_2d_be_string
from repro.core.symbols import BoundaryKind
from repro.datasets.synthetic import SceneParameters, random_picture

OBJECT_COUNTS = smoke_scaled((16, 64, 256, 1024, 4096), (8, 16))


def _picture_arrays(object_count):
    parameters = SceneParameters(
        object_count=object_count,
        width=10_000.0,
        height=10_000.0,
        maximum_size=50.0,
        alignment_probability=0.2,
        grid=100.0,
        labels=tuple(f"obj{index:05d}" for index in range(object_count)),
    )
    picture = random_picture(object_count, parameters)
    return (
        [icon.identifier for icon in picture.icons],
        [icon.mbr.x_begin for icon in picture.icons],
        [icon.mbr.x_end for icon in picture.icons],
        [icon.mbr.y_begin for icon in picture.icons],
        [icon.mbr.y_end for icon in picture.icons],
        picture.width,
        picture.height,
    )


@pytest.mark.benchmark(group="E3-construction")
@pytest.mark.parametrize("object_count", [64, 1024])
def test_convert_2d_be_string_cost(benchmark, object_count):
    identifiers, xb, xe, yb, ye, width, height = _picture_arrays(object_count)
    bestring = benchmark(
        convert_2d_be_string, object_count, identifiers, xb, xe, yb, ye, width, height
    )
    assert bestring.count_objects() == object_count


@pytest.mark.benchmark(group="E3-construction")
def test_construction_scaling_report(benchmark, write_report):
    rows = []
    for object_count in OBJECT_COUNTS:
        identifiers, xb, xe, yb, ye, width, height = _picture_arrays(object_count)
        started = time.perf_counter()
        convert_2d_be_string(object_count, identifiers, xb, xe, yb, ye, width, height)
        elapsed = time.perf_counter() - started
        rows.append(
            [
                object_count,
                f"{elapsed * 1000:.2f}",
                f"{elapsed * 1e6 / object_count:.2f}",
            ]
        )
    headers = ["objects", "total ms", "us per object"]
    write_report(
        "E3_construction",
        [
            "E3 -- Convert-2D-Be-String cost (random scenes, both axes)",
            "",
            *format_table(headers, rows),
            "",
            "paper: O(n log n) dominated by sorting; the per-object cost should stay",
            "nearly flat across two orders of magnitude of n.",
        ],
    )

    # Time the emission-only path (already sorted records) for the largest n.
    identifiers, xb, xe, yb, ye, width, height = _picture_arrays(OBJECT_COUNTS[-1])
    records = sorted(
        [(coordinate, identifier, BoundaryKind.BEGIN) for coordinate, identifier in zip(xb, identifiers)]
        + [(coordinate, identifier, BoundaryKind.END) for coordinate, identifier in zip(xe, identifiers)],
        key=lambda record: (record[0], record[1], record[2] is BoundaryKind.END),
    )
    axis = benchmark(build_axis_string, records, width)
    assert axis.boundary_count == 2 * OBJECT_COUNTS[-1]
