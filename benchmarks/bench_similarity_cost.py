"""E4 (Section 4): cost of the modified-LCS similarity vs the clique baseline.

The paper replaces the 2-D string family's similarity -- enumerate all
O(n^2) object pairs, then find a maximum complete subgraph (NP-complete) --
with an O(mn) LCS over the BE-strings.  The benchmark times both evaluations
on the same query/database scene pairs across a sweep of object counts, plus
the two LCS ablations (textbook LCS and the explicit-boolean dummy-aware
variant).
"""

import time

import pytest

from benchmarks.conftest import format_table, smoke_scaled
from repro.baselines.lcs_plain import classic_lcs_length, dummy_aware_lcs_length
from repro.baselines.type_similarity import SimilarityType, type_similarity
from repro.core.construct import encode_picture
from repro.core.similarity import similarity
from repro.datasets.synthetic import SceneParameters, random_picture
from repro.datasets.transforms_gen import perturbed_variant

OBJECT_COUNTS = smoke_scaled((4, 8, 16, 32, 48, 64, 96), (4, 8))


def _scene_pair(object_count, seed=0):
    parameters = SceneParameters(
        object_count=object_count,
        alignment_probability=0.3,
        labels=tuple(f"obj{index:03d}" for index in range(object_count)),
    )
    database_picture = random_picture(seed, parameters)
    # A moderately strong perturbation: enough pairwise relations change that
    # the baseline's compatibility graph is neither empty nor complete, which
    # is the regime where the clique search actually has to branch.
    query_picture = perturbed_variant(database_picture, seed=seed + 1, amount=0.12)
    return query_picture, database_picture


@pytest.mark.benchmark(group="E4-similarity-cost")
@pytest.mark.parametrize("object_count", [8, 32])
def test_modified_lcs_cost(benchmark, object_count):
    query_picture, database_picture = _scene_pair(object_count)
    query = encode_picture(query_picture)
    database = encode_picture(database_picture)
    result = benchmark(similarity, query, database)
    assert 0.0 <= result.score <= 1.0


@pytest.mark.benchmark(group="E4-similarity-cost")
@pytest.mark.parametrize("object_count", [8, 16])
def test_clique_baseline_cost(benchmark, object_count):
    query_picture, database_picture = _scene_pair(object_count)
    result = benchmark(type_similarity, query_picture, database_picture, SimilarityType.TYPE_1)
    assert result.pair_count == object_count * (object_count - 1) // 2


@pytest.mark.benchmark(group="E4-similarity-cost")
def test_similarity_cost_report(benchmark, write_report):
    rows = []
    for object_count in OBJECT_COUNTS:
        query_picture, database_picture = _scene_pair(object_count)
        query = encode_picture(query_picture)
        database = encode_picture(database_picture)

        started = time.perf_counter()
        similarity(query, database)
        lcs_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        classic_lcs_length(query.x, database.x)
        classic_lcs_length(query.y, database.y)
        classic_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        dummy_aware_lcs_length(query.x, database.x)
        dummy_aware_lcs_length(query.y, database.y)
        boolean_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        type_similarity(query_picture, database_picture, SimilarityType.TYPE_1)
        clique_ms = (time.perf_counter() - started) * 1000

        rows.append(
            [
                object_count,
                f"{lcs_ms:.2f}",
                f"{boolean_ms:.2f}",
                f"{classic_ms:.2f}",
                f"{clique_ms:.2f}",
                f"{clique_ms / max(lcs_ms, 1e-9):.1f}x",
            ]
        )
    headers = [
        "objects (m=n)",
        "modified LCS ms",
        "boolean-table LCS ms",
        "classic LCS ms",
        "type-1 clique ms",
        "clique/LCS",
    ]
    write_report(
        "E4_similarity_cost",
        [
            "E4 -- similarity evaluation cost, query vs database image of equal size",
            "",
            *format_table(headers, rows),
            "",
            "paper: modified LCS is O(mn); the baseline enumerates O(n^2) pairs and then",
            "solves an NP-complete maximum-clique instance, so its cost grows much faster.",
        ],
    )

    # One representative timing for the benchmark table.
    query_picture, database_picture = _scene_pair(OBJECT_COUNTS[-1])
    query = encode_picture(query_picture)
    database = encode_picture(database_picture)
    benchmark(similarity, query, database)
