"""E16: recovery time is O(WAL delta), not O(database).

PR 7 made the sharded backend crash-safe (``docs/durability.md``): mutations
are fsync'd to a write-ahead log before they are acknowledged, and opening a
durable directory replays only the log records past the manifest's snapshot
LSN.  The promised cost model: recovering from a crash adds work
proportional to the *write delta* since the last compaction — never to the
database size.

This experiment measures, at 600 and 2400 synthetic images (smoke: 40/80)
with a fixed pending delta of 64 WAL records (smoke: 8):

* the clean warm-start load time (snapshot only, empty log),
* the crash-recovery load time (snapshot + replay of the pending delta),
* their difference — the replay overhead the crash added.

Assertions (full runs, largest size):

* replay overhead stays under **50%** of the clean load time — replaying 64
  records must not cost anything like re-reading 2400 images,
* replay overhead grows sublinearly across database sizes: the overhead at
  4x the images stays within a generous constant factor of the overhead at
  1x (an O(database) recovery would scale with the size ratio),
* compaction folds the delta and drops recovery back to the clean baseline.

Results are persisted as ``benchmarks/results/BENCH_E16_durability_<size>.json``
(the CI bench-smoke job uploads them as artifacts); full-run snapshots live
in ``benchmarks/baselines/``.
"""

import statistics
import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.datasets.synthetic import random_pictures
from repro.index.backends import DurableShardedStore
from repro.retrieval.system import RetrievalSystem

DATABASE_SIZES = smoke_scaled((600, 2400), (40, 80))
#: Pending WAL records ("the crash delta") replayed by the recovery load.
DELTA_RECORDS = smoke_scaled(64, 8)
#: Timed load repetitions per measurement (median reported).
REPEATS = 3
#: Ceiling on replay overhead as a fraction of the clean load (largest size).
MAX_OVERHEAD_FRACTION = 0.50
#: Ceiling on how much the same-delta replay overhead may grow across the
#: 4x database-size step (O(database) recovery would grow ~4x; the replay
#: is delta-bound, so a generous constant factor suffices).
MAX_OVERHEAD_GROWTH = 3.0
#: Absolute overhead floor (seconds) below which growth ratios are noise.
OVERHEAD_NOISE_FLOOR = 0.030


def _median_load_seconds(target) -> float:
    samples = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        RetrievalSystem.from_file(target, durable=True)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _build_durable(tmp_path, size: int):
    target = tmp_path / f"db-{size}.shards"
    pictures = random_pictures(size, seed=23, name_prefix="img")
    RetrievalSystem.from_pictures(pictures).save(target, durable=True)
    return target


def _append_delta(target, count: int) -> None:
    """Log ``count`` acknowledged-but-uncompacted upserts (the crash delta)."""
    system = RetrievalSystem.from_file(target, durable=True)
    store = DurableShardedStore(system._engine.database, target)
    for picture in random_pictures(count, seed=97, name_prefix="delta"):
        system.add_picture(picture, picture.name)
        store.log_upsert(system.record(picture.name))
    store.close()


@pytest.mark.benchmark(group="E16-durability")
def test_recovery_is_delta_bound(
    tmp_path, write_report, write_json_report, benchmark
):
    """Replay overhead tracks the WAL delta, not the database size."""
    measurements = []
    for size in DATABASE_SIZES:
        target = _build_durable(tmp_path, size)
        clean_seconds = _median_load_seconds(target)
        _append_delta(target, DELTA_RECORDS)
        recovery_seconds = _median_load_seconds(target)
        overhead = max(recovery_seconds - clean_seconds, 0.0)

        # Compaction folds the delta; recovery returns to the clean baseline.
        system = RetrievalSystem.from_file(target, durable=True)
        store = DurableShardedStore(system._engine.database, target)
        pending_before = store.pending_records
        store.compact()
        pending_after = store.pending_records
        store.close()
        compacted_seconds = _median_load_seconds(target)

        assert pending_before == DELTA_RECORDS
        assert pending_after == 0
        measurements.append(
            {
                "database_size": size,
                "delta_records": DELTA_RECORDS,
                "clean_load_seconds": round(clean_seconds, 6),
                "recovery_load_seconds": round(recovery_seconds, 6),
                "replay_overhead_seconds": round(overhead, 6),
                "compacted_load_seconds": round(compacted_seconds, 6),
            }
        )

    rows = [
        [
            str(entry["database_size"]),
            f"{entry['clean_load_seconds'] * 1000:.1f}",
            f"{entry['recovery_load_seconds'] * 1000:.1f}",
            f"{entry['replay_overhead_seconds'] * 1000:.1f}",
            f"{entry['compacted_load_seconds'] * 1000:.1f}",
        ]
        for entry in measurements
    ]
    write_report(
        f"E16_durability_{max(DATABASE_SIZES)}",
        [
            f"E16 -- crash recovery cost at a fixed {DELTA_RECORDS}-record WAL delta",
            "",
            *format_table(
                ["images", "clean ms", "recovery ms", "overhead ms", "post-compaction ms"],
                rows,
            ),
            "",
            f"overhead ceiling: {MAX_OVERHEAD_FRACTION:.0%} of the clean load "
            f"at the largest size; growth ceiling across sizes: "
            f"{MAX_OVERHEAD_GROWTH}x (O(database) would scale with the size ratio)",
        ],
    )
    for entry in measurements:
        write_json_report(
            f"E16_durability_{entry['database_size']}",
            {
                **entry,
                "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
                "max_overhead_growth": MAX_OVERHEAD_GROWTH,
            },
        )

    if not SMOKE:
        largest = measurements[-1]
        smallest = measurements[0]
        assert (
            largest["replay_overhead_seconds"]
            <= MAX_OVERHEAD_FRACTION * largest["clean_load_seconds"]
        ), (
            f"replaying {DELTA_RECORDS} records cost "
            f"{largest['replay_overhead_seconds'] * 1000:.1f}ms on top of a "
            f"{largest['clean_load_seconds'] * 1000:.1f}ms clean load "
            f"(ceiling: {MAX_OVERHEAD_FRACTION:.0%})"
        )
        grown = largest["replay_overhead_seconds"]
        base = max(smallest["replay_overhead_seconds"], OVERHEAD_NOISE_FLOOR)
        assert grown <= MAX_OVERHEAD_GROWTH * base, (
            f"same-delta replay overhead grew from "
            f"{smallest['replay_overhead_seconds'] * 1000:.1f}ms to "
            f"{grown * 1000:.1f}ms across a "
            f"{max(DATABASE_SIZES) / min(DATABASE_SIZES):.0f}x size step "
            f"(ceiling: {MAX_OVERHEAD_GROWTH}x -- recovery must be delta-bound)"
        )
        # Compaction folded the delta logically (pending_after == 0 above);
        # the compacted snapshot-only load must stay in the same ballpark as
        # the recovery load of the same image count (generous factor: the
        # two runs are seconds apart and share the machine with the suite).
        assert (
            largest["compacted_load_seconds"]
            <= 1.5 * largest["recovery_load_seconds"] + OVERHEAD_NOISE_FLOOR
        ), "compaction failed to fold the delta back into the snapshot"

    # pytest-benchmark timing: one recovery load at the smallest size.
    small_target = tmp_path / f"db-{DATABASE_SIZES[0]}.shards"
    benchmark.pedantic(
        lambda: RetrievalSystem.from_file(small_target, durable=True), rounds=3
    )
