"""E12: the unified query pipeline -- overhead and warm-cache serial speedup.

The query-API redesign routes *every* serial query through one pipeline that
consults the shared LRU score cache (PR-1 only batches did).  Two properties
must hold for the redesign to be a free win:

* **Overhead** -- a cold serial query through the unified pipeline (cache
  lookups, trace recording, spec compilation) must cost at most 5% more than
  the PR-1 execution loop (encode -> shortlist -> score -> rank, no cache),
  replicated verbatim in :func:`_pr1_execute`.
* **Warm-cache speedup** -- an identical repeated serial query must be
  answered from memoised similarity results: zero LCS evaluations on the
  second call, verified by the cache-hit counters, with rankings
  byte-identical to the cold run and to the PR-1 loop.
"""

import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.core.construct import encode_picture
from repro.core.similarity import invariant_similarity, similarity
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.index.ranking import rank_results
from repro.retrieval.system import RetrievalSystem

DATABASE_SIZE = smoke_scaled(600, 30)
QUERY_COUNT = smoke_scaled(20, 4)
#: Timing repetitions; the minimum over repeats is compared (noise floor).
REPEATS = smoke_scaled(3, 1)

#: Maximum tolerated cold-pipeline overhead vs the PR-1 loop (fraction).
OVERHEAD_CEILING = 0.05
#: Minimum warm-cache speedup for a repeated identical serial query.
REQUIRED_WARM_SPEEDUP = 2.0

_PARAMETERS = SceneParameters(
    object_count=10,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(60)),
    label_choice="random",
)

_SIGNATURE_THRESHOLD = 0.34


@pytest.fixture(scope="module")
def workload():
    pictures = random_pictures(
        DATABASE_SIZE, seed=3, parameters=_PARAMETERS, name_prefix="img"
    )
    system = RetrievalSystem.from_pictures(
        pictures, minimum_signature_overlap=_SIGNATURE_THRESHOLD
    )
    stride = max(1, DATABASE_SIZE // QUERY_COUNT)
    queries = [pictures[index * stride] for index in range(QUERY_COUNT)]
    return system, queries


def _pr1_execute(engine, query):
    """The PR-1 serial execution loop, replicated verbatim (no score cache)."""
    query_bestring = encode_picture(query.picture)
    scored = []
    for image_id in engine.candidate_ids(query):
        record = engine.database.get(image_id)
        if len(query.transformations) == 1:
            result = similarity(
                query_bestring, record.bestring, query.policy, query.transformations[0]
            )
        else:
            result = invariant_similarity(
                query_bestring, record.bestring, query.policy, query.transformations
            )
        scored.append((image_id, result))
    return rank_results(scored, limit=query.limit, minimum_score=query.minimum_score)


def _lines(result_lists):
    return [[result.describe() for result in results] for results in result_lists]


def _best_of(repeats, run):
    """Minimum wall time over ``repeats`` executions of ``run()`` (and its output)."""
    best_seconds, output = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        output = run()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, output


@pytest.mark.benchmark(group="E12-query-api")
def test_unified_pipeline_overhead_and_warm_speedup(
    benchmark, write_report, write_json_report, workload
):
    system, queries = workload
    engine = system._engine
    specs = [system.query(query).limit(10).spec() for query in queries]
    compiled = [spec.to_query() for spec in specs]

    baseline_seconds, baseline = _best_of(
        REPEATS, lambda: [_pr1_execute(engine, query) for query in compiled]
    )

    def _cold_unified():
        engine.score_cache.clear()
        return [system.query(query).limit(10).execute() for query in queries]

    cold_seconds, cold = _best_of(REPEATS, _cold_unified)

    # Warm pass: identical serial queries, straight after a cold pass.
    engine.score_cache.clear()
    [system.query(query).limit(10).execute() for query in queries]
    before = system.cache_statistics()
    started = time.perf_counter()
    warm = [system.query(query).limit(10).execute() for query in queries]
    warm_seconds = time.perf_counter() - started
    after = system.cache_statistics()

    # The second identical serial query is answered from the cache: every
    # candidate lookup hits, nothing is re-scored.
    candidate_lookups = sum(len(engine.candidate_ids(query)) for query in compiled)
    assert after.hits - before.hits == candidate_lookups
    assert after.misses == before.misses, "warm serial queries re-scored candidates"

    # Byte-identical rankings across the PR-1 loop and both unified passes.
    assert _lines(cold) == _lines(baseline)
    assert _lines(warm) == _lines(baseline)

    overhead = (cold_seconds - baseline_seconds) / baseline_seconds
    warm_speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    rows = [
        ["PR-1 serial loop (no cache)", f"{baseline_seconds * 1000:.1f}", "1.00x"],
        [
            "unified pipeline, cold cache",
            f"{cold_seconds * 1000:.1f}",
            f"{cold_seconds / baseline_seconds:.3f}x",
        ],
        [
            "unified pipeline, warm cache",
            f"{warm_seconds * 1000:.1f}",
            f"{warm_seconds / baseline_seconds:.3f}x",
        ],
    ]
    write_report(
        "E12_query_api",
        [
            f"E12 -- unified query pipeline over {DATABASE_SIZE} synthetic images, "
            f"{len(queries)} serial queries (best of {REPEATS})",
            "",
            *format_table(["path", "ms", "vs PR-1"], rows),
            "",
            f"cold overhead vs the PR-1 loop: {overhead:+.1%} "
            f"(ceiling {OVERHEAD_CEILING:.0%})",
            f"warm-cache speedup for repeated serial queries: {warm_speedup:.1f}x",
            "",
            "the redesigned serial path adds cache consultation and trace recording",
            "around the exact same scoring calls; repeated identical queries are",
            "answered from the shared LRU score cache with zero LCS evaluations and",
            "byte-identical rankings.",
        ],
    )
    write_json_report(
        "E12_query_api",
        {
            "database_size": DATABASE_SIZE,
            "queries": len(queries),
            "repeats": REPEATS,
            "baseline_seconds": round(baseline_seconds, 6),
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "cold_overhead_fraction": round(overhead, 4),
            "warm_speedup": round(warm_speedup, 3),
            "overhead_ceiling": OVERHEAD_CEILING,
        },
    )

    if not SMOKE:  # tiny smoke sizes are all fixed overhead, no signal
        assert overhead < OVERHEAD_CEILING, (
            f"unified pipeline cold overhead {overhead:.1%} exceeds "
            f"{OVERHEAD_CEILING:.0%} vs the PR-1 serial loop"
        )
        assert warm_speedup >= REQUIRED_WARM_SPEEDUP, (
            f"warm-cache speedup {warm_speedup:.2f}x below the "
            f"{REQUIRED_WARM_SPEEDUP}x floor"
        )

    # pytest-benchmark timing: the steady-state warm serial path.
    benchmark(lambda: [system.query(query).limit(10).execute() for query in queries])


@pytest.mark.benchmark(group="E12-query-api")
def test_builder_compilation_cost(benchmark, workload):
    """Spec compilation alone is negligible next to one LCS evaluation."""
    system, queries = workload
    query = queries[0]
    spec = benchmark(lambda: system.query(query).invariant().limit(10).spec())
    assert spec.has_similarity_clause
