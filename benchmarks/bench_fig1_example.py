"""E1 (Figure 1): the paper's worked three-object encoding example.

Regenerates the 2D BE-string of the Figure 1 scene, checks the two boundary
coincidences the paper highlights (no dummy between A.e/C.b on x and between
B.e/C.b on y), and times Algorithm 1 on the scene.
"""

import pytest

from benchmarks.conftest import format_table
from repro.core.construct import encode_picture
from repro.core.similarity import similarity
from repro.iconic.picture import fig1_picture


@pytest.mark.benchmark(group="E1-fig1")
def test_fig1_encoding(benchmark, write_report):
    picture = fig1_picture()
    bestring = benchmark(encode_picture, picture)

    assert bestring.x.to_compact_text() == "EAbEAeCbEBbECeEBeE"
    assert bestring.y.to_compact_text() == "EBbEBeCbECeEAbEAeE"

    self_similarity = similarity(bestring, bestring)
    rows = [
        ["axis", "BE-string", "symbols", "dummies"],
    ]
    table = format_table(
        rows[0],
        [
            ["x", bestring.x.to_compact_text(), len(bestring.x), bestring.x.dummy_count],
            ["y", bestring.y.to_compact_text(), len(bestring.y), bestring.y.dummy_count],
        ],
    )
    write_report(
        "E1_fig1_example",
        [
            "E1 -- Figure 1 worked example (3 objects, 10x10 frame)",
            "",
            *table,
            "",
            "paper: dummies appear at all four image edges; none between A.e/C.b (x) "
            "or B.e/C.b (y)",
            f"self-similarity score: {self_similarity.score:.3f} "
            f"(objects fully matched: {sorted(self_similarity.common_objects)})",
        ],
    )


@pytest.mark.benchmark(group="E1-fig1")
def test_fig1_self_similarity(benchmark):
    bestring = encode_picture(fig1_picture())
    result = benchmark(similarity, bestring, bestring)
    assert result.score == 1.0
    assert result.common_objects == {"A", "B", "C"}
