"""E11: storage backend latency -- full save vs incremental save vs load.

The ROADMAP's serving ambitions need a database that survives restarts and
grows past a single JSON blob; :mod:`repro.index.backends` ships three
formats (whole-file JSON v1, SQLite rows, sharded binary files) with
incremental persistence on the latter two.  This experiment measures, at 1k
and 10k synthetic images:

* ``full save``        -- serialise the whole database from scratch,
* ``incremental save`` -- rewrite after dirtying 1% of the images (the
  steady-state update pattern of a long-lived deployment), and
* ``load``             -- full reload including BE-string validation.

Reloaded content is asserted identical across every backend (same ids, same
BE-strings), and at full scale the incremental sharded save must beat the
full JSON rewrite by at least 5x -- the acceptance criterion of the PR that
introduced the backend layer.
"""

import shutil
import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.geometry.rectangle import Rectangle
from repro.index.backends import get_backend, load_database_from
from repro.index.database import ImageDatabase

DATABASE_SIZES = smoke_scaled((1000, 10000), (40, 80))
#: Fraction of images dirtied before the incremental save.
DIRTY_FRACTION = 0.01
#: Shard count of the sharded backend.  Sized to the database: with hashing,
#: k dirty images touch up to k shards, so the shard count must comfortably
#: exceed the dirty count per save for incremental rewrites to pay off (at 16
#: shards and 100 dirty images every shard is hit and "incremental" becomes a
#: full rewrite; see docs/storage-formats.md for sizing guidance).
SHARD_COUNT = 512
#: Minimum speedup of the incremental sharded save over the full JSON rewrite
#: at the largest database size (acceptance criterion).
REQUIRED_SPEEDUP = 5.0

BACKEND_NAMES = ("json", "sqlite", "sharded")

_PARAMETERS = SceneParameters(
    object_count=8,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(40)),
    label_choice="random",
)


def _build_database(size: int) -> ImageDatabase:
    database = ImageDatabase(name=f"bench-{size}")
    database.add_pictures(
        random_pictures(size, seed=11, parameters=_PARAMETERS, name_prefix="img")
    )
    database.clear_dirty()
    return database


def _target_path(root, backend_name: str, size: int):
    suffix = {"json": ".json", "sqlite": ".sqlite", "sharded": ".shards"}[backend_name]
    return root / f"db-{size}{suffix}"


def _dirty_some(database: ImageDatabase, fraction: float):
    """Touch ``fraction`` of the images through the dynamic-update path.

    Returns the (image_id, icon identifier) pairs added so :func:`_revert`
    can restore the database — every backend must measure the *same* input.
    """
    count = max(1, int(len(database) * fraction))
    added = []
    for image_id in database.image_ids[:count]:
        before = {icon.identifier for icon in database.get(image_id).picture.icons}
        record = database.add_object(image_id, "bench-box", Rectangle(0.5, 0.5, 2.5, 2.5))
        # Icons are kept in canonical order, so the new icon is not
        # necessarily last: diff the identifier sets to find it.
        (identifier,) = {icon.identifier for icon in record.picture.icons} - before
        added.append((image_id, identifier))
    return added


def _revert(database: ImageDatabase, added) -> None:
    """Undo :func:`_dirty_some` and reset the dirty set."""
    for image_id, identifier in added:
        database.remove_object(image_id, identifier)
    database.clear_dirty()


@pytest.fixture(scope="module", params=DATABASE_SIZES)
def sized_database(request):
    return request.param, _build_database(request.param)


@pytest.mark.benchmark(group="E11-storage-backends")
def test_backend_latency_report(
    sized_database, tmp_path_factory, write_report, write_json_report, benchmark
):
    size, database = sized_database
    root = tmp_path_factory.mktemp(f"bench-storage-{size}")
    rows = []
    timings = {}

    for backend_name in BACKEND_NAMES:
        backend = get_backend(backend_name, shard_count=SHARD_COUNT)
        target = _target_path(root, backend_name, size)

        started = time.perf_counter()
        backend.save(database, target)
        full_save = time.perf_counter() - started

        added = _dirty_some(database, DIRTY_FRACTION)
        started = time.perf_counter()
        backend.save(database, target, incremental=True)
        incremental_save = time.perf_counter() - started

        started = time.perf_counter()
        restored = load_database_from(target)
        load_seconds = time.perf_counter() - started

        # Reloaded content must be exact, dirty edits included.
        assert restored.image_ids == database.image_ids
        sample = database.image_ids[:: max(1, len(database) // 50)]
        for image_id in sample:
            assert restored.get(image_id).bestring == database.get(image_id).bestring

        # Undo the edits so every backend measures the identical database.
        dirtied = len(added)
        _revert(database, added)

        timings[backend_name] = (full_save, incremental_save, load_seconds)
        size_bytes = (
            sum(f.stat().st_size for f in target.rglob("*") if f.is_file())
            if target.is_dir()
            else target.stat().st_size
        )
        rows.append(
            [
                backend_name,
                f"{full_save * 1000:.1f}",
                f"{incremental_save * 1000:.1f}",
                f"{load_seconds * 1000:.1f}",
                f"{size_bytes // 1024}",
            ]
        )

    json_full = timings["json"][0]
    sharded_incremental = timings["sharded"][1]
    speedup = json_full / sharded_incremental if sharded_incremental else float("inf")

    write_report(
        f"E11_storage_backends_{size}",
        [
            f"E11 -- storage backends at {size} images "
            f"({dirtied} dirtied = {DIRTY_FRACTION:.0%} before the incremental save)",
            "",
            *format_table(
                ["backend", "full save ms", "incr save ms", "load ms", "KiB"], rows
            ),
            "",
            f"incremental sharded save vs full JSON rewrite: {speedup:.1f}x",
            "",
            "the sharded backend hashes ids across "
            f"{SHARD_COUNT} binary shard files and rewrites only the shards",
            "holding dirty images; JSON must always rewrite the whole blob.",
        ],
    )
    write_json_report(
        f"E11_storage_backends_{size}",
        {
            "database_size": size,
            "dirty_fraction": DIRTY_FRACTION,
            "shard_count": SHARD_COUNT,
            "incremental_vs_full_json_speedup": round(speedup, 3),
            "backends": {
                name: {
                    "full_save_seconds": round(timing[0], 6),
                    "incremental_save_seconds": round(timing[1], 6),
                    "load_seconds": round(timing[2], 6),
                }
                for name, timing in timings.items()
            },
        },
    )

    if not SMOKE and size == max(DATABASE_SIZES):
        assert speedup >= REQUIRED_SPEEDUP, (
            f"incremental sharded save only {speedup:.1f}x faster than a full "
            f"JSON rewrite (floor: {REQUIRED_SPEEDUP}x)"
        )

    # pytest-benchmark timing: the steady-state incremental sharded save.
    # Dirtying happens in per-round setup and is reverted afterwards, so only
    # the save is timed and the shared database does not drift between rounds.
    sharded = get_backend("sharded", shard_count=SHARD_COUNT)
    target = _target_path(root, "sharded", size)
    sharded.save(database, target)
    pending = []

    def _setup():
        pending.append(_dirty_some(database, DIRTY_FRACTION))
        return (), {}

    def _timed_save():
        sharded.save(database, target, incremental=True)

    benchmark.pedantic(_timed_save, setup=_setup, rounds=3)
    for added in pending:
        _revert(database, added)


@pytest.mark.benchmark(group="E11-storage-backends")
def test_lazy_open_avoids_full_load(sized_database, tmp_path_factory, benchmark):
    """Lazily opening SQLite touches ids only; one get materialises one row."""
    size, database = sized_database
    root = tmp_path_factory.mktemp(f"bench-lazy-{size}")
    from repro.index.backends import SqliteBackend

    backend = SqliteBackend()
    target = root / f"db-{size}.sqlite"
    backend.save(database, target)

    def _open_and_touch_one():
        lazy = backend.open_lazy(target)
        try:
            record = lazy.get(database.image_ids[0])
            assert len(lazy.loaded_ids) == 1
            return record
        finally:
            lazy.close()

    record = benchmark(_open_and_touch_one)
    assert record.bestring == database.get(database.image_ids[0]).bestring


@pytest.mark.benchmark(group="E11-storage-backends")
def test_conversion_round_trip(sized_database, tmp_path_factory, benchmark):
    """json -> sqlite -> sharded -> json preserves every BE-string."""
    size, database = sized_database
    if size > min(DATABASE_SIZES):
        pytest.skip("conversion chain measured at the smallest size only")
    root = tmp_path_factory.mktemp("bench-convert")

    def _chain():
        get_backend("json").save(database, root / "a.json")
        get_backend("sqlite").save(load_database_from(root / "a.json"), root / "b.sqlite")
        get_backend("sharded").save(
            load_database_from(root / "b.sqlite"), root / "c.shards"
        )
        final = load_database_from(root / "c.shards")
        shutil.rmtree(root / "c.shards")
        return final

    final = benchmark(_chain)
    assert final.image_ids == database.image_ids
    for image_id in database.image_ids[:: max(1, len(database) // 20)]:
        assert final.get(image_id).bestring == database.get(image_id).bestring
