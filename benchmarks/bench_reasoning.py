"""E8 (Section 4): the LCS soundness claim and reasoning from BE-strings.

"The LCS string implies that, in query image and database image, all the
spatial relationships of every two objects in the LCS string are the same."
The benchmark re-derives pairwise relations directly from BE-strings (no
geometry), verifies them against the geometric ground truth, and measures, for
a sample of scene pairs, how often the exact-agreement and order-compatibility
forms of the claim hold on the objects the similarity evaluation reports as
fully matched.
"""

import pytest

from benchmarks.conftest import format_table, smoke_scaled
from repro.core.construct import encode_picture
from repro.core.reasoning import (
    pairwise_relations_from_bestring,
    relations_agree,
    relations_compatible,
)
from repro.core.similarity import similarity
from repro.datasets.synthetic import SceneParameters, random_picture
from repro.datasets.transforms_gen import partial_variant, perturbed_variant, scrambled_variant

SAMPLE_PAIRS = smoke_scaled(30, 3)


def _scene(seed, object_count=10):
    parameters = SceneParameters(
        object_count=object_count,
        alignment_probability=0.4,
        labels=tuple(f"obj{index:03d}" for index in range(object_count)),
    )
    return random_picture(seed, parameters)


@pytest.mark.benchmark(group="E8-reasoning")
def test_relations_from_string_match_geometry(benchmark):
    picture = _scene(3)
    bestring = encode_picture(picture)
    relations = benchmark(pairwise_relations_from_bestring, bestring)
    assert relations == picture.pairwise_relations()


@pytest.mark.benchmark(group="E8-reasoning")
def test_lcs_soundness_report(benchmark, write_report):
    categories = {
        "sub-scene query": lambda base, seed: partial_variant(base, keep=6, seed=seed),
        "perturbed pair": lambda base, seed: perturbed_variant(base, seed=seed, amount=0.05),
        "scrambled pair": lambda base, seed: scrambled_variant(base, seed=seed),
        "unrelated pair": lambda base, seed: _scene(seed + 1000),
    }
    rows = []
    for category, make_query in categories.items():
        exact = 0
        compatible = 0
        checked = 0
        for seed in range(SAMPLE_PAIRS):
            base = _scene(seed)
            query_picture = make_query(base, seed)
            query = encode_picture(query_picture)
            database = encode_picture(base)
            matched = similarity(query, database).common_objects
            if len(matched) < 2:
                continue
            checked += 1
            if relations_agree(query, database, matched):
                exact += 1
            if relations_compatible(query, database, matched):
                compatible += 1
        rows.append(
            [
                category,
                checked,
                f"{exact / checked:.2f}" if checked else "n/a",
                f"{compatible / checked:.2f}" if checked else "n/a",
            ]
        )
    write_report(
        "E8_lcs_soundness",
        [
            f"E8 -- pairwise relations of fully matched objects ({SAMPLE_PAIRS} scene pairs per row)",
            "",
            *format_table(
                ["pair type", "pairs checked", "exact agreement", "order compatibility"],
                rows,
            ),
            "",
            "paper: relations of LCS objects are 'the same' in both images.  Exact",
            "agreement holds whenever the matched objects have identical geometry",
            "(sub-scene queries); for perturbed/scrambled pairs the provable guarantee is",
            "order compatibility (no inverted boundary ordering), which holds for every pair.",
        ],
    )

    # Shape assertions: sub-scene queries agree exactly; compatibility is universal.
    assert rows[0][2] == "1.00"
    for row in rows:
        assert row[3] in ("1.00", "n/a")

    # Benchmark the reasoning step on a larger scene.
    big = _scene(1, object_count=40)
    bestring = encode_picture(big)
    benchmark(pairwise_relations_from_bestring, bestring)
