"""E7 (Section 3.2): dynamic insert/delete vs full re-encoding.

The paper stores the BE-string together with its MBR coordinates so that a new
object can be located by binary search and spliced in, and a dropped object
removed directly.  The benchmark compares maintaining an
:class:`~repro.core.editing.IndexedBEString` (binary-search insert + linear
emission without sorting) against re-running ``Convert-2D-Be-String`` from
scratch after every change, across database-image sizes.
"""

import time

import pytest

from benchmarks.conftest import format_table, smoke_scaled
from repro.core.construct import encode_picture
from repro.core.editing import IndexedBEString
from repro.datasets.synthetic import SceneParameters, random_picture
from repro.geometry.rectangle import Rectangle

OBJECT_COUNTS = smoke_scaled((64, 256, 1024), (8, 16))


def _large_picture(object_count, seed=0):
    parameters = SceneParameters(
        object_count=object_count,
        width=10_000.0,
        height=10_000.0,
        maximum_size=60.0,
        alignment_probability=0.2,
        grid=100.0,
        labels=tuple(f"obj{index:05d}" for index in range(object_count)),
    )
    return random_picture(seed, parameters)


def _new_object(index):
    return (f"new{index:03d}", Rectangle(5.0 + index, 7.0 + index, 25.0 + index, 27.0 + index))


@pytest.mark.benchmark(group="E7-dynamic-update")
@pytest.mark.parametrize("object_count", [256, 1024])
def test_indexed_insert_cost(benchmark, object_count):
    picture = _large_picture(object_count)
    indexed = IndexedBEString.from_picture(picture)
    counter = {"next": 0}

    def insert_one():
        index = counter["next"]
        counter["next"] += 1
        identifier, mbr = _new_object(index)
        indexed.insert(f"{identifier}-{index}", mbr)

    benchmark.pedantic(insert_one, rounds=50, iterations=1)
    assert len(indexed) > object_count


@pytest.mark.benchmark(group="E7-dynamic-update")
@pytest.mark.parametrize("object_count", [256])
def test_full_reencode_cost(benchmark, object_count):
    picture = _large_picture(object_count)
    identifier, mbr = _new_object(0)
    grown = picture.add_icon(identifier, mbr)
    bestring = benchmark(encode_picture, grown)
    assert bestring.count_objects() == object_count + 1


@pytest.mark.benchmark(group="E7-dynamic-update")
def test_dynamic_update_report(benchmark, write_report):
    rows = []
    for object_count in OBJECT_COUNTS:
        picture = _large_picture(object_count)

        # Indexed path: insert one object, emit the string.
        indexed = IndexedBEString.from_picture(picture)
        identifier, mbr = _new_object(1)
        started = time.perf_counter()
        indexed.insert(identifier, mbr)
        indexed_insert_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        indexed.to_bestring()
        emit_ms = (time.perf_counter() - started) * 1000

        # Re-encoding path: rebuild the picture and run Algorithm 1 again.
        started = time.perf_counter()
        grown = picture.add_icon(identifier, mbr)
        encode_picture(grown)
        reencode_ms = (time.perf_counter() - started) * 1000

        # Deletion via the index.
        started = time.perf_counter()
        indexed.remove(identifier)
        remove_ms = (time.perf_counter() - started) * 1000

        rows.append(
            [
                object_count,
                f"{indexed_insert_ms:.3f}",
                f"{remove_ms:.3f}",
                f"{emit_ms:.3f}",
                f"{reencode_ms:.3f}",
            ]
        )
    headers = [
        "objects",
        "indexed insert ms",
        "indexed remove ms",
        "emit string ms",
        "full re-encode ms",
    ]
    write_report(
        "E7_dynamic_update",
        [
            "E7 -- maintaining a stored BE-string vs re-encoding the whole image",
            "",
            *format_table(headers, rows),
            "",
            "paper: because the BE-string is ordered data saved with its MBR coordinates,",
            "a new object is placed by binary search and a dropped object removed directly;",
            "no per-update sort of all boundaries is needed.",
        ],
    )

    # Benchmark the emit step (linear, no sorting of unsorted data).
    picture = _large_picture(OBJECT_COUNTS[-1])
    indexed = IndexedBEString.from_picture(picture)
    bestring = benchmark(indexed.to_bestring)
    assert bestring.count_objects() == OBJECT_COUNTS[-1]
