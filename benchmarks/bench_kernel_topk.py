"""E15: the bit-parallel LCS kernel and anytime branch-and-bound top-k.

PR 6 added two ways to spend less time inside the paper's O(mn) modified-LCS
dynamic program (see ``docs/kernels.md``):

* ``kernel="bitparallel"`` — :func:`repro.core.lcskernel.be_lcs_length_bitparallel`
  evaluates a whole DP row in O(1) bigint operations instead of O(n) Python
  cells,
* ``strategy="anytime"`` — the engine scores shortlist survivors in
  descending order of their signature score bound and stops as soon as the
  k-th confirmed score dominates every unvisited bound.

This experiment measures, at 2k and 10k synthetic 16-object images
(smoke: 60/120):

* the serial speedup of the bit-parallel kernel over the two-row reference
  DP on the same axis-string pairs — floor **5x** at the largest size,
* the fraction of admitted candidates an anytime ``limit(10)`` query
  actually scores — ceiling **10%** at 10k images.  Each query scene has
  twelve drop-one-object near-duplicates stored (the realistic top-k
  regime: the query has close matches in the corpus), so the k-th best
  score is high and the signature bounds can separate the near-duplicates
  from the random-scene tail,
* ranking byte-equivalence: every kernel × strategy combination must match
  the reference/exhaustive ranking across exact, invariant, partial and
  predicate-combined query modes (asserted at every size, smoke included).

Results are persisted as ``benchmarks/results/BENCH_E15_kernel_topk_<size>.json``
(the CI bench-smoke job uploads them as artifacts); full-run snapshots live
in ``benchmarks/baselines/``.
"""

import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.core.lcs import be_lcs_length
from repro.core.lcskernel import be_lcs_length_bitparallel
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.iconic.picture import SymbolicPicture
from repro.index.execution import ExecutionOptions
from repro.retrieval.system import RetrievalSystem

DATABASE_SIZES = smoke_scaled((2000, 10000), (60, 120))
#: Queries per timing/fraction pass.
QUERY_COUNT = smoke_scaled(5, 3)
#: Axis-string pairs per kernel timing pass.
PAIR_COUNT = smoke_scaled(300, 40)
#: Minimum serial speedup of the bit-parallel kernel at the largest size.
REQUIRED_KERNEL_SPEEDUP = 5.0
#: Maximum fraction of admitted candidates an anytime top-10 query may score
#: at the largest size.
MAX_EXAMINED_FRACTION = 0.10
#: Stored drop-one-object near-duplicates per query scene.
NEAR_DUPLICATES = 12
#: Images in the (separate, smaller) ranking-equivalence corpus — invariant
#: mode multiplies scoring cost by the eight transformations, so the
#: byte-equivalence sweep runs on its own corpus at every mode.
EQUIVALENCE_SIZE = smoke_scaled(300, 50)

#: 16-object scenes: long enough axis strings that one bigint row operation
#: replaces a substantial number of Python DP cells.
_PARAMETERS = SceneParameters(
    object_count=16,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(48)),
    label_choice="random",
)

_ANYTIME = ExecutionOptions(strategy="anytime", cache=False)
_CONFIGS = [
    ("reference/exhaustive", ExecutionOptions(cache=False)),
    ("bitparallel/exhaustive", ExecutionOptions(kernel="bitparallel", cache=False)),
    ("reference/anytime", ExecutionOptions(strategy="anytime", cache=False)),
    (
        "bitparallel/anytime",
        ExecutionOptions(kernel="bitparallel", strategy="anytime", cache=False),
    ),
]


def _drop_variant(picture: SymbolicPicture, drop: int, name: str) -> SymbolicPicture:
    """``picture`` with its ``drop``-th object removed (a near-duplicate)."""
    objects = [
        (icon.label, icon.mbr) for index, icon in enumerate(picture) if index != drop
    ]
    return SymbolicPicture.build(picture.width, picture.height, objects, name=name)


def _build_system(size: int) -> RetrievalSystem:
    pictures = random_pictures(size, seed=29, parameters=_PARAMETERS, name_prefix="img")
    near_duplicates = [
        _drop_variant(picture, drop, f"near-{index:02d}-{drop:02d}")
        for index, picture in enumerate(pictures[:QUERY_COUNT])
        for drop in range(NEAR_DUPLICATES)
    ]
    return RetrievalSystem.from_pictures(pictures + near_duplicates)


def _axis_pairs(system: RetrievalSystem, count: int):
    """Query/database axis-string pairs sampled from the stored corpus."""
    records = list(system._engine.database)[: count + 1]
    encoded = [record.bestring for record in records]
    pairs = []
    for index in range(count):
        query, database = encoded[index], encoded[(index + 1) % len(encoded)]
        pairs.append((query.x, database.x))
        pairs.append((query.y, database.y))
    return pairs


def _time_lengths(length_function, pairs):
    started = time.perf_counter()
    lengths = [length_function(query, database) for query, database in pairs]
    return time.perf_counter() - started, lengths


def _ranking(results):
    return [
        (r.rank, r.image_id, r.score, r.similarity.transformation.value)
        for r in results
    ]


@pytest.fixture(scope="module", params=DATABASE_SIZES)
def sized_system(request):
    return request.param, _build_system(request.param)


@pytest.mark.benchmark(group="E15-kernel-topk")
def test_kernel_speedup_and_anytime_fraction(
    sized_system, write_report, write_json_report, benchmark
):
    size, system = sized_system

    # --- kernel: serial length-only timing on identical inputs ------------
    pairs = _axis_pairs(system, PAIR_COUNT)
    reference_seconds, reference_lengths = _time_lengths(be_lcs_length, pairs)
    kernel_seconds, kernel_lengths = _time_lengths(be_lcs_length_bitparallel, pairs)
    assert kernel_lengths == reference_lengths  # exact agreement, every pair
    speedup = (
        reference_seconds / kernel_seconds if kernel_seconds else float("inf")
    )

    # --- anytime: examined fraction of a top-10 query ---------------------
    queries = [
        system._engine.database.get(f"img-{index:04d}").picture
        for index in range(QUERY_COUNT)
    ]
    examined_fractions = []
    for picture in queries:
        results = system.query(picture).limit(10).execution(_ANYTIME).execute()
        trace = results.trace
        assert trace.strategy == "anytime"
        assert trace.candidates_examined + trace.bound_skipped == trace.shortlisted
        examined_fractions.append(
            trace.candidates_examined / trace.shortlisted if trace.shortlisted else 0.0
        )
    mean_fraction = sum(examined_fractions) / len(examined_fractions)
    worst_fraction = max(examined_fractions)

    rows = [
        ["reference DP", f"{reference_seconds * 1000:.1f}", "1.0x"],
        ["bit-parallel", f"{kernel_seconds * 1000:.1f}", f"{speedup:.1f}x"],
    ]
    write_report(
        f"E15_kernel_topk_{size}",
        [
            f"E15 -- bit-parallel kernel and anytime top-k at {size} images "
            f"({len(pairs)} axis pairs, {QUERY_COUNT} top-10 queries, "
            f"{NEAR_DUPLICATES} stored near-duplicates per query)",
            "",
            *format_table(["kernel", "total ms", "speedup"], rows),
            "",
            f"kernel speedup floor: {REQUIRED_KERNEL_SPEEDUP}x at the largest size",
            f"anytime examined fraction: mean {mean_fraction:.3f}, "
            f"worst {worst_fraction:.3f} "
            f"(ceiling {MAX_EXAMINED_FRACTION} at the largest size)",
        ],
    )
    write_json_report(
        f"E15_kernel_topk_{size}",
        {
            "database_size": size,
            "axis_pairs": len(pairs),
            "kernel": {
                "reference_seconds": round(reference_seconds, 6),
                "bitparallel_seconds": round(kernel_seconds, 6),
                "speedup": round(speedup, 2),
                "required_speedup": REQUIRED_KERNEL_SPEEDUP,
            },
            "anytime": {
                "queries": QUERY_COUNT,
                "limit": 10,
                "near_duplicates_per_query": NEAR_DUPLICATES,
                "examined_fraction_mean": round(mean_fraction, 4),
                "examined_fraction_worst": round(worst_fraction, 4),
                "max_examined_fraction": MAX_EXAMINED_FRACTION,
            },
        },
    )

    if not SMOKE and size == max(DATABASE_SIZES):
        assert speedup >= REQUIRED_KERNEL_SPEEDUP, (
            f"bit-parallel kernel only {speedup:.1f}x faster than the "
            f"reference DP (floor: {REQUIRED_KERNEL_SPEEDUP}x)"
        )
        assert worst_fraction <= MAX_EXAMINED_FRACTION, (
            f"anytime top-10 examined {worst_fraction:.1%} of admitted "
            f"candidates (ceiling: {MAX_EXAMINED_FRACTION:.0%})"
        )

    # pytest-benchmark timing: one bit-parallel pass over the pairs.
    benchmark.pedantic(
        lambda: [be_lcs_length_bitparallel(q, d) for q, d in pairs[:20]], rounds=3
    )


@pytest.mark.benchmark(group="E15-kernel-topk")
def test_rankings_byte_identical_across_modes(write_report, benchmark):
    """Every kernel × strategy config matches reference/exhaustive exactly."""
    system = _build_system(EQUIVALENCE_SIZE)
    queries = [
        system._engine.database.get(f"img-{index:04d}").picture for index in range(2)
    ]
    labels = sorted(queries[0].labels)
    predicate = f"{labels[0]} left-of {labels[1]}"
    modes = {
        "exact": lambda picture: system.query(picture).limit(10),
        "invariant": lambda picture: system.query(picture).invariant().limit(10),
        "partial": lambda picture: system.query(picture)
        .partial([icon.identifier for icon in list(picture)[:4]])
        .limit(10),
        "predicate": lambda picture: system.query(picture).where(predicate).limit(10),
    }
    checked = 0
    for mode, build in modes.items():
        for picture in queries:
            expected = None
            for label, config in _CONFIGS:
                ranking = _ranking(build(picture).execution(config).execute())
                if expected is None:
                    expected = ranking
                else:
                    assert ranking == expected, f"{mode} diverged under {label}"
                    checked += 1
    write_report(
        f"E15_equivalence_{EQUIVALENCE_SIZE}",
        [
            f"E15 -- ranking byte-equivalence at {EQUIVALENCE_SIZE} images",
            "",
            f"modes: {', '.join(modes)} x configs: "
            f"{', '.join(label for label, _ in _CONFIGS)}",
            f"{checked} config rankings compared against reference/exhaustive: "
            "all byte-identical",
        ],
    )
    picture = queries[0]
    benchmark.pedantic(
        lambda: system.query(picture).limit(10).execution(_CONFIGS[3][1]).execute(),
        rounds=3,
    )
