"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one experiment from EXPERIMENTS.md (E1-E9).
Besides the pytest-benchmark timing table, each module writes a plain-text
report with the rows/series the experiment compares into
``benchmarks/results/<experiment>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Directory the textual experiment reports are written into.
RESULTS_DIR = Path(__file__).parent / "results"

#: Smoke mode (``REPRO_BENCH_SMOKE=1``): the CI benchmark job runs every
#: module at tiny sizes to catch import/API rot without paying for the full
#: experiments.  Modules route their size constants through :func:`smoke_scaled`.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def smoke_scaled(full, smoke):
    """``full`` for the real experiment, ``smoke`` under ``REPRO_BENCH_SMOKE=1``."""
    return smoke if SMOKE else full


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory for experiment report files (created on demand)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(results_dir):
    """Write (or overwrite) one experiment report file and echo it to stdout."""

    def _write(experiment_id: str, lines) -> Path:
        text = "\n".join(lines) + "\n"
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text, encoding="utf-8")
        print(f"\n[{experiment_id}] report written to {path}\n{text}")
        return path

    return _write


@pytest.fixture(scope="session")
def write_json_report(results_dir):
    """Write one machine-readable ``BENCH_<id>.json`` result file.

    The payload is stamped with the run mode so a smoke-sized CI artifact is
    never mistaken for a full experiment; full runs worth keeping are copied
    into ``benchmarks/baselines/`` and committed (``benchmarks/results/`` is
    gitignored scratch space).
    """

    def _write(experiment_id: str, payload: dict) -> Path:
        document = {"experiment": experiment_id, "smoke": SMOKE, **payload}
        path = results_dir / f"BENCH_{experiment_id}.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"\n[{experiment_id}] JSON result written to {path}")
        return path

    return _write


def format_table(headers, rows) -> list:
    """Format a list-of-lists as fixed-width text lines (headers + rows)."""
    table = [[str(cell) for cell in row] for row in [headers] + list(rows)]
    widths = [max(len(row[column]) for row in table) for column in range(len(headers))]
    return [
        "  ".join(cell.ljust(widths[column]) for column, cell in enumerate(row))
        for row in table
    ]
