"""E14: the two-stage signature shortlist at retrieval scale.

The paper's retrieval loop pays an O(mn) LCS dynamic program per candidate;
the two-stage shortlist (:mod:`repro.index.shortlist`) rejects candidates
whose score upper bound cannot clear the query's ``min_score`` — stage 1 from
hashed label bitmaps, stage 2 from relation-pair signatures — so the dynamic
program only runs on images that can actually appear in the results.

This experiment measures, at 2k and 10k synthetic images (smoke: 60/120):

* ``unfiltered`` — ``use_filters=False``: every stored image is scored,
* ``filtered``   — the two-stage shortlist in front of the same scoring loop,

with the score cache off so both sides pay their true compute.  Acceptance
criteria (asserted at the largest size outside smoke mode):

* serial end-to-end speedup of the filtered pass is at least **5x**, and
* rankings are **byte-identical** to the unfiltered scan for every query —
  the shortlist's no-false-negative guarantee (rejection only below a sound
  score upper bound).

A strict-threshold pass over mirrored decoy images (same labels, reversed
layout) additionally proves the *relation* stage prunes what label overlap
alone cannot.
"""

import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.index.database import ImageDatabase
from repro.index.query import Query, QueryEngine

DATABASE_SIZES = smoke_scaled((2000, 10000), (60, 120))
#: Queries per timing pass (each runs filtered and unfiltered).
QUERY_COUNT = smoke_scaled(6, 4)
#: Score threshold of the main timing pass.
MODERATE_MIN_SCORE = 0.35
#: Score threshold of the decoy pass exercising the relation stage.
STRICT_MIN_SCORE = 0.95
#: How many stored images get a mirrored decoy twin.
DECOY_COUNT = smoke_scaled(40, 10)
#: Minimum serial speedup of the filtered pass at the largest size.
REQUIRED_SPEEDUP = 5.0

_PARAMETERS = SceneParameters(
    object_count=8,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(48)),
    label_choice="random",
)


def _build_engine(size: int) -> QueryEngine:
    database = ImageDatabase(name=f"bench-signature-{size}")
    pictures = random_pictures(size, seed=17, parameters=_PARAMETERS, name_prefix="img")
    database.add_pictures(pictures)
    # Mirrored decoys: identical label multisets, reversed x-arrangement.
    # Stage 1 (labels only) cannot tell them apart from their originals; the
    # relation-pair stage can.
    for index, picture in enumerate(pictures[:DECOY_COUNT]):
        database.add_picture(picture.reflect_y().renamed(f"decoy-{index:04d}"))
    return QueryEngine.build(database)


def _queries(engine: QueryEngine, minimum_score: float, use_filters: bool):
    pictures = [
        engine.database.get(f"img-{index:04d}").picture for index in range(QUERY_COUNT)
    ]
    return [
        Query(
            picture=picture,
            minimum_score=minimum_score,
            use_filters=use_filters,
            use_cache=False,
            limit=10,
        )
        for picture in pictures
    ]


def _run_serial(engine: QueryEngine, queries):
    started = time.perf_counter()
    rankings = [
        [
            (result.rank, result.image_id, result.score,
             result.similarity.transformation.value)
            for result in engine.execute(query)
        ]
        for query in queries
    ]
    return time.perf_counter() - started, rankings


@pytest.fixture(scope="module", params=DATABASE_SIZES)
def sized_engine(request):
    return request.param, _build_engine(request.param)


@pytest.mark.benchmark(group="E14-signature-shortlist")
def test_shortlist_speedup_report(sized_engine, write_report, write_json_report, benchmark):
    size, engine = sized_engine

    filtered_seconds, filtered_rankings = _run_serial(
        engine, _queries(engine, MODERATE_MIN_SCORE, use_filters=True)
    )
    unfiltered_seconds, unfiltered_rankings = _run_serial(
        engine, _queries(engine, MODERATE_MIN_SCORE, use_filters=False)
    )

    # The acceptance contract: pruning may never change a ranking.
    assert filtered_rankings == unfiltered_rankings

    engine.shortlist_counters.reset()
    _, strict_rankings = _run_serial(
        engine, _queries(engine, STRICT_MIN_SCORE, use_filters=True)
    )
    statistics = engine.shortlist_counters.statistics
    # Stage 1 prunes the label-overlap tail; stage 2 prunes the mirrored
    # decoys, which share every label with their originals.
    assert statistics.bitmap_rejected > 0
    assert statistics.relation_rejected > 0
    # Every query still finds its own stored image at the strict threshold.
    for index, ranking in enumerate(strict_rankings):
        assert ranking and ranking[0][1] == f"img-{index:04d}"
        assert not any(image_id.startswith("decoy-") for _, image_id, _, _ in ranking)

    speedup = (
        unfiltered_seconds / filtered_seconds if filtered_seconds else float("inf")
    )
    database_size = len(engine.database)
    rows = [
        ["unfiltered", f"{unfiltered_seconds * 1000:.1f}", f"{database_size * len(filtered_rankings)}"],
        [
            "filtered",
            f"{filtered_seconds * 1000:.1f}",
            f"{statistics.admitted}",
        ],
    ]
    write_report(
        f"E14_signature_shortlist_{size}",
        [
            f"E14 -- two-stage signature shortlist at {database_size} images "
            f"({len(filtered_rankings)} serial queries, min_score={MODERATE_MIN_SCORE}, "
            "cache off)",
            "",
            *format_table(["pass", "total ms", "candidates scored*"], rows),
            "",
            f"serial speedup (unfiltered / filtered): {speedup:.1f}x "
            f"(floor: {REQUIRED_SPEEDUP}x at the largest size)",
            "rankings byte-identical across both passes for every query",
            "",
            f"strict pass (min_score={STRICT_MIN_SCORE}) over {DECOY_COUNT} mirrored decoys:",
            f"  bitmap-stage rejections:   {statistics.bitmap_rejected}",
            f"  relation-stage rejections: {statistics.relation_rejected}",
            f"  admitted and scored:       {statistics.admitted}",
            "",
            "*admitted counts are from the strict pass; the unfiltered row",
            " scores every stored image for every query by construction.",
        ],
    )
    write_json_report(
        f"E14_signature_shortlist_{size}",
        {
            "database_size": database_size,
            "queries": len(filtered_rankings),
            "moderate_min_score": MODERATE_MIN_SCORE,
            "strict_min_score": STRICT_MIN_SCORE,
            "unfiltered_seconds": round(unfiltered_seconds, 6),
            "filtered_seconds": round(filtered_seconds, 6),
            "speedup": round(speedup, 3),
            "strict_bitmap_rejected": statistics.bitmap_rejected,
            "strict_relation_rejected": statistics.relation_rejected,
            "strict_admitted": statistics.admitted,
        },
    )

    if not SMOKE and size == max(DATABASE_SIZES):
        assert speedup >= REQUIRED_SPEEDUP, (
            f"two-stage shortlist only {speedup:.1f}x faster than the "
            f"unfiltered scan (floor: {REQUIRED_SPEEDUP}x)"
        )

    # pytest-benchmark timing: one filtered query, steady state.
    query = _queries(engine, MODERATE_MIN_SCORE, use_filters=True)[0]
    benchmark.pedantic(lambda: engine.execute(query), rounds=3)


@pytest.mark.benchmark(group="E14-signature-shortlist")
def test_shortlist_overhead_is_bounded_without_min_score(sized_engine, benchmark):
    """At ``min_score=0`` the shortlist takes its fast path: no bound math."""
    size, engine = sized_engine
    if size > min(DATABASE_SIZES):
        pytest.skip("fast-path overhead measured at the smallest size only")
    query = _queries(engine, 0.0, use_filters=True)[0]
    outcome = engine.shortlist(query)
    assert outcome.bitmap_rejected == 0
    assert outcome.relation_rejected == 0
    assert len(outcome.candidates) == outcome.inverted_candidates
    benchmark(lambda: engine.candidate_ids(query))
