"""E5 (Sections 4-5): retrieval quality with partial / uncertain queries.

The corpus plants, for each base scene, an identical copy, a perturbed copy
and a partial copy (relevant) plus a scrambled copy and random distractors
(not relevant); queries are partial views of the base scenes.  The report
compares the paper's BE-string + modified-LCS retrieval against the
clique-based type-0/1 baselines on precision/recall/AP, and the benchmark
times one full query evaluation over the corpus.
"""

import pytest

from benchmarks.conftest import format_table
from repro.baselines.type_similarity import SimilarityType
from repro.core.similarity import Combination, Normalization, SimilarityPolicy
from repro.datasets.corpus import planted_retrieval_corpus
from repro.retrieval.evaluation import (
    be_string_method,
    evaluate_corpus,
    type_similarity_method,
)

METRICS = ("precision@1", "precision@3", "recall@3", "average_precision")


@pytest.fixture(scope="module")
def corpus():
    return planted_retrieval_corpus(seed=42, base_scene_count=3, distractors_per_scene=6)


@pytest.fixture(scope="module")
def report(corpus):
    methods = {
        "be_lcs (query norm, mean)": be_string_method(),
        "be_lcs (dice, min)": be_string_method(
            SimilarityPolicy(normalization=Normalization.DICE, combination=Combination.MIN)
        ),
        "type0_clique": type_similarity_method(SimilarityType.TYPE_0),
        "type1_clique": type_similarity_method(SimilarityType.TYPE_1),
    }
    return evaluate_corpus(corpus, methods, cutoffs=(1, 3, 5))


@pytest.mark.benchmark(group="E5-retrieval-quality")
def test_retrieval_quality_report(benchmark, corpus, report, write_report):
    rows = []
    for name, evaluation in sorted(report.methods.items()):
        aggregated = evaluation.aggregate()
        rows.append(
            [name]
            + [f"{aggregated[metric]:.3f}" for metric in METRICS]
            + [f"{aggregated['total_seconds']:.2f}s"]
        )
    write_report(
        "E5_retrieval_quality",
        [
            f"E5 -- partial-query retrieval quality on corpus {corpus.name} "
            f"({corpus.summary()['database_images']} images, {corpus.summary()['queries']} queries)",
            "",
            *format_table(["method"] + list(METRICS) + ["wall time"], rows),
            "",
            "paper: LCS-based evaluation retrieves full AND partial matches; the planted",
            "copies should dominate the top ranks for every policy, at a fraction of the",
            "clique baseline's cost.",
        ],
    )

    be_aggregated = report.methods["be_lcs (query norm, mean)"].aggregate()
    assert be_aggregated["precision@1"] == 1.0
    assert be_aggregated["average_precision"] >= 0.7

    # Benchmark one full corpus evaluation with the default policy.
    method = be_string_method()
    query = corpus.queries[0]
    benchmark(method, query, corpus.database_pictures)


@pytest.mark.benchmark(group="E5-retrieval-quality")
def test_single_query_latency(benchmark, corpus):
    from repro.retrieval.system import RetrievalSystem

    system = RetrievalSystem.from_pictures(corpus.database_pictures)
    query = corpus.queries[0]
    results = benchmark(
        lambda: system.query(query).limit(10).execution(cache=False).execute()
    )
    assert results
