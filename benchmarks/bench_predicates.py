"""E19: graded predicate scoring vs the crisp conjunction fast path.

PR 10 unified the boolean predicate bolt-on and the similarity path into one
graded scoring pipeline (see ``docs/predicates.md``): a ``where()`` clause now
parses a full boolean grammar (``not``/``or``/parens, ``[fuzzy]``/``[w=N]``
annotations) and evaluates to a satisfaction degree per image, while plain
crisp conjunctions keep the historical fraction-satisfied fast path
byte-identical.

This experiment measures, at 2k and 10k synthetic 8-object images
(smoke: 60/120):

* the overhead of the graded pipeline: the same conjunction strings run once
  through the crisp fast path and once with a ``[w=2]`` annotation (graded
  tree machinery, crisp leaves — so :func:`~repro.index.shortlist.
  tree_degree_bound` prunes through the identical label postings and both
  passes evaluate the identical image set) — ceiling **2x** at the largest
  size,
* the shortlist admit-rate of predicate queries: the fraction of stored
  images the label postings actually evaluate (the rest are settled as
  synthesised zero matches without touching their boundary ranks).  Pruning
  must stay engaged on the graded path — every weighted query must prune at
  least one image, to exactly the crisp query's evaluated set,
* the cost of the queries only the graded path can express — fuzzified
  conjunctions and ``not``/``or`` trees.  Their fail-open bounds admit every
  image by design (``docs/predicates.md``), which the traces assert,
* soundness at scale: the filtered graded ranking must equal a
  ``use_filters=False`` full scan — image ids, degrees and per-leaf degrees
  (asserted at every size, smoke included).

Results are persisted as ``benchmarks/results/BENCH_E19_predicates_<size>.json``
(the CI bench-smoke job uploads them as artifacts); full-run snapshots live
in ``benchmarks/baselines/``.
"""

import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.retrieval.system import RetrievalSystem

DATABASE_SIZES = smoke_scaled((2000, 10000), (60, 120))
#: Timing passes over each query set (summed; keeps the ratio stable).
REPEATS = smoke_scaled(3, 1)
#: Maximum graded/crisp wall-clock ratio at the largest size.
MAX_GRADED_OVERHEAD = 2.0

#: 8 objects drawn randomly from 48 labels: most images contain neither
#: label of a given predicate pair, so the label postings have plenty to
#: prune — the regime the admit-rate metric is about.
_PARAMETERS = SceneParameters(
    object_count=8,
    labels=tuple(f"class{index:02d}" for index in range(48)),
    label_choice="random",
)

#: Crisp conjunction strings (the historical fast path).
CONJUNCTIONS = (
    "class00 left-of class01",
    "class02 above class03",
    "class04 left-of class05 and class06 above class07",
    "class08 above class09 and class10 left-of class11",
)
#: The graded counterparts: one non-unit weight defeats the crisp fast path
#: and routes the identical leaves through the graded tree machinery — label
#: pruning and the evaluated image set stay byte-identical to the crisp pass.
WEIGHTED = tuple(f"{text} [w=2]" for text in CONJUNCTIONS)
#: Queries only the graded path can express.  Fuzzy leaves and ``not`` fail
#: open in the degree bound, so these admit every stored image by design.
BOOLEAN_QUERIES = (
    "not class00 left-of class01 or class02 above class03 [fuzzy]",
    "not (class04 above class05 [fuzzy w=2] and class06 left-of class07)",
)


def _build_system(size: int) -> RetrievalSystem:
    pictures = random_pictures(size, seed=31, parameters=_PARAMETERS, name_prefix="img")
    return RetrievalSystem.from_pictures(pictures)


def _time_queries(system: RetrievalSystem, texts, fuzzy: bool = False):
    """Total wall-clock of ``REPEATS`` passes over ``texts``, plus the traces."""
    traces = []
    started = time.perf_counter()
    for _ in range(REPEATS):
        for text in texts:
            results = system.query().where(text, fuzzy=fuzzy).limit(None).execute()
            traces.append(results.trace)
    return time.perf_counter() - started, traces


def _graded_key(results):
    return [(m.image_id, m.score, tuple(sorted(m.leaf_degrees))) for m in results]


@pytest.fixture(scope="module", params=DATABASE_SIZES)
def sized_system(request):
    return request.param, _build_system(request.param)


@pytest.mark.benchmark(group="E19-predicates")
def test_graded_overhead_and_admit_rate(
    sized_system, write_report, write_json_report, benchmark
):
    size, system = sized_system

    # --- graded vs crisp on identical leaves, identical pruning -----------
    crisp_seconds, crisp_traces = _time_queries(system, CONJUNCTIONS)
    graded_seconds, graded_traces = _time_queries(system, WEIGHTED)
    fuzzy_seconds, fuzzy_traces = _time_queries(system, CONJUNCTIONS, fuzzy=True)
    boolean_seconds, boolean_traces = _time_queries(system, BOOLEAN_QUERIES)
    overhead = graded_seconds / crisp_seconds if crisp_seconds else float("inf")

    # --- admit-rate: label pruning must stay engaged on the graded path ---
    admit_rates = []
    for crisp, graded in zip(crisp_traces, graded_traces):
        assert graded.predicate_pruned > 0, "label pruning disengaged"
        assert graded.predicate_evaluated + graded.predicate_pruned == size
        # Crisp leaves prune through the identical postings either way.
        assert graded.predicate_evaluated == crisp.predicate_evaluated
        admit_rates.append(graded.predicate_evaluated / size)
    mean_rate = sum(admit_rates) / len(admit_rates)
    worst_rate = max(admit_rates)
    # Fuzzy leaves and ``not`` fail open in the degree bound: every image is
    # evaluated, none is settled from the postings alone.
    for trace in fuzzy_traces + boolean_traces:
        assert trace.predicate_evaluated == size
        assert trace.predicate_pruned == 0

    # --- soundness at scale: filtered == unfiltered full scan -------------
    engine = system._engine
    for text in (WEIGHTED[2], BOOLEAN_QUERIES[0], BOOLEAN_QUERIES[1]):
        spec = system.query().where(text).limit(None).spec()
        filtered = engine.execute_spec(spec)
        full = engine.execute_spec(spec.with_overrides(use_filters=False))
        assert _graded_key(filtered.results) == _graded_key(full.results)

    rows = [
        ["crisp conjunctions", f"{crisp_seconds * 1000:.1f}", "1.00x"],
        ["graded (weighted)", f"{graded_seconds * 1000:.1f}", f"{overhead:.2f}x"],
        ["graded (fuzzified)", f"{fuzzy_seconds * 1000:.1f}", "--"],
        ["boolean not/or trees", f"{boolean_seconds * 1000:.1f}", "--"],
    ]
    write_report(
        f"E19_predicates_{size}",
        [
            f"E19 -- graded predicate scoring vs the crisp fast path at {size} "
            f"images ({len(CONJUNCTIONS)} conjunctions, {REPEATS} pass(es))",
            "",
            *format_table(["query set", "total ms", "vs crisp"], rows),
            "",
            f"graded overhead ceiling: {MAX_GRADED_OVERHEAD}x at the largest "
            f"size (identical leaves, identical label pruning)",
            f"label-postings admit rate: mean {mean_rate:.3f}, "
            f"worst {worst_rate:.3f} (graded == crisp evaluated set)",
            "fuzzy/not queries admit every image (fail-open bounds, asserted)",
            "filtered graded rankings == use_filters=False full scans "
            "(degrees included)",
        ],
    )
    write_json_report(
        f"E19_predicates_{size}",
        {
            "database_size": size,
            "conjunctions": len(CONJUNCTIONS),
            "boolean_queries": len(BOOLEAN_QUERIES),
            "repeats": REPEATS,
            "timing": {
                "crisp_seconds": round(crisp_seconds, 6),
                "graded_seconds": round(graded_seconds, 6),
                "fuzzy_seconds": round(fuzzy_seconds, 6),
                "boolean_seconds": round(boolean_seconds, 6),
                "overhead_ratio": round(overhead, 3),
                "max_overhead_ratio": MAX_GRADED_OVERHEAD,
            },
            "shortlist": {
                "admit_rate_mean": round(mean_rate, 4),
                "admit_rate_worst": round(worst_rate, 4),
            },
        },
    )

    if not SMOKE and size == max(DATABASE_SIZES):
        assert overhead <= MAX_GRADED_OVERHEAD, (
            f"graded evaluation cost {overhead:.2f}x the crisp fast path "
            f"(ceiling: {MAX_GRADED_OVERHEAD}x)"
        )

    # pytest-benchmark timing: one graded boolean query over the corpus.
    benchmark.pedantic(
        lambda: system.query().where(BOOLEAN_QUERIES[0]).limit(None).execute(),
        rounds=3,
    )
