"""E13: the retrieval daemon vs one-shot CLI queries -- warm-server speedup.

The service exists because a one-shot ``repro search`` pays full process
start-up (interpreter boot, imports) plus a complete database load for every
single query, while a warm daemon pays both once and then answers from live
indexes and a warm score cache.  This experiment measures that gap honestly:

* **One-shot baseline** -- ``python -m repro.cli search`` as a subprocess,
  timed end to end per query, exactly what cron-style scripting does today.
* **Warm server** -- the same queries over HTTP against one ``repro serve``
  daemon (in-process, ephemeral port), single-client closed loop.
* **Concurrency** -- a closed-loop multi-client run (each client waits for
  its response before sending the next) showing aggregate throughput.

Rankings returned over the wire are asserted byte-identical to in-process
``QueryEngine.execute_spec`` output, and the warm server must beat the
per-query process start-up path by at least 5x -- at smoke sizes too, since
start-up cost dominates regardless of database size.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from benchmarks.conftest import format_table, smoke_scaled
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.retrieval.system import RetrievalSystem
from repro.service.client import ServiceClient
from repro.service.server import create_server

DATABASE_SIZE = smoke_scaled(300, 24)
#: One-shot CLI invocations (each pays ~full interpreter + load start-up).
CLI_QUERIES = smoke_scaled(5, 2)
#: Warm-server single-client requests (closed loop).
SERVER_REQUESTS = smoke_scaled(60, 8)
#: Closed-loop concurrent clients x requests each.
CLIENTS = smoke_scaled(4, 2)
REQUESTS_PER_CLIENT = smoke_scaled(20, 4)

#: The warm server must beat per-query process start-up by this factor.
REQUIRED_SPEEDUP = 5.0

_PARAMETERS = SceneParameters(
    object_count=8,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(40)),
    label_choice="random",
)

_REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A saved database, its query scenes, and a warm in-process reference."""
    root = tmp_path_factory.mktemp("bench-service")
    pictures = random_pictures(DATABASE_SIZE, seed=13, parameters=_PARAMETERS, name_prefix="img")
    system = RetrievalSystem.from_pictures(pictures)
    database_path = root / "bench-db.json"
    system.save(database_path)

    queries = [pictures[index % len(pictures)] for index in range(max(CLI_QUERIES, 8))]
    query_path = root / "query.json"
    query_path.write_text(json.dumps(queries[0].to_dict()), encoding="utf-8")
    return system, database_path, query_path, queries


def _cli_environment():
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    return environment


def _one_shot_cli_seconds(database_path, query_path):
    """Mean end-to-end seconds of one ``repro search`` subprocess."""
    environment = _cli_environment()
    command = [
        sys.executable, "-m", "repro.cli", "search",
        str(database_path), str(query_path), "--top", "5",
    ]
    started = time.perf_counter()
    for _ in range(CLI_QUERIES):
        completed = subprocess.run(
            command, env=environment, capture_output=True, text=True, check=False
        )
        assert completed.returncode == 0, completed.stderr
    return (time.perf_counter() - started) / CLI_QUERIES


@pytest.mark.benchmark(group="E13-service")
def test_warm_server_vs_one_shot_cli(benchmark, write_report, write_json_report, workload):
    system, database_path, query_path, queries = workload

    cli_seconds = _one_shot_cli_seconds(database_path, query_path)

    served_system = RetrievalSystem.from_file(database_path)
    with create_server(served_system, port=0, workers=CLIENTS + 1).start_background() as server:
        client = ServiceClient(port=server.port)
        client.wait_until_healthy(timeout=10)

        # Correctness first: every wire ranking is byte-identical to the
        # in-process pipeline over the same database.
        for query in queries[:4]:
            served = client.search(query, limit=5)
            expected = system.query(query).limit(5).execute().to_dicts()
            assert served["results"] == expected, "wire ranking diverged from in-process"

        # Warm single-client closed loop.
        started = time.perf_counter()
        for index in range(SERVER_REQUESTS):
            client.search(queries[index % len(queries)], limit=5)
        single_seconds = (time.perf_counter() - started) / SERVER_REQUESTS

        # Closed-loop multi-client throughput.
        barrier = threading.Barrier(CLIENTS)

        def closed_loop():
            worker = ServiceClient(port=server.port)
            barrier.wait(timeout=10)
            for index in range(REQUESTS_PER_CLIENT):
                worker.search(queries[index % len(queries)], limit=5)

        threads = [threading.Thread(target=closed_loop, daemon=True) for _ in range(CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        concurrent_wall = time.perf_counter() - started
        total_requests = CLIENTS * REQUESTS_PER_CLIENT
        concurrent_throughput = total_requests / concurrent_wall

        stats = client.stats()

        # Steady-state warm request timing for the pytest-benchmark table.
        benchmark(lambda: client.search(queries[0], limit=5))

    speedup = cli_seconds / single_seconds
    rows = [
        ["one-shot CLI (process start-up + load)", f"{cli_seconds * 1000:.1f}", "1.00x"],
        [
            "warm server, single client",
            f"{single_seconds * 1000:.1f}",
            f"{speedup:.1f}x",
        ],
        [
            f"warm server, {CLIENTS} closed-loop clients",
            f"{concurrent_wall / total_requests * 1000:.1f}",
            f"{concurrent_throughput:.0f} req/s aggregate",
        ],
    ]
    write_report(
        "E13_service",
        [
            f"E13 -- repro serve vs one-shot CLI over {DATABASE_SIZE} synthetic images "
            f"({CLI_QUERIES} CLI runs, {SERVER_REQUESTS} warm requests, "
            f"{CLIENTS}x{REQUESTS_PER_CLIENT} concurrent)",
            "",
            *format_table(["path", "ms/query", "vs CLI"], rows),
            "",
            f"warm-server speedup over per-query process start-up: {speedup:.1f}x "
            f"(floor {REQUIRED_SPEEDUP:.0f}x)",
            f"server-side p50/p95 latency: {stats['latency_ms'].get('p50', 0)} / "
            f"{stats['latency_ms'].get('p95', 0)} ms; "
            f"score-cache hit rate {stats['cache']['hit_rate']:.0%}",
            "",
            "every query over the wire returned rankings byte-identical to the",
            "in-process engine; the daemon amortises interpreter start-up, database",
            "load and index construction across the whole request stream.",
        ],
    )
    write_json_report(
        "E13_service",
        {
            "database_size": DATABASE_SIZE,
            "cli_runs": CLI_QUERIES,
            "server_requests": SERVER_REQUESTS,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "cli_seconds_per_query": round(cli_seconds, 6),
            "warm_seconds_per_query": round(single_seconds, 6),
            "warm_speedup": round(speedup, 3),
            "concurrent_requests_per_second": round(concurrent_throughput, 2),
            "server_p50_ms": stats["latency_ms"].get("p50", 0),
            "server_p95_ms": stats["latency_ms"].get("p95", 0),
            "score_cache_hit_rate": stats["cache"]["hit_rate"],
        },
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm server only {speedup:.1f}x faster than one-shot CLI "
        f"(floor {REQUIRED_SPEEDUP:.0f}x)"
    )


@pytest.mark.benchmark(group="E13-service")
def test_backpressure_rejects_do_not_crash_the_daemon(workload):
    """Overload produces clean 503s and the daemon keeps serving after."""
    from repro.service.client import ServiceError
    from repro.service.server import RetrievalService

    system, _, _, queries = workload
    service = RetrievalService(system, workers=1, backlog=0, retry_after=0.01)
    acquired = service._admission.acquire(blocking=False)
    assert acquired
    try:
        status, _, headers = service.dispatch(
            "POST", "/search", {"scene": queries[0].to_dict()}
        )
        assert status == 503 and "Retry-After" in headers
    finally:
        service._admission.release()
    status, body, _ = service.dispatch("POST", "/search", {"scene": queries[0].to_dict()})
    assert status == 200 and body["results"]
    assert service.stats()["rejected_overload"] == 1
    # ServiceError carries the hint clients should honour.
    assert ServiceError("x", status=503, retry_after=0.01).retry_after == 0.01
