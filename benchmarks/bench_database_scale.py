"""E9: end-to-end database retrieval throughput and the index-filter ablation.

Scales the image database from 50 to 800 synthetic images and measures the
latency of one ranked query under the paper's method, with and without the
auxiliary candidate filters (inverted label index + signature filter), and --
on a smaller database, since its cost grows much faster -- the clique-based
baseline ranking the same images.
"""

import time

import pytest

from benchmarks.conftest import format_table, smoke_scaled
from repro.baselines.type_similarity import SimilarityType, type_similarity
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.retrieval.system import RetrievalSystem

DATABASE_SIZES = smoke_scaled((50, 200, 800), (10, 20, 40))
CLIQUE_BASELINE_SIZE = 50

#: A wide vocabulary with random label assignment: images share only a few
#: labels with a random query, so the signature filter has real pruning power.
_PARAMETERS = SceneParameters(
    object_count=10,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(60)),
    label_choice="random",
)

#: Overlap threshold used for the "filtered" configuration of the ablation: a
#: candidate must share at least a third of the query's icon labels.
_SIGNATURE_THRESHOLD = 0.34


def _database(size, seed=0):
    return random_pictures(size, seed=seed, parameters=_PARAMETERS, name_prefix=f"db{size}")


@pytest.fixture(scope="module")
def largest_system():
    pictures = _database(DATABASE_SIZES[-1])
    system = RetrievalSystem.from_pictures(
        pictures, minimum_signature_overlap=_SIGNATURE_THRESHOLD
    )
    return system, pictures


@pytest.mark.benchmark(group="E9-database-scale")
def test_query_latency_with_filters(benchmark, largest_system):
    system, pictures = largest_system
    query = pictures[17]
    results = benchmark(
        lambda: system.query(query).limit(10).execution(cache=False).execute()
    )
    assert results[0].image_id == query.name


@pytest.mark.benchmark(group="E9-database-scale")
def test_query_latency_without_filters(benchmark, largest_system):
    system, pictures = largest_system
    query = pictures[17]
    results = benchmark(
        lambda: system.query(query).limit(10).execution(shortlist=False).execution(cache=False).execute()
    )
    assert results[0].image_id == query.name


@pytest.mark.benchmark(group="E9-database-scale")
def test_database_scale_report(benchmark, write_report):
    rows = []
    for size in DATABASE_SIZES:
        pictures = _database(size)
        started = time.perf_counter()
        system = RetrievalSystem.from_pictures(
            pictures, minimum_signature_overlap=_SIGNATURE_THRESHOLD
        )
        build_seconds = time.perf_counter() - started

        query = pictures[size // 3]
        started = time.perf_counter()
        filtered = system.query(query).limit(10).execution(cache=False).execute()
        filtered_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        unfiltered = system.query(query).limit(10).execution(shortlist=False).execution(cache=False).execute()
        unfiltered_ms = (time.perf_counter() - started) * 1000

        clique_ms = None
        if size <= CLIQUE_BASELINE_SIZE:
            started = time.perf_counter()
            scored = sorted(
                (
                    (picture.name, type_similarity(query, picture, SimilarityType.TYPE_1).similarity)
                    for picture in pictures
                ),
                key=lambda item: -item[1],
            )
            clique_ms = (time.perf_counter() - started) * 1000
            assert scored[0][0] == query.name

        assert filtered[0].image_id == query.name
        assert unfiltered[0].image_id == query.name
        rows.append(
            [
                size,
                f"{build_seconds:.2f}",
                f"{filtered_ms:.1f}",
                f"{unfiltered_ms:.1f}",
                f"{clique_ms:.1f}" if clique_ms is not None else "-",
            ]
        )

    write_report(
        "E9_database_scale",
        [
            "E9 -- end-to-end retrieval over synthetic databases (10 icons per image)",
            "",
            *format_table(
                [
                    "images",
                    "build s",
                    "query ms (filtered)",
                    "query ms (all images)",
                    "type-1 clique ms (query all)",
                    ],
                rows,
            ),
            "",
            "paper shape: the LCS evaluation keeps single-query latency modest even when",
            "every stored image is scored; the label/signature filters (an engineering",
            "addition, see DESIGN.md) cut the candidate set further; the clique baseline",
            "is already far more expensive at 50 images.",
        ],
    )

    # Benchmark the query path on the mid-sized database.
    pictures = _database(DATABASE_SIZES[1])
    system = RetrievalSystem.from_pictures(pictures)
    query = pictures[11]
    benchmark(lambda: system.query(query).limit(10).execution(cache=False).execute())
