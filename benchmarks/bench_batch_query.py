"""E10: batch query throughput -- serial loop vs the batch subsystem.

A production deployment of the paper's retrieval model serves query *streams*,
and real streams repeat themselves: popular scenes are queried again and
again.  This experiment builds a 1000-image synthetic database (the E9 wide
vocabulary, so the candidate filters have real pruning power) and replays a
stream of 100 queries drawn from 25 distinct pictures, comparing

* ``serial``    -- one ``system.query(...).execution(cache=False).execute()`` call per
  query (the score cache bypassed, i.e. the pre-batch serial cost model),
* ``batch cold`` -- :meth:`RetrievalSystem.query_batch` on an empty score
  cache (4 workers), where deduplication alone collapses the stream to 25
  evaluations, and
* ``batch warm`` -- the same batch again, now answered from the LRU score
  cache.

Ranked results are asserted byte-identical (same ``describe()`` lines) across
all three paths, and the cold batch must be at least 2x the serial throughput
at full scale.
"""

import time

import pytest

from benchmarks.conftest import SMOKE, format_table, smoke_scaled
from repro.datasets.synthetic import SceneParameters, random_pictures
from repro.retrieval.system import RetrievalSystem

DATABASE_SIZE = smoke_scaled(1000, 30)
QUERY_COUNT = smoke_scaled(100, 8)
UNIQUE_QUERIES = smoke_scaled(25, 4)
WORKERS = 4

#: Minimum cold-batch speedup over the serial loop (acceptance criterion).
REQUIRED_SPEEDUP = 2.0

_PARAMETERS = SceneParameters(
    object_count=10,
    alignment_probability=0.3,
    labels=tuple(f"class{index:02d}" for index in range(60)),
    label_choice="random",
)

_SIGNATURE_THRESHOLD = 0.34


@pytest.fixture(scope="module")
def workload():
    pictures = random_pictures(
        DATABASE_SIZE, seed=0, parameters=_PARAMETERS, name_prefix="img"
    )
    system = RetrievalSystem.from_pictures(
        pictures, minimum_signature_overlap=_SIGNATURE_THRESHOLD
    )
    stride = max(1, DATABASE_SIZE // UNIQUE_QUERIES)
    unique = [pictures[index * stride] for index in range(UNIQUE_QUERIES)]
    queries = [unique[index % UNIQUE_QUERIES] for index in range(QUERY_COUNT)]
    return system, queries


def _result_lines(batches):
    return [[result.describe() for result in results] for results in batches]


def _batch(system, queries, workers=WORKERS, executor="thread"):
    specs = [system.query(query).limit(10) for query in queries]
    return system.query_batch(specs, workers=workers, executor=executor)


@pytest.mark.benchmark(group="E10-batch-query")
def test_batch_throughput_report(benchmark, write_report, write_json_report, workload):
    system, queries = workload
    system._engine.score_cache.clear()

    started = time.perf_counter()
    serial = [
        system.query(query).limit(10).execution(cache=False).execute() for query in queries
    ]
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cold = _batch(system, queries)
    cold_seconds = time.perf_counter() - started
    cold_report = system.last_batch_report

    started = time.perf_counter()
    warm = _batch(system, queries)
    warm_seconds = time.perf_counter() - started
    warm_report = system.last_batch_report

    # Byte-identical ranked results on every path, tie-breaks included.
    assert _result_lines(cold) == _result_lines(serial)
    assert _result_lines(warm) == _result_lines(serial)

    cold_speedup = serial_seconds / cold_seconds if cold_seconds else float("inf")
    warm_speedup = serial_seconds / warm_seconds if warm_seconds else float("inf")
    rows = [
        ["serial loop", f"{serial_seconds:.2f}", f"{len(queries) / serial_seconds:.1f}", "1.00x", "-"],
        [
            f"batch cold ({WORKERS} workers)",
            f"{cold_seconds:.2f}",
            f"{len(queries) / cold_seconds:.1f}",
            f"{cold_speedup:.2f}x",
            f"{cold_report.cache_hit_rate:.0%}",
        ],
        [
            f"batch warm ({WORKERS} workers)",
            f"{warm_seconds:.2f}",
            f"{len(queries) / warm_seconds:.1f}",
            f"{warm_speedup:.2f}x",
            f"{warm_report.cache_hit_rate:.0%}",
        ],
    ]
    write_report(
        "E10_batch_query",
        [
            f"E10 -- batch retrieval over {DATABASE_SIZE} synthetic images, "
            f"{len(queries)} queries ({UNIQUE_QUERIES} distinct)",
            "",
            *format_table(["path", "seconds", "queries/s", "speedup", "cache hits"], rows),
            "",
            f"cold batch: {cold_report.describe()}",
            f"warm batch: {warm_report.describe()}",
            "",
            "the batch engine deduplicates repeated queries into one evaluation each,",
            "shares the inverted-index/signature shortlist per unique query, scores",
            "cache misses on a worker pool, and serves repeat batches from the LRU",
            "score cache -- with ranked results byte-identical to the serial loop.",
        ],
    )
    write_json_report(
        "E10_batch_query",
        {
            "database_size": DATABASE_SIZE,
            "queries": len(queries),
            "unique_queries": UNIQUE_QUERIES,
            "workers": WORKERS,
            "serial_seconds": round(serial_seconds, 6),
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "cold_speedup": round(cold_speedup, 3),
            "warm_speedup": round(warm_speedup, 3),
            "warm_cache_hit_rate": warm_report.cache_hit_rate,
        },
    )

    assert cold_report.unique_evaluations == UNIQUE_QUERIES
    assert warm_report.scored == 0 and warm_report.cache_hit_rate == 1.0
    if not SMOKE:  # tiny smoke sizes are all overhead, no signal
        assert cold_speedup >= REQUIRED_SPEEDUP, (
            f"cold batch speedup {cold_speedup:.2f}x below the {REQUIRED_SPEEDUP}x floor"
        )

    # pytest-benchmark timing: the steady-state (warm cache) batch path.
    benchmark(_batch, system, queries)


@pytest.mark.benchmark(group="E10-batch-query")
def test_cold_batch_latency(benchmark, workload):
    system, queries = workload

    def _cold_batch():
        system._engine.score_cache.clear()
        return _batch(system, queries)

    results = benchmark(_cold_batch)
    assert len(results) == len(queries)


@pytest.mark.benchmark(group="E10-batch-query")
def test_executors_agree(benchmark, workload):
    system, queries = workload
    sample = queries[: min(len(queries), 10)]
    expected = _result_lines(
        system.query(query).limit(10).execution(cache=False).execute() for query in sample
    )
    for executor in ("serial", "thread", "process"):
        system._engine.score_cache.clear()
        batches = _batch(system, sample, workers=2, executor=executor)
        assert _result_lines(batches) == expected, f"{executor} results diverged"
    system._engine.score_cache.clear()
    benchmark(_batch, system, sample, 2, "serial")
