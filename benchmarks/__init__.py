"""Benchmark harness: one module per experiment in EXPERIMENTS.md (E1-E9)."""
