"""E6 (Section 4): retrieval of rotations and reflections by string reversal.

Each base scene is planted in the database only as one rotated or reflected
copy.  Plain retrieval (no invariance) cannot give those copies a full-score
match; the paper's transformation-invariant retrieval -- the query expanded
into its six string-reversal variants -- retrieves every planted copy at rank
1 with score 1.0.  The benchmark also times the string-level transform itself
against geometric re-encoding, the micro-claim behind the approach.
"""

import pytest

from benchmarks.conftest import format_table
from repro.core.construct import encode_picture
from repro.core.transforms import Transformation, transform
from repro.datasets.corpus import transformation_corpus
from repro.datasets.scenes import office_scene
from repro.retrieval.evaluation import be_string_method, evaluate_corpus


@pytest.fixture(scope="module")
def corpus():
    return transformation_corpus(seed=7, base_scene_count=6, distractors_per_scene=4)


@pytest.mark.benchmark(group="E6-transforms")
def test_transformation_retrieval_report(benchmark, corpus, write_report):
    report = evaluate_corpus(
        corpus,
        {
            "plain be_lcs": be_string_method(invariant=False),
            "invariant be_lcs": be_string_method(invariant=True),
        },
        cutoffs=(1, 3),
    )
    rows = []
    for name, evaluation in sorted(report.methods.items()):
        aggregated = evaluation.aggregate()
        rows.append(
            [
                name,
                f"{aggregated['precision@1']:.3f}",
                f"{aggregated['average_precision']:.3f}",
                f"{aggregated['reciprocal_rank']:.3f}",
                f"{aggregated['total_seconds']:.2f}s",
            ]
        )
    write_report(
        "E6_transform_retrieval",
        [
            f"E6 -- retrieval of rotated/reflected copies ({corpus.summary()['database_images']} images, "
            f"{corpus.summary()['queries']} queries, one planted transformed copy each)",
            "",
            *format_table(["method", "precision@1", "avg precision", "MRR", "wall time"], rows),
            "",
            "paper: rotations (90/180/270) and reflections are retrieved by reversing the",
            "strings only -- no spatial-operator conversion -- so the invariant mode finds",
            "every planted copy with a full-score match.",
        ],
    )

    invariant = report.methods["invariant be_lcs"].aggregate()
    plain = report.methods["plain be_lcs"].aggregate()
    assert invariant["precision@1"] == 1.0
    assert invariant["average_precision"] >= plain["average_precision"]

    # Benchmark the invariant evaluation of one query against one image.
    query = encode_picture(corpus.queries[0])
    database = encode_picture(corpus.database_pictures[0])
    from repro.core.similarity import invariant_similarity

    benchmark(invariant_similarity, query, database)


@pytest.mark.benchmark(group="E6-transforms")
@pytest.mark.parametrize("transformation", [Transformation.ROTATE_90, Transformation.REFLECT_Y])
def test_string_level_transform_cost(benchmark, transformation):
    bestring = encode_picture(office_scene(0))
    result = benchmark(transform, bestring, transformation)
    assert result.object_identifiers == bestring.object_identifiers


@pytest.mark.benchmark(group="E6-transforms")
def test_geometric_reencoding_cost_for_comparison(benchmark):
    picture = office_scene(0)
    result = benchmark(lambda: encode_picture(picture.rotate90()))
    assert result.count_objects() == len(picture)
