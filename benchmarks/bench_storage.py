"""E2 (Section 3.1): storage comparison across the 2-D string family.

Reproduces the paper's storage argument: a 2D BE-string needs between
``2n + 1`` and ``4n + 1`` symbols per axis regardless of how objects overlap,
while the cutting-based G- and C-strings generate extra sub-objects (up to
O(n^2) for the C-string's staircase worst case).  The report tabulates total
storage units per representation for three layout families and a sweep of
object counts.
"""

import pytest

from benchmarks.conftest import format_table, smoke_scaled
from repro.baselines.b_string import encode_b_string
from repro.baselines.c_string import encode_c_string
from repro.baselines.g_string import encode_g_string
from repro.baselines.twod_string import encode_2d_string
from repro.core.construct import encode_picture, storage_symbol_bounds
from repro.datasets.synthetic import (
    SceneParameters,
    random_picture,
    stacked_picture,
    staircase_picture,
)

OBJECT_COUNTS = smoke_scaled((2, 4, 8, 16, 32, 64), (2, 4))


def _storage_row(label, picture):
    n = len(picture)
    return [
        label,
        n,
        encode_2d_string(picture).storage_units,
        encode_g_string(picture).storage_units,
        encode_c_string(picture).storage_units,
        encode_b_string(picture).storage_units,
        encode_picture(picture).total_symbols,
    ]


@pytest.fixture(scope="module")
def storage_table():
    rows = []
    for n in OBJECT_COUNTS:
        random_scene = random_picture(
            n, SceneParameters(object_count=n, alignment_probability=0.3)
        )
        rows.append(_storage_row("random", random_scene))
        rows.append(_storage_row("staircase", staircase_picture(n)))
        rows.append(_storage_row("stacked", stacked_picture(n)))
    return rows


@pytest.mark.benchmark(group="E2-storage")
def test_storage_comparison(benchmark, storage_table, write_report):
    # Time the BE-string encoder on the largest random scene of the sweep.
    largest = random_picture(
        OBJECT_COUNTS[-1],
        SceneParameters(object_count=OBJECT_COUNTS[-1], alignment_probability=0.3),
    )
    benchmark(encode_picture, largest)

    headers = ["layout", "n", "2D-string", "G-string", "C-string", "B-string", "BE-string"]
    table = format_table(headers, storage_table)
    write_report(
        "E2_storage",
        [
            "E2 -- storage units per image (both axes, symbols + operators / segments)",
            "",
            *table,
            "",
            "paper: BE-string is O(n) (2n+1 .. 4n+1 per axis); C-string degenerates to",
            "O(n^2) cut objects on overlapping layouts; G-string cuts at least as much.",
        ],
    )

    # Shape assertions: BE storage within bounds and linear; cut-based storage
    # grows super-linearly on the staircase layout.
    for row in storage_table:
        layout, n = row[0], row[1]
        be_total = row[6]
        lower, upper = storage_symbol_bounds(n)
        assert 2 * lower <= be_total <= 2 * upper
        if layout == "staircase" and n >= 16:
            assert row[4] > be_total  # C-string needs more storage than BE
            assert row[3] >= row[4]  # G-string needs at least as much as C


@pytest.mark.benchmark(group="E2-storage")
@pytest.mark.parametrize("object_count", [8, 64])
def test_be_string_encoding_cost_by_size(benchmark, object_count):
    picture = random_picture(
        object_count, SceneParameters(object_count=object_count, alignment_probability=0.3)
    )
    bestring = benchmark(encode_picture, picture)
    lower, upper = storage_symbol_bounds(object_count)
    assert lower <= len(bestring.x) <= upper
