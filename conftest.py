"""Repository-level pytest wiring.

Adds the ``--fast`` flag used by the CI matrix job: property-based and
integration tests (everything under ``tests/property`` and
``tests/integration``) are auto-marked ``slow``, and every ``slow``-marked
test -- auto-marked or explicit, like the concurrency stress suite in
``tests/service/test_concurrency.py`` -- is skipped under ``--fast``, so the
per-interpreter matrix stays quick while a single separate CI job runs the
slow suites once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_SLOW_DIRECTORIES = ("property", "integration")
_TESTS_ROOT = Path(__file__).parent / "tests"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--fast",
        action="store_true",
        default=False,
        help="skip the slow (property-based and integration) test suites",
    )


def pytest_collection_modifyitems(config: pytest.Config, items: list) -> None:
    skip_slow = (
        pytest.mark.skip(reason="slow suite skipped by --fast")
        if config.getoption("--fast")
        else None
    )
    slow_roots = tuple(_TESTS_ROOT / name for name in _SLOW_DIRECTORIES)
    for item in items:
        path = Path(str(item.fspath))
        if any(root in path.parents for root in slow_roots):
            item.add_marker(pytest.mark.slow)
        if skip_slow is not None and item.get_closest_marker("slow") is not None:
            item.add_marker(skip_slow)
