"""Property-based tests for encoding and BE-string invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.construct import encode_picture, storage_symbol_bounds
from repro.core.reasoning import pairwise_relations_from_bestring
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture

#: Frame used by all generated pictures.
FRAME = 100.0


@st.composite
def pictures(draw, min_objects=1, max_objects=8):
    """Random symbolic pictures on an integer grid (ties are frequent)."""
    count = draw(st.integers(min_value=min_objects, max_value=max_objects))
    objects = []
    for index in range(count):
        x0 = draw(st.integers(min_value=0, max_value=90))
        y0 = draw(st.integers(min_value=0, max_value=90))
        width = draw(st.integers(min_value=1, max_value=int(FRAME - x0)))
        height = draw(st.integers(min_value=1, max_value=int(FRAME - y0)))
        objects.append(
            (f"obj{index}", Rectangle(float(x0), float(y0), float(x0 + width), float(y0 + height)))
        )
    return SymbolicPicture.build(width=FRAME, height=FRAME, objects=objects, name="generated")


@settings(max_examples=60, deadline=None)
@given(pictures())
def test_encoding_is_always_structurally_valid(picture):
    bestring = encode_picture(picture)
    bestring.validate()


@settings(max_examples=60, deadline=None)
@given(pictures())
def test_storage_always_within_paper_bounds(picture):
    bestring = encode_picture(picture)
    lower, upper = storage_symbol_bounds(len(picture))
    assert lower <= len(bestring.x) <= upper
    assert lower <= len(bestring.y) <= upper


@settings(max_examples=60, deadline=None)
@given(pictures())
def test_every_object_appears_exactly_twice_per_axis(picture):
    bestring = encode_picture(picture)
    for axis in (bestring.x, bestring.y):
        assert axis.boundary_count == 2 * len(picture)
        assert axis.object_identifiers == set(picture.identifiers)


@settings(max_examples=60, deadline=None)
@given(pictures())
def test_no_adjacent_dummies_ever(picture):
    bestring = encode_picture(picture)
    for axis in (bestring.x, bestring.y):
        for left, right in zip(axis.symbols, axis.symbols[1:]):
            assert not (left.is_dummy and right.is_dummy)


@settings(max_examples=40, deadline=None)
@given(pictures(min_objects=2, max_objects=7))
def test_relations_recovered_from_string_match_geometry(picture):
    bestring = encode_picture(picture)
    assert pairwise_relations_from_bestring(bestring) == picture.pairwise_relations()


@settings(max_examples=40, deadline=None)
@given(pictures())
def test_encoding_is_deterministic(picture):
    first = encode_picture(picture)
    second = encode_picture(picture)
    assert first.x.symbols == second.x.symbols
    assert first.y.symbols == second.y.symbols


@settings(max_examples=40, deadline=None)
@given(pictures(min_objects=2, max_objects=8), st.data())
def test_subset_encoding_equals_restricted_string(picture, data):
    """Encoding a sub-scene equals projecting the full BE-string onto it."""
    keep = data.draw(
        st.lists(
            st.sampled_from(picture.identifiers),
            min_size=1,
            max_size=len(picture),
            unique=True,
        )
    )
    direct = encode_picture(picture.subset(keep))
    projected = encode_picture(picture).restricted_to(keep)
    assert direct.x.symbols == projected.x.symbols
    assert direct.y.symbols == projected.y.symbols
