"""Property-based tests for the boolean predicate grammar and its AST.

Three invariants carry the wire format and the CLI/service error paths:
the canonical text form round-trips through the parser, normalisation is
idempotent (a fixpoint), and *any* input text either parses or raises
:class:`PredicateError` naming a position — never an internal exception.
The nested JSON wire form must round-trip losslessly too, since the
client ships trees as ``to_dict()`` payloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.retrieval.predicates import (
    And,
    Leaf,
    Not,
    Or,
    PredicateError,
    RelationKeyword,
    RelationPredicate,
    parse_tree,
    tree_from_dict,
)

LABELS = ("car", "tree", "house", "bird")

#: Tokens a garbage query is assembled from: every grammar element plus junk.
GARBAGE_TOKENS = (
    "car", "tree", "left-of", "above", "not", "and", "or",
    "(", ")", "[", "]", "fuzzy", "w", "=", "2", ",", ";", "banana", "%%",
)


@st.composite
def leaves(draw):
    subject = draw(st.sampled_from(LABELS))
    target = draw(st.sampled_from([label for label in LABELS if label != subject]))
    relation = draw(st.sampled_from(list(RelationKeyword)))
    weight = draw(st.sampled_from([1.0, 0.5, 2.0, 3.0]))
    fuzzy = draw(st.booleans())
    return Leaf(
        predicate=RelationPredicate(subject=subject, relation=relation, target=target),
        weight=weight,
        fuzzy=fuzzy,
    )


@st.composite
def trees(draw, depth=3):
    if depth == 0:
        return draw(leaves())
    kind = draw(st.sampled_from(["leaf", "not", "and", "or"]))
    if kind == "leaf":
        return draw(leaves())
    if kind == "not":
        return Not(draw(trees(depth=depth - 1)))
    # A 1-ary and/or is legal in the AST but has no distinct text form (it
    # prints as its child), so the strict round-trip needs arity >= 2.
    children = tuple(
        draw(trees(depth=depth - 1))
        for _ in range(draw(st.integers(min_value=2, max_value=3)))
    )
    return And(children) if kind == "and" else Or(children)


@settings(max_examples=80, deadline=None)
@given(trees())
def test_to_text_round_trips_through_the_parser(tree):
    parsed = parse_tree(tree.to_text())
    assert parsed == tree
    # The text form itself is a fixpoint of parse . to_text.
    assert parse_tree(parsed.to_text()).to_text() == parsed.to_text()


@settings(max_examples=80, deadline=None)
@given(trees())
def test_normalization_is_idempotent(tree):
    normalized = tree.normalized()
    assert normalized.normalized() == normalized
    # Normalisation preserves the leaf multiset (only structure canonicalises).
    assert sorted(leaf.to_text() for leaf in normalized.leaves()) == sorted(
        leaf.to_text() for leaf in tree.leaves()
    )


@settings(max_examples=80, deadline=None)
@given(trees())
def test_normalized_form_round_trips_too(tree):
    normalized = tree.normalized()
    assert parse_tree(normalized.to_text()).normalized() == normalized


@settings(max_examples=80, deadline=None)
@given(trees())
def test_wire_dict_round_trips(tree):
    assert tree_from_dict(tree.to_dict()) == tree


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(GARBAGE_TOKENS), min_size=0, max_size=12))
def test_garbage_never_escapes_predicate_error(tokens):
    text = " ".join(tokens)
    try:
        tree = parse_tree(text)
    except PredicateError as error:
        message = str(error)
        # Every parse failure names the offending token's position (or says
        # the query is empty) — the service surfaces this verbatim as a 400.
        assert "position" in message or "empty" in message
    else:
        # Whatever parsed must round-trip like any well-formed query.
        assert parse_tree(tree.to_text()) == tree


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=40))
def test_arbitrary_text_never_escapes_predicate_error(text):
    try:
        parse_tree(text)
    except PredicateError:
        pass


def test_error_messages_name_token_and_position():
    with pytest.raises(PredicateError, match=r"position 4: 'banana'"):
        parse_tree("car banana tree")
    with pytest.raises(PredicateError, match=r"position 21: end of query"):
        parse_tree("(car left-of tree and")
    with pytest.raises(PredicateError, match="empty"):
        parse_tree("   ")
