"""Property-based tests for similarity scores and dynamic editing."""

from hypothesis import given, settings, strategies as st

from repro.core.construct import encode_picture
from repro.core.editing import IndexedBEString
from repro.core.reasoning import relations_agree, relations_compatible
from repro.core.similarity import (
    Combination,
    Normalization,
    SimilarityPolicy,
    similarity,
    similarity_between_pictures,
)
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture

FRAME = 100.0


@st.composite
def pictures(draw, min_objects=1, max_objects=7):
    count = draw(st.integers(min_value=min_objects, max_value=max_objects))
    objects = []
    for index in range(count):
        x0 = draw(st.integers(min_value=0, max_value=90))
        y0 = draw(st.integers(min_value=0, max_value=90))
        width = draw(st.integers(min_value=1, max_value=int(FRAME - x0)))
        height = draw(st.integers(min_value=1, max_value=int(FRAME - y0)))
        objects.append(
            (f"obj{index}", Rectangle(float(x0), float(y0), float(x0 + width), float(y0 + height)))
        )
    return SymbolicPicture.build(width=FRAME, height=FRAME, objects=objects, name="generated")


_POLICIES = [
    SimilarityPolicy(),
    SimilarityPolicy(normalization=Normalization.DICE, combination=Combination.MIN),
    SimilarityPolicy(normalization=Normalization.DATABASE, combination=Combination.PRODUCT),
    SimilarityPolicy(count_boundaries_only=True),
]


@settings(max_examples=40, deadline=None)
@given(pictures(), pictures(), st.sampled_from(_POLICIES))
def test_scores_are_bounded(query_picture, database_picture, policy):
    result = similarity_between_pictures(query_picture, database_picture, policy)
    assert 0.0 <= result.score <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(pictures(), st.sampled_from(_POLICIES))
def test_self_similarity_is_maximal(picture, policy):
    result = similarity_between_pictures(picture, picture, policy)
    assert result.score == 1.0
    assert result.is_full_match


@settings(max_examples=40, deadline=None)
@given(pictures(min_objects=2, max_objects=7), st.data())
def test_sub_scene_queries_fully_match_and_agree_on_relations(picture, data):
    keep = data.draw(
        st.lists(
            st.sampled_from(picture.identifiers),
            min_size=2,
            max_size=len(picture),
            unique=True,
        )
    )
    query = encode_picture(picture.subset(keep))
    database = encode_picture(picture)
    result = similarity(query, database)
    assert result.common_objects == set(keep)
    assert relations_agree(query, database, result.common_objects)


@settings(max_examples=40, deadline=None)
@given(pictures(min_objects=2, max_objects=6), pictures(min_objects=2, max_objects=6))
def test_lcs_soundness_order_compatibility_for_arbitrary_pairs(query_picture, database_picture):
    """The provable form of the paper's claim holds for arbitrary scene pairs."""
    # Rename the second picture's objects so that some identifiers overlap.
    query = encode_picture(query_picture)
    database = encode_picture(database_picture)
    result = similarity(query, database)
    matched = result.common_objects
    if len(matched) >= 2:
        assert relations_compatible(query, database, matched)


@settings(max_examples=30, deadline=None)
@given(pictures(min_objects=1, max_objects=6), st.data())
def test_incremental_insert_equals_batch_encoding(picture, data):
    """IndexedBEString maintained by inserts equals Convert-2D-Be-String output."""
    indexed = IndexedBEString(width=FRAME, height=FRAME, name=picture.name)
    order = data.draw(st.permutations(list(picture.icons)))
    for icon in order:
        indexed.insert_icon(icon)
    expected = encode_picture(picture)
    assert indexed.to_bestring().x.symbols == expected.x.symbols
    assert indexed.to_bestring().y.symbols == expected.y.symbols


@settings(max_examples=30, deadline=None)
@given(pictures(min_objects=2, max_objects=6), st.data())
def test_remove_then_reencode_matches(picture, data):
    victim = data.draw(st.sampled_from(picture.identifiers))
    indexed = IndexedBEString.from_picture(picture)
    indexed.remove(victim)
    expected = encode_picture(picture.remove_icon(victim))
    assert indexed.to_bestring().x.symbols == expected.x.symbols
    assert indexed.to_bestring().y.symbols == expected.y.symbols
