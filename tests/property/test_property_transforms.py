"""Property-based tests: string-level transforms equal geometric transforms."""

from hypothesis import given, settings, strategies as st

from repro.core.construct import encode_picture
from repro.core.similarity import invariant_similarity, similarity
from repro.core.transforms import (
    Transformation,
    reflect_x,
    reflect_y,
    rotate90,
    rotate180,
    rotate270,
    transform,
)
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture

FRAME_W = 120.0
FRAME_H = 80.0


@st.composite
def pictures(draw, min_objects=1, max_objects=6):
    count = draw(st.integers(min_value=min_objects, max_value=max_objects))
    objects = []
    for index in range(count):
        x0 = draw(st.integers(min_value=0, max_value=int(FRAME_W) - 2))
        y0 = draw(st.integers(min_value=0, max_value=int(FRAME_H) - 2))
        width = draw(st.integers(min_value=1, max_value=int(FRAME_W) - x0))
        height = draw(st.integers(min_value=1, max_value=int(FRAME_H) - y0))
        objects.append(
            (f"obj{index}", Rectangle(float(x0), float(y0), float(x0 + width), float(y0 + height)))
        )
    return SymbolicPicture.build(width=FRAME_W, height=FRAME_H, objects=objects, name="generated")


_PAIRS = [
    (rotate90, lambda picture: picture.rotate90()),
    (rotate180, lambda picture: picture.rotate180()),
    (rotate270, lambda picture: picture.rotate270()),
    (reflect_x, lambda picture: picture.reflect_x()),
    (reflect_y, lambda picture: picture.reflect_y()),
]


@settings(max_examples=40, deadline=None)
@given(pictures())
def test_string_transforms_equal_geometric_reencoding(picture):
    bestring = encode_picture(picture)
    for string_transform, geometric_transform in _PAIRS:
        via_string = string_transform(bestring)
        via_geometry = encode_picture(geometric_transform(picture))
        assert via_string.x.symbols == via_geometry.x.symbols
        assert via_string.y.symbols == via_geometry.y.symbols


@settings(max_examples=40, deadline=None)
@given(pictures())
def test_transforms_preserve_validity_and_symbol_counts(picture):
    bestring = encode_picture(picture)
    for transformation in Transformation:
        result = transform(bestring, transformation)
        result.validate()
        assert result.x.boundary_count + result.y.boundary_count == (
            bestring.x.boundary_count + bestring.y.boundary_count
        )
        assert result.total_symbols == bestring.total_symbols


@settings(max_examples=30, deadline=None)
@given(pictures(min_objects=2, max_objects=5), st.sampled_from(list(Transformation)))
def test_invariant_retrieval_recovers_any_transformed_copy(picture, transformation):
    """The paper's rotation/reflection retrieval always scores a full match."""
    geometric = {
        Transformation.IDENTITY: lambda p: p,
        Transformation.ROTATE_90: lambda p: p.rotate90(),
        Transformation.ROTATE_180: lambda p: p.rotate180(),
        Transformation.ROTATE_270: lambda p: p.rotate270(),
        Transformation.REFLECT_X: lambda p: p.reflect_x(),
        Transformation.REFLECT_Y: lambda p: p.reflect_y(),
    }[transformation]
    query = encode_picture(picture)
    database = encode_picture(geometric(picture))
    best = invariant_similarity(query, database)
    assert best.score == 1.0
    assert best.is_full_match


@settings(max_examples=30, deadline=None)
@given(pictures(min_objects=2, max_objects=5))
def test_plain_similarity_of_rotation_is_at_most_invariant_similarity(picture):
    query = encode_picture(picture)
    database = encode_picture(picture.rotate90())
    plain = similarity(query, database)
    best = invariant_similarity(query, database)
    assert plain.score <= best.score
