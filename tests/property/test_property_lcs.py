"""Property-based tests for the modified LCS (Algorithm 2/3) invariants."""

from hypothesis import given, settings, strategies as st

from repro.baselines.lcs_plain import classic_lcs_length, dummy_aware_lcs_length
from repro.core.bestring import AxisBEString
from repro.core.lcs import be_lcs_length, be_lcs_length_and_string, be_lcs_string
from repro.core.symbols import Symbol

#: A small symbol alphabet so that generated strings share many symbols.
_IDENTIFIERS = ["A", "B", "C", "D"]


@st.composite
def axis_strings(draw, max_objects=4):
    """Well-formed axis BE-strings over a small alphabet.

    Objects are a random subset of the alphabet; boundary orderings and dummy
    placements are random but structurally valid (begin before end, no two
    adjacent dummies).
    """
    identifiers = draw(
        st.lists(st.sampled_from(_IDENTIFIERS), unique=True, min_size=1, max_size=max_objects)
    )
    # Random interleaving: assign each boundary a random rank, then emit with
    # random dummy insertion between distinct ranks.
    boundaries = []
    for identifier in identifiers:
        begin_rank = draw(st.integers(min_value=0, max_value=6))
        end_rank = draw(st.integers(min_value=begin_rank, max_value=7))
        boundaries.append((begin_rank, identifier, Symbol.begin(identifier)))
        boundaries.append((end_rank, identifier, Symbol.end(identifier)))
    boundaries.sort(key=lambda item: (item[0], item[1], item[2].is_end))
    symbols = []
    if draw(st.booleans()):
        symbols.append(Symbol.dummy())
    for index, (rank, _, symbol) in enumerate(boundaries):
        symbols.append(symbol)
        is_last = index + 1 == len(boundaries)
        next_rank = None if is_last else boundaries[index + 1][0]
        if not is_last and next_rank != rank:
            symbols.append(Symbol.dummy())
        elif is_last and draw(st.booleans()):
            symbols.append(Symbol.dummy())
    return AxisBEString(tuple(symbols))


@settings(max_examples=80, deadline=None)
@given(axis_strings(), axis_strings())
def test_lcs_length_matches_reconstructed_string(query, database):
    length, lcs = be_lcs_length_and_string(query, database)
    assert len(lcs) == length


@settings(max_examples=80, deadline=None)
@given(axis_strings(), axis_strings())
def test_lcs_is_a_common_subsequence(query, database):
    lcs = be_lcs_string(query, database)

    def is_subsequence(candidate, reference):
        iterator = iter(reference)
        return all(symbol in iterator for symbol in candidate)

    assert is_subsequence(lcs.symbols, query.symbols)
    assert is_subsequence(lcs.symbols, database.symbols)


@settings(max_examples=80, deadline=None)
@given(axis_strings(), axis_strings())
def test_lcs_never_contains_adjacent_dummies(query, database):
    lcs = be_lcs_string(query, database)
    for left, right in zip(lcs.symbols, lcs.symbols[1:]):
        assert not (left.is_dummy and right.is_dummy)


@settings(max_examples=80, deadline=None)
@given(axis_strings(), axis_strings())
def test_modified_lcs_bounded_by_classic_lcs(query, database):
    modified = be_lcs_length(query, database)
    classic = classic_lcs_length(query, database)
    assert 0 <= modified <= classic <= min(len(query), len(database))


@settings(max_examples=80, deadline=None)
@given(axis_strings(), axis_strings())
def test_sign_encoding_agrees_with_boolean_table_ablation(query, database):
    assert be_lcs_length(query, database) == dummy_aware_lcs_length(query, database)


@settings(max_examples=60, deadline=None)
@given(axis_strings())
def test_self_lcs_recovers_the_whole_string(string):
    assert be_lcs_length(string, string) == len(string)
    assert be_lcs_string(string, string).symbols == string.symbols


@settings(max_examples=60, deadline=None)
@given(axis_strings(), axis_strings())
def test_matched_symbols_come_from_the_shared_alphabet(query, database):
    """Every LCS symbol exists in both input strings, whichever is the query."""
    shared = set(query.symbols) & set(database.symbols)
    forward = be_lcs_string(query, database)
    backward = be_lcs_string(database, query)
    assert set(forward.symbols) <= shared
    assert set(backward.symbols) <= shared


@settings(max_examples=60, deadline=None)
@given(axis_strings(), axis_strings())
def test_lcs_length_monotone_under_database_extension(query, database):
    """Appending symbols to the database string can never reduce the LCS."""
    extended = AxisBEString(database.symbols + (Symbol.begin("Z"), Symbol.end("Z")))
    assert be_lcs_length(query, extended) >= be_lcs_length(query, database)
