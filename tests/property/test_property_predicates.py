"""Property-based tests for the relation-predicate layer.

The predicates are evaluated on the ordinal boundary ranks recovered from a
BE-string; because the rank mapping preserves the order and coincidence of
boundary coordinates, evaluating the same predicate directly on the metric
MBR projections must give the identical answer.  This ties the query language
back to the geometry without ever letting it touch the coordinates at query
time.
"""

from hypothesis import given, settings, strategies as st

from repro.core.construct import encode_picture
from repro.core.reasoning import boundary_ranks
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture
from repro.retrieval.predicates import RelationKeyword, RelationPredicate, evaluate_predicates

FRAME = 60.0
LABELS = ("car", "tree", "house")


@st.composite
def pictures(draw):
    objects = []
    for label in LABELS:
        count = draw(st.integers(min_value=1, max_value=2))
        for _ in range(count):
            x0 = draw(st.integers(min_value=0, max_value=50))
            y0 = draw(st.integers(min_value=0, max_value=50))
            width = draw(st.integers(min_value=1, max_value=int(FRAME) - x0))
            height = draw(st.integers(min_value=1, max_value=int(FRAME) - y0))
            objects.append(
                (label, Rectangle(float(x0), float(y0), float(x0 + width), float(y0 + height)))
            )
    return SymbolicPicture.build(width=FRAME, height=FRAME, objects=objects, name="generated")


@st.composite
def predicates(draw):
    subject = draw(st.sampled_from(LABELS))
    target = draw(st.sampled_from([label for label in LABELS if label != subject]))
    relation = draw(st.sampled_from(list(RelationKeyword)))
    return RelationPredicate(subject=subject, relation=relation, target=target)


def _evaluate_geometrically(picture, predicate):
    """Reference evaluation straight on the metric MBR projections."""
    subjects = picture.icons_with_label(predicate.subject)
    targets = picture.icons_with_label(predicate.target)
    for subject in subjects:
        for target in targets:
            if predicate.holds_between(
                subject.mbr.x_interval,
                subject.mbr.y_interval,
                target.mbr.x_interval,
                target.mbr.y_interval,
            ):
                return True
    return False


@settings(max_examples=60, deadline=None)
@given(pictures(), st.lists(predicates(), min_size=1, max_size=4))
def test_string_evaluation_matches_geometric_evaluation(picture, predicate_list):
    bestring = encode_picture(picture)
    match = evaluate_predicates(bestring, predicate_list)
    satisfied_via_string = set(match.satisfied)
    for predicate in predicate_list:
        expected = _evaluate_geometrically(picture, predicate)
        assert (predicate in satisfied_via_string) == expected


@settings(max_examples=60, deadline=None)
@given(pictures())
def test_opposite_directional_predicates_are_mutually_consistent(picture):
    """If A is strictly left of B then B is never also strictly left of A."""
    bestring = encode_picture(picture)
    ranks_x = boundary_ranks(bestring.x)
    for subject in ("car", "tree"):
        for target in ("tree", "house"):
            if subject == target:
                continue
            forward = evaluate_predicates(
                bestring, [RelationPredicate(subject, RelationKeyword.LEFT_OF, target)]
            ).is_full_match
            backward = evaluate_predicates(
                bestring, [RelationPredicate(target, RelationKeyword.RIGHT_OF, subject)]
            ).is_full_match
            # "some instance pair" semantics: left-of(subject, target) and
            # right-of(target, subject) quantify over the same pairs, so the
            # two readings must agree exactly.
            assert forward == backward
    assert ranks_x  # the string always yields ranks for a non-empty picture
