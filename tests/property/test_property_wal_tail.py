"""Property-based tests of the WAL tailer protocol (replication satellite).

Two angles on the same contract:

* a Hypothesis-driven *sequential* interleaving of writer operations
  (append / compact+truncate / poll) against a model, proving the tailer
  yields every record exactly once, in order, with intact content, across
  any number of truncations -- and that a truncation past the cursor is
  surfaced as :class:`WalTruncatedError` (never silently skipped);
* a *concurrent* stress run -- a real writer thread appending and
  periodically truncating while a tailer polls flat out -- proving no torn
  or out-of-order record is ever handed out mid-write and the tailer
  converges on the writer's final LSN.
"""

import json
import tempfile
import threading
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.index.wal import WalTailer, WalTruncatedError, WriteAheadLog


def entry_for(lsn):
    """A self-validating upsert entry: the content encodes the LSN."""
    return {"picture": {"lsn": lsn}}


def check_record(record):
    """Every yielded record's content must match its LSN (not torn/mixed)."""
    assert record.image_id == f"img-{record.lsn:05d}"
    if record.op == "upsert":
        assert record.entry == entry_for(record.lsn)


#: One writer step: append an upsert, append a delete, truncate through a
#: fraction of the acknowledged prefix, or let the tailer poll.
_OPS = st.lists(
    st.sampled_from(["upsert", "delete", "truncate", "poll"]),
    min_size=1,
    max_size=40,
)


class TestSequentialInterleavings:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS, truncate_fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_every_record_is_yielded_once_in_order_or_covered_by_a_snapshot(
        self, ops, truncate_fraction
    ):
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "wal.log"
            writer = WriteAheadLog(path, fsync=False)
            tailer = WalTailer(path)
            yielded = []
            floor = 0  # the highest snapshot_lsn ever truncated through
            resync_floors = []
            try:
                for op in ops:
                    if op == "upsert":
                        lsn = writer.last_lsn + 1
                        writer.append("upsert", f"img-{lsn:05d}", entry_for(lsn))
                    elif op == "delete":
                        lsn = writer.last_lsn + 1
                        writer.append("delete", f"img-{lsn:05d}")
                    elif op == "truncate":
                        # A compaction acknowledged some prefix; the log
                        # drops it and the manifest floor advances.
                        floor = max(
                            floor, int(writer.last_lsn * truncate_fraction)
                        )
                        writer.truncate_through(floor)
                    else:
                        # Model ReplicaEngine.sync: the manifest floor is
                        # checked first (a truncation that emptied the log
                        # leaves the tailer nothing to detect a gap with),
                        # then the log is polled; either signal of a gap
                        # becomes a snapshot reload -- a fresh tailer at
                        # the floor.
                        if floor > tailer.position:
                            resync_floors.append((tailer.position, floor))
                            tailer = WalTailer(path, from_lsn=floor)
                            continue
                        try:
                            yielded.extend(tailer.poll())
                        except WalTruncatedError:
                            assert floor > tailer.position
                            resync_floors.append((tailer.position, floor))
                            tailer = WalTailer(path, from_lsn=floor)
                # Final drain (with the same reload rule).
                while True:
                    if floor > tailer.position:
                        resync_floors.append((tailer.position, floor))
                        tailer = WalTailer(path, from_lsn=floor)
                        continue
                    try:
                        batch = tailer.poll()
                    except WalTruncatedError:
                        resync_floors.append((tailer.position, floor))
                        tailer = WalTailer(path, from_lsn=floor)
                        continue
                    if not batch:
                        break
                    yielded.extend(batch)
            finally:
                writer.close()
            # In order, exactly once, content intact.
            lsns = [record.lsn for record in yielded]
            assert lsns == sorted(set(lsns))
            for record in yielded:
                check_record(record)
            # Complete coverage: every LSN was either yielded or sat below a
            # snapshot floor when the tailer resynced past it.
            missed = set(range(1, writer.last_lsn + 1)) - set(lsns)
            for lsn in missed:
                assert any(
                    position < lsn <= to_floor
                    for position, to_floor in resync_floors
                ), f"record {lsn} lost without a covering snapshot"
            assert tailer.position == writer.last_lsn


class TestConcurrentWriterAndTailer:
    def _run(self, total, truncate_every):
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "wal.log"
            writer = WriteAheadLog(path, fsync=False)
            floor = [0]
            done = threading.Event()

            def write():
                try:
                    for _ in range(total):
                        lsn = writer.last_lsn + 1
                        op = "delete" if lsn % 7 == 0 else "upsert"
                        writer.append(
                            op,
                            f"img-{lsn:05d}",
                            entry_for(lsn) if op == "upsert" else None,
                        )
                        if truncate_every and lsn % truncate_every == 0:
                            floor[0] = lsn  # publish BEFORE the truncation
                            writer.truncate_through(lsn)
                finally:
                    done.set()

            thread = threading.Thread(target=write)
            thread.start()
            tailer = WalTailer(path)
            yielded = []
            resync_floors = []
            try:
                while not done.is_set() or tailer.position < writer.last_lsn:
                    if floor[0] > tailer.position:
                        # The manifest-floor check the engine runs before
                        # each poll: compaction passed us, reload.
                        resync_floors.append((tailer.position, floor[0]))
                        tailer = WalTailer(path, from_lsn=floor[0])
                        continue
                    try:
                        batch = tailer.poll()
                    except WalTruncatedError:
                        covering = floor[0]
                        assert covering > tailer.position
                        resync_floors.append((tailer.position, covering))
                        tailer = WalTailer(path, from_lsn=covering)
                        continue
                    for record in batch:
                        check_record(record)
                    yielded.extend(batch)
            finally:
                thread.join()
                writer.close()
            lsns = [record.lsn for record in yielded]
            assert lsns == sorted(set(lsns)), "torn or out-of-order yield"
            missed = set(range(1, total + 1)) - set(lsns)
            for lsn in missed:
                assert any(
                    position < lsn <= to_floor
                    for position, to_floor in resync_floors
                ), f"record {lsn} lost without a covering snapshot"
            assert tailer.position == total

    def test_append_only_stream_arrives_complete_and_ordered(self):
        self._run(total=300, truncate_every=0)

    def test_stream_with_concurrent_truncations_resumes_cleanly(self):
        self._run(total=300, truncate_every=23)

    def test_partial_frames_are_never_yielded(self):
        # Hand-write a frame in two halves with a poll in between: the
        # tailer must hold the torn frame back, then yield it whole.
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "wal.log"
            writer = WriteAheadLog(path, fsync=False)
            writer.append("upsert", "img-00001", entry_for(1))
            writer.close()
            tailer = WalTailer(path)
            assert [record.lsn for record in tailer.poll()] == [1]
            payload = json.dumps(
                {"lsn": 2, "op": "upsert", "image_id": "img-00002",
                 "entry": entry_for(2)}
            ).encode("utf-8")
            import binascii
            import struct

            frame = (
                struct.pack("<I", len(payload))
                + struct.pack("<I", binascii.crc32(payload) & 0xFFFFFFFF)
                + payload
            )
            with open(path, "ab") as handle:
                handle.write(frame[: len(frame) // 2])
            assert tailer.poll() == []  # torn tail: held back, no error
            with open(path, "ab") as handle:
                handle.write(frame[len(frame) // 2:])
            batch = tailer.poll()
            assert [record.lsn for record in batch] == [2]
            check_record(batch[0])
