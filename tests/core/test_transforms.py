"""Unit tests for string-level rotations and reflections."""

import pytest

from repro.core.construct import encode_picture
from repro.core.transforms import (
    INVERSE_TRANSFORMATION,
    Transformation,
    all_transformations,
    compose,
    reflect_x,
    reflect_y,
    rotate90,
    rotate180,
    rotate270,
    transform,
)

_STRING_LEVEL = {
    Transformation.ROTATE_90: rotate90,
    Transformation.ROTATE_180: rotate180,
    Transformation.ROTATE_270: rotate270,
    Transformation.REFLECT_X: reflect_x,
    Transformation.REFLECT_Y: reflect_y,
}

_GEOMETRIC = {
    Transformation.ROTATE_90: lambda picture: picture.rotate90(),
    Transformation.ROTATE_180: lambda picture: picture.rotate180(),
    Transformation.ROTATE_270: lambda picture: picture.rotate270(),
    Transformation.REFLECT_X: lambda picture: picture.reflect_x(),
    Transformation.REFLECT_Y: lambda picture: picture.reflect_y(),
}


class TestStringVsGeometry:
    """The paper's key claim: transforms are pure string reversals."""

    @pytest.mark.parametrize("transformation", list(_STRING_LEVEL))
    def test_string_transform_equals_geometric_reencoding(self, fig1, transformation):
        bestring = encode_picture(fig1)
        via_string = _STRING_LEVEL[transformation](bestring)
        via_geometry = encode_picture(_GEOMETRIC[transformation](fig1))
        assert via_string.x.symbols == via_geometry.x.symbols
        assert via_string.y.symbols == via_geometry.y.symbols

    @pytest.mark.parametrize("transformation", list(_STRING_LEVEL))
    def test_equivalence_on_complex_scenes(self, office, staircase_scene, transformation):
        for picture in (office, staircase_scene):
            bestring = encode_picture(picture)
            via_string = _STRING_LEVEL[transformation](bestring)
            via_geometry = encode_picture(_GEOMETRIC[transformation](picture))
            assert via_string.x.symbols == via_geometry.x.symbols
            assert via_string.y.symbols == via_geometry.y.symbols


class TestGroupStructure:
    def test_identity_transform_is_noop(self, fig1_bestring):
        assert transform(fig1_bestring, Transformation.IDENTITY) == fig1_bestring

    def test_rotation_composition(self, fig1_bestring):
        twice = rotate90(rotate90(fig1_bestring))
        assert twice.x.symbols == rotate180(fig1_bestring).x.symbols
        assert twice.y.symbols == rotate180(fig1_bestring).y.symbols

    def test_inverse_table_round_trips(self, fig1_bestring):
        # encode_picture emits canonical strings, so applying a transformation
        # and its inverse must reproduce the original exactly.
        for transformation, inverse in INVERSE_TRANSFORMATION.items():
            forward = transform(fig1_bestring, transformation)
            back = transform(forward, inverse)
            assert back.x.symbols == fig1_bestring.x.symbols
            assert back.y.symbols == fig1_bestring.y.symbols

    def test_reflections_are_involutions(self, fig1_bestring):
        assert reflect_x(reflect_x(fig1_bestring)).x.symbols == fig1_bestring.x.canonicalized().symbols
        assert reflect_y(reflect_y(fig1_bestring)).y.symbols == fig1_bestring.y.canonicalized().symbols

    def test_two_reflections_equal_rotate180(self, fig1_bestring):
        both = reflect_x(reflect_y(fig1_bestring))
        rotated = rotate180(fig1_bestring)
        assert both.x.symbols == rotated.x.symbols
        assert both.y.symbols == rotated.y.symbols

    def test_transforms_preserve_validity_and_objects(self, office):
        bestring = encode_picture(office)
        for transformation in Transformation:
            result = transform(bestring, transformation)
            result.validate()
            assert result.object_identifiers == bestring.object_identifiers


class TestHelpers:
    def test_all_transformations_returns_each_variant(self, fig1_bestring):
        variants = all_transformations(fig1_bestring)
        assert set(variants) == set(Transformation)
        assert variants[Transformation.IDENTITY] == fig1_bestring

    def test_all_transformations_subset(self, fig1_bestring):
        variants = all_transformations(
            fig1_bestring, include=(Transformation.ROTATE_90, Transformation.ROTATE_270)
        )
        assert set(variants) == {Transformation.ROTATE_90, Transformation.ROTATE_270}

    def test_compose_rotations(self):
        assert compose(Transformation.ROTATE_90, Transformation.ROTATE_90) == [
            Transformation.ROTATE_180
        ]
        assert compose(Transformation.ROTATE_90, Transformation.ROTATE_270) == [
            Transformation.IDENTITY
        ]

    def test_compose_reflections(self):
        assert compose(Transformation.REFLECT_X, Transformation.REFLECT_X) == [
            Transformation.IDENTITY
        ]
        assert compose(Transformation.REFLECT_X, Transformation.REFLECT_Y) == [
            Transformation.ROTATE_180
        ]

    def test_compose_with_identity(self):
        assert compose(Transformation.IDENTITY, Transformation.REFLECT_X) == [
            Transformation.REFLECT_X
        ]

    def test_compose_rotation_with_reflection_may_leave_the_set(self):
        # A quarter turn followed by an axis reflection is a diagonal
        # reflection, which axis reversal alone cannot express.
        assert compose(Transformation.ROTATE_90, Transformation.REFLECT_X) == []

    def test_compose_half_turn_with_reflection(self):
        assert compose(Transformation.ROTATE_180, Transformation.REFLECT_X) == [
            Transformation.REFLECT_Y
        ]
