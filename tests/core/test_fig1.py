"""Experiment E1: the paper's Figure 1 worked example.

Figure 1 shows a three-object image (A upper-left, B lower-middle, C between
them) whose 2D BE-string illustrates where dummy objects are and are not
inserted: there is free space at every image edge (so the leading and trailing
dummies appear on both axes), the end boundary of A coincides with the begin
boundary of C on the x-axis, and the end boundary of B coincides with the
begin boundary of C on the y-axis (so no dummy separates those two pairs).
"""

import pytest

from repro.core.construct import encode_picture
from repro.core.lcs import be_lcs_length
from repro.core.similarity import similarity
from repro.core.symbols import Symbol


class TestFig1Encoding:
    def test_x_axis_string(self, fig1_bestring):
        assert fig1_bestring.x.to_compact_text() == "EAbEAeCbEBbECeEBeE"

    def test_y_axis_string(self, fig1_bestring):
        assert fig1_bestring.y.to_compact_text() == "EBbEBeCbECeEAbEAeE"

    def test_no_dummy_between_coincident_boundaries_on_x(self, fig1_bestring):
        symbols = list(fig1_bestring.x.symbols)
        position_a_end = symbols.index(Symbol.end("A"))
        assert symbols[position_a_end + 1] == Symbol.begin("C")

    def test_no_dummy_between_coincident_boundaries_on_y(self, fig1_bestring):
        symbols = list(fig1_bestring.y.symbols)
        position_b_end = symbols.index(Symbol.end("B"))
        assert symbols[position_b_end + 1] == Symbol.begin("C")

    def test_leading_and_trailing_dummies_present(self, fig1_bestring):
        for axis in (fig1_bestring.x, fig1_bestring.y):
            assert axis[0].is_dummy
            assert axis[len(axis) - 1].is_dummy

    def test_storage_between_paper_bounds(self, fig1, fig1_bestring):
        n = len(fig1)
        for axis in (fig1_bestring.x, fig1_bestring.y):
            assert 2 * n + 1 <= len(axis) <= 4 * n + 1

    def test_validates(self, fig1_bestring):
        fig1_bestring.validate()


class TestFig1Similarity:
    def test_self_similarity_is_full(self, fig1_bestring):
        result = similarity(fig1_bestring, fig1_bestring)
        assert result.score == pytest.approx(1.0)
        assert result.is_full_match
        assert result.common_objects == {"A", "B", "C"}

    def test_self_lcs_length_equals_string_length(self, fig1_bestring):
        assert be_lcs_length(fig1_bestring.x, fig1_bestring.x) == len(fig1_bestring.x)
        assert be_lcs_length(fig1_bestring.y, fig1_bestring.y) == len(fig1_bestring.y)

    def test_partial_query_two_objects(self, fig1, fig1_bestring):
        query = encode_picture(fig1.subset(["A", "C"]))
        result = similarity(query, fig1_bestring)
        assert result.common_objects == {"A", "C"}
        assert 0.0 < result.score <= 1.0

    def test_unrelated_object_does_not_match(self, fig1_bestring):
        from repro.geometry.rectangle import Rectangle
        from repro.iconic.picture import SymbolicPicture

        other = SymbolicPicture.build(
            width=10, height=10, objects=[("Z", Rectangle(1, 1, 2, 2))]
        )
        result = similarity(encode_picture(other), fig1_bestring)
        assert result.common_objects == set()
