"""Unit tests for axis BE-strings and the 2-D pair."""

import pytest

from repro.core.bestring import AxisBEString, BEString2D
from repro.core.errors import EncodingError
from repro.core.symbols import Symbol


def axis(text: str) -> AxisBEString:
    return AxisBEString.from_text(text)


class TestAxisBasics:
    def test_from_text_and_back(self):
        string = axis("E A.b E A.e C.b E")
        assert string.to_text() == "E A.b E A.e C.b E"
        assert len(string) == 6

    def test_counts(self):
        string = axis("E A.b E A.e C.b C.e E")
        assert string.boundary_count == 4
        assert string.dummy_count == 3
        assert string.object_identifiers == {"A", "C"}
        assert string.count_objects() == 2

    def test_indexing_and_iteration(self):
        string = axis("E A.b A.e")
        assert string[0].is_dummy
        assert [symbol.to_text() for symbol in string] == ["E", "A.b", "A.e"]

    def test_compact_text(self):
        string = axis("E A.b E A.e C.b E")
        assert string.to_compact_text() == "EAbEAeCbE"


class TestAxisValidation:
    def test_valid_string_passes(self):
        axis("E A.b E A.e E").validate()

    def test_consecutive_dummies_rejected(self):
        with pytest.raises(EncodingError):
            axis("E E A.b A.e").validate()

    def test_unbalanced_boundaries_rejected(self):
        with pytest.raises(EncodingError):
            axis("A.b E").validate()

    def test_duplicate_begin_rejected(self):
        with pytest.raises(EncodingError):
            axis("A.b A.b A.e A.e").validate()

    def test_end_before_begin_rejected(self):
        with pytest.raises(EncodingError):
            axis("A.e E A.b").validate()

    def test_is_valid_flag(self):
        assert axis("A.b A.e").is_valid
        assert not axis("E E").is_valid


class TestAxisTransforms:
    def test_reversed_swapped_simple(self):
        string = axis("E A.b E A.e E")
        assert string.reversed_swapped().to_text() == "E A.b E A.e E"

    def test_reversed_swapped_two_objects(self):
        string = axis("A.b A.e E B.b B.e")
        # Mirroring puts B first; begin/end swap within each object.
        assert string.reversed_swapped().to_text() == "B.b B.e E A.b A.e"

    def test_reversed_swapped_is_involution(self):
        string = axis("E A.b B.b E A.e E B.e")
        assert string.reversed_swapped().reversed_swapped() == string.canonicalized()

    def test_canonicalized_orders_ties(self):
        string = axis("C.b A.e E B.b")
        assert string.canonicalized().to_text() == "A.e C.b E B.b"

    def test_without_dummies(self):
        assert axis("E A.b E A.e E").without_dummies().to_text() == "A.b A.e"

    def test_restricted_to_collapses_dummies(self):
        string = axis("E A.b E X.b E X.e E A.e E")
        assert string.restricted_to(["A"]).to_text() == "E A.b E A.e E"

    def test_restricted_to_preserves_adjacency(self):
        string = axis("A.b X.b A.e X.e")
        assert string.restricted_to(["A"]).to_text() == "A.b A.e"


class TestBEString2D:
    def test_from_text_and_dict_roundtrip(self):
        bestring = BEString2D.from_text("A.b A.e", "E A.b A.e E", name="demo")
        assert BEString2D.from_dict(bestring.to_dict()) == bestring

    def test_object_identifiers_and_totals(self):
        bestring = BEString2D.from_text("A.b A.e E B.b B.e", "A.b B.b E A.e B.e")
        assert bestring.object_identifiers == {"A", "B"}
        assert bestring.count_objects() == 2
        assert bestring.total_symbols == 10

    def test_validation_catches_axis_mismatch(self):
        bestring = BEString2D.from_text("A.b A.e", "B.b B.e")
        with pytest.raises(EncodingError):
            bestring.validate()
        assert not bestring.is_valid

    def test_symbol_multiset_counts_boundaries_only(self):
        bestring = BEString2D.from_text("E A.b E A.e E", "A.b A.e")
        multiset = bestring.symbol_multiset
        assert multiset[Symbol.begin("A")] == 2
        assert Symbol.dummy() not in multiset

    def test_restricted_to(self, fig1_bestring):
        restricted = fig1_bestring.restricted_to(["A", "C"])
        assert restricted.object_identifiers == {"A", "C"}
        restricted.validate()

    def test_renamed(self, fig1_bestring):
        assert fig1_bestring.renamed("other").name == "other"
        assert fig1_bestring.renamed("other").x == fig1_bestring.x
