"""Unit tests for dynamic BE-string maintenance (Section 3.2)."""

import pytest

from repro.core.construct import encode_picture
from repro.core.editing import IndexedBEString
from repro.core.errors import EncodingError
from repro.geometry.rectangle import Rectangle
from repro.iconic.picture import SymbolicPicture


class TestConstruction:
    def test_requires_positive_frame(self):
        with pytest.raises(EncodingError):
            IndexedBEString(width=0.0, height=10.0)

    def test_from_picture_matches_direct_encoding(self, office):
        indexed = IndexedBEString.from_picture(office)
        assert indexed.to_bestring().x.symbols == encode_picture(office).x.symbols
        assert indexed.to_bestring().y.symbols == encode_picture(office).y.symbols

    def test_len_contains_identifiers(self, office):
        indexed = IndexedBEString.from_picture(office)
        assert len(indexed) == len(office)
        assert "desk" in indexed
        assert "spaceship" not in indexed
        assert indexed.identifiers == sorted(office.identifiers)

    def test_mbr_lookup(self, office):
        indexed = IndexedBEString.from_picture(office)
        assert indexed.mbr("desk") == office.icon("desk").mbr
        with pytest.raises(KeyError):
            indexed.mbr("missing")


class TestInsert:
    def test_insert_matches_full_reencoding(self, fig1):
        indexed = IndexedBEString.from_picture(fig1)
        new_mbr = Rectangle(7.0, 6.0, 9.0, 8.0)
        indexed.insert("D", new_mbr)
        expected = encode_picture(fig1.add_icon("D", new_mbr))
        assert indexed.to_bestring().x.symbols == expected.x.symbols
        assert indexed.to_bestring().y.symbols == expected.y.symbols

    def test_insert_duplicate_identifier_rejected(self, fig1):
        indexed = IndexedBEString.from_picture(fig1)
        with pytest.raises(EncodingError):
            indexed.insert("A", Rectangle(0, 0, 1, 1))

    def test_insert_out_of_frame_rejected(self, fig1):
        indexed = IndexedBEString.from_picture(fig1)
        with pytest.raises(EncodingError):
            indexed.insert("D", Rectangle(5, 5, 20, 8))

    def test_insert_icon_object(self, fig1):
        from repro.iconic.icon import IconObject

        indexed = IndexedBEString.from_picture(fig1)
        indexed.insert_icon(IconObject(label="D", mbr=Rectangle(0, 0, 1, 1)))
        assert "D" in indexed

    def test_many_incremental_inserts_stay_consistent(self):
        picture = SymbolicPicture(width=100.0, height=100.0, name="empty")
        indexed = IndexedBEString(width=100.0, height=100.0, name="empty")
        for index in range(12):
            mbr = Rectangle(index * 5.0, index * 3.0, index * 5.0 + 8.0, index * 3.0 + 6.0)
            label = f"obj{index}"
            indexed.insert(label, mbr)
            picture = picture.add_icon(label, mbr)
            assert indexed.to_bestring().x.symbols == encode_picture(picture).x.symbols


class TestRemoveAndMove:
    def test_remove_matches_full_reencoding(self, office):
        indexed = IndexedBEString.from_picture(office)
        indexed.remove("phone")
        expected = encode_picture(office.remove_icon("phone"))
        assert indexed.to_bestring().x.symbols == expected.x.symbols
        assert indexed.to_bestring().y.symbols == expected.y.symbols

    def test_remove_returns_mbr_and_forgets_object(self, office):
        indexed = IndexedBEString.from_picture(office)
        mbr = indexed.remove("phone")
        assert mbr == office.icon("phone").mbr
        assert "phone" not in indexed
        with pytest.raises(KeyError):
            indexed.remove("phone")

    def test_move_relocates_object(self, fig1):
        indexed = IndexedBEString.from_picture(fig1)
        indexed.move("B", Rectangle(0.0, 0.0, 2.0, 2.0))
        expected = encode_picture(
            fig1.remove_icon("B").add_icon("B", Rectangle(0.0, 0.0, 2.0, 2.0))
        )
        assert indexed.to_bestring().x.symbols == expected.x.symbols

    def test_insert_then_remove_is_identity(self, fig1):
        indexed = IndexedBEString.from_picture(fig1)
        before = indexed.to_bestring()
        indexed.insert("Z", Rectangle(0.0, 0.0, 0.5, 0.5))
        indexed.remove("Z")
        after = indexed.to_bestring()
        assert before.x.symbols == after.x.symbols
        assert before.y.symbols == after.y.symbols


class TestRoundTrip:
    def test_to_picture_reconstructs_icons(self, office):
        indexed = IndexedBEString.from_picture(office)
        rebuilt = indexed.to_picture()
        assert rebuilt == office.renamed(rebuilt.name)

    def test_to_picture_handles_instance_suffixes(self, landscape):
        indexed = IndexedBEString.from_picture(landscape)
        rebuilt = indexed.to_picture()
        assert sorted(rebuilt.identifiers) == sorted(landscape.identifiers)
