"""Unit tests for the similarity evaluation (Section 4)."""

import pytest

from repro.core.construct import encode_picture
from repro.core.errors import SimilarityError
from repro.core.similarity import (
    Combination,
    Normalization,
    SimilarityPolicy,
    invariant_similarity,
    similarity,
    similarity_between_pictures,
)
from repro.core.transforms import Transformation, rotate90
from repro.datasets.transforms_gen import scrambled_variant


class TestBasicScores:
    def test_identical_images_score_one(self, office):
        result = similarity_between_pictures(office, office)
        assert result.score == pytest.approx(1.0)
        assert result.is_full_match

    def test_empty_query_rejected(self):
        from repro.core.bestring import AxisBEString, BEString2D

        empty = BEString2D(AxisBEString(()), AxisBEString(()))
        with pytest.raises(SimilarityError):
            similarity(empty, empty)

    def test_score_in_unit_interval(self, office, traffic):
        result = similarity_between_pictures(office, traffic)
        assert 0.0 <= result.score <= 1.0

    def test_partial_query_matches_all_its_objects(self, office):
        query = office.subset(["desk", "monitor", "phone"])
        result = similarity_between_pictures(query, office)
        assert result.common_objects == {"desk", "monitor", "phone"}
        assert result.is_full_match

    def test_scrambled_scene_scores_lower_than_original(self, office):
        scrambled = scrambled_variant(office, seed=3)
        same = similarity_between_pictures(office, office).score
        different = similarity_between_pictures(office, scrambled).score
        assert different < same

    def test_full_match_beats_partial_beats_unrelated(self, office, landscape):
        partial_database = office.subset(["desk", "monitor", "chair", "phone"])
        query = office.subset(["desk", "monitor", "phone"])
        full = similarity_between_pictures(query, office).score
        partial = similarity_between_pictures(query, partial_database).score
        unrelated = similarity_between_pictures(query, landscape).score
        assert full >= partial > unrelated

    def test_describe_mentions_database_name(self, office):
        result = similarity_between_pictures(office, office)
        assert "office" in result.describe()


class TestPolicies:
    @pytest.mark.parametrize("normalization", list(Normalization))
    @pytest.mark.parametrize("combination", list(Combination))
    def test_all_policies_give_unit_score_on_identical_images(
        self, office, normalization, combination
    ):
        if normalization is Normalization.NONE:
            pytest.skip("raw counts are not normalised to 1")
        policy = SimilarityPolicy(normalization=normalization, combination=combination)
        result = similarity_between_pictures(office, office, policy)
        assert result.score == pytest.approx(1.0)

    def test_none_normalization_returns_raw_counts(self, office):
        policy = SimilarityPolicy(
            normalization=Normalization.NONE, combination=Combination.MIN
        )
        bestring = encode_picture(office)
        result = similarity(bestring, bestring, policy)
        assert result.score == min(len(bestring.x), len(bestring.y))

    def test_boundaries_only_policy_ignores_dummies(self, office):
        policy = SimilarityPolicy(count_boundaries_only=True)
        result = similarity_between_pictures(office, office, policy)
        assert result.score == pytest.approx(1.0)
        assert result.x.raw_count(True) == result.x.matched_boundaries

    def test_query_normalisation_is_asymmetric(self, office):
        query = office.subset(["desk", "monitor"])
        policy = SimilarityPolicy(normalization=Normalization.QUERY)
        small_into_big = similarity_between_pictures(query, office, policy).score
        big_into_small = similarity_between_pictures(office, query, policy).score
        assert small_into_big > big_into_small

    def test_describe_policy(self):
        text = SimilarityPolicy().describe()
        assert "query" in text and "mean" in text


class TestAxisDetails:
    def test_axis_results_expose_lengths(self, office):
        result = similarity_between_pictures(office, office)
        assert result.x.query_length == result.x.database_length
        assert result.x.lcs_length == result.x.query_length
        assert result.x.matched_boundaries == result.x.query_boundary_count

    def test_fully_matched_objects_require_both_boundaries(self, fig1, fig1_bestring):
        query = encode_picture(fig1.subset(["A", "B"]))
        result = similarity(query, fig1_bestring)
        assert result.x.fully_matched_objects >= {"A", "B"}
        assert result.common_objects == {"A", "B"}


class TestInvariantSimilarity:
    def test_rotated_database_image_needs_invariant_mode(self, office):
        rotated = office.rotate90()
        query = encode_picture(office)
        database = encode_picture(rotated)
        plain = similarity(query, database)
        best = invariant_similarity(query, database)
        assert best.score == pytest.approx(1.0)
        assert best.transformation is Transformation.ROTATE_90
        assert plain.score < best.score

    def test_identity_wins_ties_for_identical_images(self, office):
        bestring = encode_picture(office)
        best = invariant_similarity(bestring, bestring)
        assert best.transformation is Transformation.IDENTITY

    def test_restricting_transformations(self, office):
        rotated = office.rotate90()
        query = encode_picture(office)
        database = encode_picture(rotated)
        best = invariant_similarity(
            query, database, transformations=(Transformation.IDENTITY, Transformation.REFLECT_X)
        )
        assert best.score < 1.0

    def test_empty_transformation_set_rejected(self, office):
        bestring = encode_picture(office)
        with pytest.raises(SimilarityError):
            invariant_similarity(bestring, bestring, transformations=())
